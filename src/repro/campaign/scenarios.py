"""Turn a :class:`~repro.campaign.spec.RunSpec` into a live scenario.

One builder per matrix axis value, composed: the *architecture x
mobility* pair picks the world/cloud construction (parked fleet,
elected-captain highway or Manhattan fleet, RSU-anchored highway — the
three Fig. 4 architectures), the *workload* attaches traffic (batch
tasks + storage churn, the protected serving gateway under open-loop
load, or the dependable DAG scheduler), and the *fault profile* maps to
a seeded :class:`~repro.chaos.generator.ChaosProfile` weight table.

Everything reuses the hardened chaos scenario substrate
(:mod:`repro.chaos.scenarios`) so campaign cells measure the same
configurations the chaos and overload suites defend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..chaos.generator import ChaosProfile, ChaosTargets
from ..chaos.invariants import (
    ChannelConservation,
    DagConservation,
    Invariant,
    LeaseExclusivity,
    MembershipAgreement,
    QuorumSafety,
    ServingConservation,
    SingleHead,
    StrandedTasks,
    TaskConservation,
    TierConservation,
)
from ..chaos.scenarios import (
    attach_stack,
    finish_storage,
    standard_invariants,
    storage_workload,
    task_stream,
)
from ..faults import ConsistencyChecker
from ..faults.plan import FaultPlan
from ..infra.central_cloud import CentralCloud
from ..tier import (
    BackhaulLink,
    CentralCloudTier,
    TieredOffloader,
    TierTopology,
    VCloudTier,
)
from ..core import (
    BacklogEstimator,
    CheckpointHandoverPolicy,
    DynamicVCloud,
    InfrastructureVCloud,
    ResourceOffer,
    VehicularCloud,
)
from ..dag import (
    DagScheduler,
    RedundancyPlanner,
    ReliabilityEstimator,
    map_reduce_template,
    pipeline_template,
)
from ..errors import CampaignError
from ..geometry import Vec2
from ..infra import deploy_rsus_on_highway
from ..mobility import Highway, HighwayModel, ManhattanGrid, ManhattanModel, StationaryModel
from ..serve import (
    CircuitBreakerBoard,
    CompositeAdmission,
    DeadlineFeasibilityAdmission,
    DeadlineLapseShedder,
    HedgePolicy,
    PoissonArrivals,
    QueueDelayShedder,
    ServiceGateway,
    TenantFairShareAdmission,
    TenantSpec,
    WorkloadGenerator,
)
from ..sim import ScenarioConfig, World
from .spec import RunSpec

#: Blended mean task size of the serving tenant mix (70% bulk @200 MI +
#: 30% interactive @150 MI) — sizes the open-loop rate off capacity.
MEAN_WORK_MI = 185.0

#: Sim-seconds the mobile architectures get to form membership before
#: the serving workload sizes its open-loop rate off actual capacity.
SERVING_SETTLE_S = 3.0

#: Fault-profile names -> seeded chaos grammars.  ``None`` means no
#: member-level injector is armed; "light"/"heavy" differ in fault
#: density.  "backhaul" also maps to ``None`` here — its faults target
#: the WAN link through :func:`backhaul_fault_plan` and a
#: :class:`~repro.faults.backhaul.BackhaulFaultDriver`, not the fleet.
FAULT_PROFILE_TABLE: Dict[str, Optional[ChaosProfile]] = {
    "none": None,
    "light": ChaosProfile(mean_interval_s=12.0, max_faults=24),
    "heavy": ChaosProfile(mean_interval_s=5.0, max_faults=48),
    "backhaul": None,
}


def backhaul_fault_plan(seed: int, run_length_s: float) -> FaultPlan:
    """The WAN fault schedule for the "backhaul" campaign profile.

    One loss burst, one hard outage and one jitter spike, spread over
    the run proportionally so short smoke cells and long nightly cells
    stress the same phases of the workload.
    """
    plan = FaultPlan(seed)
    window = run_length_s * 0.15
    plan.loss_burst(run_length_s * 0.20, duration_s=window, drop_probability=0.3)
    plan.partition(run_length_s * 0.45, duration_s=window)
    plan.jitter_spike(
        run_length_s * 0.70, duration_s=window, max_extra_delay_s=0.5
    )
    return plan


@dataclass
class CampaignScenario:
    """Everything one campaign run needs from its builders."""

    world: World
    cloud: VehicularCloud
    invariants: List[Invariant]
    channel: Any = None
    infrastructure: Sequence = ()
    node_lookup: Optional[Callable[[str], Optional[object]]] = None
    gateway: Optional[ServiceGateway] = None
    dag_scheduler: Optional[DagScheduler] = None
    #: Tiered-architecture wiring (None for single-tier architectures).
    offloader: Optional[TieredOffloader] = None
    backhaul_link: Optional[BackhaulLink] = None
    #: Extra metric extractors appended by the workload builder.
    vector_sources: List[Callable[[], Dict[str, float]]] = field(default_factory=list)

    def targets(self) -> ChaosTargets:
        """The fault-target inventory for plan generation."""
        return ChaosTargets(
            members=self.cloud.member_count(),
            has_channel=self.channel is not None,
            infrastructure=len(self.infrastructure),
        )


# -- architecture x mobility ------------------------------------------------


def _mobile_invariants(
    cloud: VehicularCloud,
    world: World,
    checker: ConsistencyChecker,
    external_heads: Sequence[str] = (),
) -> List[Invariant]:
    """The chaos suite's invariant set with mobile convergence windows."""
    return [
        TaskConservation(cloud),
        LeaseExclusivity(cloud),
        SingleHead(cloud, external_heads=tuple(external_heads)),
        MembershipAgreement(cloud, convergence_s=2.0),
        QuorumSafety(checker),
        ChannelConservation(world),
        StrandedTasks(cloud, grace_s=12.0),
    ]


def _build_stationary(spec: RunSpec) -> CampaignScenario:
    world = World(ScenarioConfig(seed=spec.world_seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(spec.members)]
    )
    vehicles = model.populate(spec.members)
    channel, lookup = attach_stack(world, vehicles)
    cloud = VehicularCloud(
        world, "campaign-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    checker = finish_storage(cloud, hardened=True)
    return CampaignScenario(
        world=world,
        cloud=cloud,
        invariants=standard_invariants(cloud, world, checker),
        channel=channel,
        node_lookup=lookup,
    )


def _build_dynamic(spec: RunSpec) -> CampaignScenario:
    world = World(ScenarioConfig(seed=spec.world_seed, vehicle_count=spec.members))
    if spec.mobility == "grid":
        grid = ManhattanGrid(blocks_x=4, blocks_y=4, block_size_m=400.0)
        model: Any = ManhattanModel(world, grid)
    else:
        model = HighwayModel(world, Highway(length_m=3000.0))
    model.populate(spec.members)
    model.start()
    channel, lookup = attach_stack(world, model.vehicles)
    arch = DynamicVCloud(world, model)
    arch.start()
    cloud = arch.cloud
    checker = finish_storage(cloud, hardened=True)
    # Membership-derived tables lag one refresh under churn; mirror the
    # chaos suite's convergence windows.
    return CampaignScenario(
        world=world,
        cloud=cloud,
        invariants=_mobile_invariants(cloud, world, checker),
        channel=channel,
        node_lookup=lookup,
    )


def _build_infrastructure(spec: RunSpec) -> CampaignScenario:
    world = World(ScenarioConfig(seed=spec.world_seed, vehicle_count=spec.members))
    highway = Highway(length_m=3000.0)
    model = HighwayModel(world, highway)
    model.populate(spec.members)
    model.start()
    from ..net import BeaconService, VehicleNode, WirelessChannel

    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500.0)
    nodes: Dict[str, VehicleNode] = {}
    for vehicle in model.vehicles:
        node = VehicleNode(world, channel, vehicle)
        BeaconService(world, node).start()
        nodes[vehicle.vehicle_id] = node
    arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    cloud = arch.cloud
    checker = finish_storage(cloud, hardened=True)
    invariants = _mobile_invariants(
        cloud, world, checker, external_heads=(rsus[0].node_id,)
    )
    return CampaignScenario(
        world=world,
        cloud=cloud,
        invariants=invariants,
        channel=channel,
        infrastructure=rsus,
        node_lookup=lambda node_id: nodes.get(node_id),
    )


def _build_tiered(spec: RunSpec) -> CampaignScenario:
    """Stationary local v-cloud + datacenter tier behind a WAN backhaul."""
    base = _build_stationary(spec)
    world = base.world
    central = CentralCloud(world, compute_mips=50_000.0, wan_delay_s=0.0)
    link = BackhaulLink(
        world, "campaign-wan", base_latency_s=0.05, loss_probability=0.02
    )
    topology = TierTopology()
    topology.register(VCloudTier(world, "local", "local", base.cloud))
    topology.register(CentralCloudTier(world, "central", central, link))
    offloader = TieredOffloader(world, topology, name="campaign")
    base.offloader = offloader
    base.backhaul_link = link
    base.invariants.append(TierConservation(offloader))

    def vector() -> Dict[str, float]:
        stats = offloader.stats
        wan = link.accounting()
        return {
            "tier/submitted": float(stats.submitted),
            "tier/completed": float(stats.completed),
            "tier/failed": float(stats.failed),
            "tier/deadline_hit_rate": stats.deadline_hit_rate(),
            "tier/speculated": float(stats.speculated),
            "tier/degraded": float(sum(stats.degraded.values())),
            "tier/wins_local": float(stats.wins_by_tier.get("local", 0)),
            "tier/wins_remote": float(stats.wins_by_tier.get("central", 0)),
            "tier/backhaul_sent": float(wan["sent"]),
            "tier/backhaul_lost": float(wan["lost"]),
        }

    base.vector_sources.append(vector)
    return base


_ARCHITECTURE_BUILDERS: Dict[str, Callable[[RunSpec], CampaignScenario]] = {
    "stationary": _build_stationary,
    "dynamic": _build_dynamic,
    "infrastructure": _build_infrastructure,
    "tiered": _build_tiered,
}


# -- workloads ---------------------------------------------------------------


def _attach_tasks(spec: RunSpec, scenario: CampaignScenario) -> None:
    """Batch task stream + storage read/write churn (the chaos workload).

    On the tiered architecture the stream routes through the
    :class:`~repro.tier.TieredOffloader` as deadline-bearing speculative
    tasks, so campaign cells exercise the same submit path E20 measures;
    everywhere else it submits straight to the cloud.
    """
    count = max(4, int(spec.run_length_s // 3))
    offloader = scenario.offloader
    if offloader is None:
        records = task_stream(
            scenario.world, scenario.cloud, count=count, work_mi=2000.0
        )

        def vector() -> Dict[str, float]:
            stats = scenario.cloud.stats
            submitted = float(stats.submitted)
            return {
                "tasks/submitted": submitted,
                "tasks/completed": float(stats.completed),
                "tasks/failed": float(stats.failed),
                "tasks/completion_rate": (
                    stats.completed / submitted if submitted else 0.0
                ),
                "tasks/records": float(len(records)),
                "storage/degraded": float(stats.storage_degraded),
            }

    else:
        from ..core import Task

        deadline_s = spec.run_length_s * 0.75
        for index in range(count):
            scenario.world.engine.schedule_at(
                1.0 + index * 2.0,
                lambda: offloader.submit(
                    Task(work_mi=2000.0, deadline_s=deadline_s, submitter="campaign"),
                    policy="speculate",
                ),
                label="campaign-tier-task",
            )

        def vector() -> Dict[str, float]:
            stats = offloader.stats
            submitted = float(stats.submitted)
            return {
                "tasks/submitted": submitted,
                "tasks/completed": float(stats.completed),
                "tasks/failed": float(stats.failed),
                "tasks/completion_rate": (
                    stats.completed / submitted if submitted else 0.0
                ),
                "tasks/records": submitted,
                "storage/degraded": float(scenario.cloud.stats.storage_degraded),
            }

    storage_workload(scenario.world, scenario.cloud)
    scenario.vector_sources.append(vector)


def _attach_serving(spec: RunSpec, scenario: CampaignScenario) -> None:
    """Protected gateway under an open-loop tenant mix at ``load_factor``.

    On the tiered architecture the gateway routes through ``tiering=``
    (cross-tier speculation) instead of same-tier hedging — the two are
    mutually exclusive by construction.
    """
    world = scenario.world
    gateway = ServiceGateway(
        world,
        scenario.cloud,
        name="campaign",
        queue_capacity=32,
        admission=CompositeAdmission([
            DeadlineFeasibilityAdmission(),
            TenantFairShareAdmission(share=0.7),
        ]),
        shedders=[DeadlineLapseShedder(), QueueDelayShedder(max_delay_s=4.0)],
        breakers=CircuitBreakerBoard(world, "campaign"),
        hedging=None if scenario.offloader is not None else HedgePolicy(),
        tiering=scenario.offloader,
        backlog=BacklogEstimator(scenario.cloud),
    )
    horizon_s = max(1.0, spec.run_length_s - SERVING_SETTLE_S)

    def start_traffic() -> None:
        # Rate sized off the *actual* admitted capacity so the same
        # load factor means the same pressure on every architecture.
        capacity_tasks_s = max(
            0.5, gateway.aggregate_capacity_mips() / MEAN_WORK_MI
        )
        rate = spec.load_factor * capacity_tasks_s
        tenants = [
            TenantSpec(
                name="bulk",
                arrivals=PoissonArrivals(rate * 0.7),
                work_mi_range=(150.0, 250.0),
                deadline_s=8.0,
                priority=2,
            ),
            TenantSpec(
                name="interactive",
                arrivals=PoissonArrivals(rate * 0.3),
                work_mi_range=(100.0, 200.0),
                deadline_s=6.0,
                priority=1,
            ),
        ]
        WorkloadGenerator(world, gateway, tenants, horizon_s=horizon_s).start()

    world.engine.schedule_at(
        SERVING_SETTLE_S, start_traffic, label="campaign-serving-start"
    )

    def vector() -> Dict[str, float]:
        stats = gateway.stats
        terminal = stats.completed + stats.failed + stats.shed
        latencies = sorted(stats.latencies_s)
        from ..sim.metrics import percentile

        return {
            "serve/offered": float(stats.offered),
            "serve/admitted": float(stats.admitted),
            "serve/rejected": float(stats.rejected),
            "serve/shed": float(stats.shed),
            "serve/completed": float(stats.completed),
            "serve/failed": float(stats.failed),
            "serve/goodput_per_s": stats.slo_hits / horizon_s,
            "serve/deadline_hit_rate": (
                stats.slo_hits / terminal if terminal else 0.0
            ),
            "serve/p50_latency_s": percentile(latencies, 0.50) if latencies else 0.0,
            "serve/p99_latency_s": percentile(latencies, 0.99) if latencies else 0.0,
            "serve/hedges_launched": float(stats.hedges_launched),
        }

    scenario.gateway = gateway
    scenario.invariants.append(ServingConservation(gateway))
    scenario.vector_sources.append(vector)


def _attach_dag(spec: RunSpec, scenario: CampaignScenario) -> None:
    """Dependable DAG stream: redundancy, checkpointing, backlog-aware."""
    world = scenario.world
    scheduler = DagScheduler(
        world,
        scenario.cloud,
        name="campaign",
        reliability=ReliabilityEstimator(scenario.cloud),
        redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
        checkpointing=True,
        backlog=BacklogEstimator(scenario.cloud),
    )
    deadline_s = max(20.0, spec.run_length_s * 0.75)
    templates = [
        pipeline_template([(300.0, 600.0)] * 3, deadline_s=deadline_s),
        map_reduce_template(3, (200.0, 450.0), (300.0, 500.0), deadline_s=deadline_s),
    ]
    rng = world.rng.fork("campaign/dag")
    gap_s = max(2.0, spec.run_length_s / max(1, spec.graph_count) * 0.5)
    for index in range(spec.graph_count):
        template = templates[index % len(templates)]
        world.engine.schedule_at(
            1.0 + index * gap_s,
            lambda t=template: scheduler.submit(
                t.instantiate(rng, submitter="campaign")
            ),
            label="campaign-graph-submit",
        )

    def vector() -> Dict[str, float]:
        stats = scheduler.stats
        judged = stats.deadline_hits + stats.deadline_misses
        return {
            "dag/graphs_submitted": float(stats.graphs_submitted),
            "dag/graphs_completed": float(stats.graphs_completed),
            "dag/graphs_failed": float(stats.graphs_failed),
            "dag/deadline_hit_rate": (
                stats.deadline_hits / judged if judged else 0.0
            ),
            "dag/stages_completed": float(stats.stages_completed),
            "dag/stages_reexecuted": float(stats.stages_reexecuted),
            "dag/replicas_cancelled": float(stats.replicas_cancelled),
            "dag/replicas_load_shed": float(stats.replicas_load_shed),
            "dag/checkpoint_writes": float(stats.checkpoint_writes),
        }

    scenario.dag_scheduler = scheduler
    scenario.invariants.append(DagConservation(scheduler))
    scenario.vector_sources.append(vector)


_WORKLOAD_BUILDERS: Dict[str, Callable[[RunSpec, CampaignScenario], None]] = {
    "tasks": _attach_tasks,
    "serving": _attach_serving,
    "dag": _attach_dag,
}


def fault_profile_for(name: str) -> Optional[ChaosProfile]:
    """The chaos grammar for a fault-profile name (None = no faults)."""
    try:
        return FAULT_PROFILE_TABLE[name]
    except KeyError:
        raise CampaignError(f"unknown fault profile: {name!r}") from None


def build_scenario(spec: RunSpec) -> CampaignScenario:
    """Compose the architecture and workload builders for one cell."""
    try:
        build_arch = _ARCHITECTURE_BUILDERS[spec.architecture]
        attach_workload = _WORKLOAD_BUILDERS[spec.workload]
    except KeyError as exc:
        raise CampaignError(f"no builder for {exc}") from None
    scenario = build_arch(spec)
    attach_workload(spec, scenario)
    return scenario


__all__: Sequence[str] = (
    "FAULT_PROFILE_TABLE",
    "MEAN_WORK_MI",
    "SERVING_SETTLE_S",
    "CampaignScenario",
    "backhaul_fault_plan",
    "build_scenario",
    "fault_profile_for",
)
