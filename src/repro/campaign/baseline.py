"""Persistent baselines campaigns are judged against.

A :class:`BaselineStore` is a directory of one JSON document per
campaign (``<dir>/<campaign>.json``), each holding the per-cell and
per-run metric vectors of a blessed reference execution::

    {
      "campaign": "smoke",
      "cells": {"arch=...,wl=...,fault=...,mob=...": {"metric": value}},
      "runs":  {"<cell>/seed=N": {"metric": value}},
      "source": {...}          # provenance: where the numbers came from
    }

The store can also ingest the historical E-series benchmark results
(``benchmarks/results/E*.json``, written by the ``record_run_json``
fixture) so pre-campaign experiments participate in regression tracking
under the synthetic campaign name ``eseries``.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Mapping, Sequence

from ..errors import CampaignError
from .orchestrator import CampaignRun


def _load_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load {path!r}: {exc}") from exc


class BaselineStore:
    """Directory-backed store of campaign metric baselines."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def path_for(self, campaign: str) -> str:
        if not campaign or any(sep in campaign for sep in ("/", os.sep)):
            raise CampaignError(f"invalid campaign name: {campaign!r}")
        return os.path.join(self.directory, f"{campaign}.json")

    def exists(self, campaign: str) -> bool:
        return os.path.exists(self.path_for(campaign))

    def load(self, campaign: str) -> Dict[str, Any]:
        """The stored baseline document for one campaign."""
        path = self.path_for(campaign)
        if not os.path.exists(path):
            raise CampaignError(
                f"no baseline for campaign {campaign!r} under {self.directory!r}"
            )
        baseline = _load_json(path)
        for section in ("cells", "runs"):
            baseline.setdefault(section, {})
        return baseline

    def save(self, campaign: str, baseline: Mapping[str, Any]) -> str:
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(campaign)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -- recording -----------------------------------------------------------

    def record(
        self, campaign_run: CampaignRun, note: str = ""
    ) -> str:
        """Bless one executed campaign as the new baseline."""
        document = {
            "campaign": campaign_run.spec.name,
            "cells": campaign_run.cell_vectors(),
            "runs": campaign_run.run_vectors(),
            "source": {
                "kind": "campaign_run",
                "runs": len(campaign_run.outcomes),
                "workers": campaign_run.workers,
                "note": note,
            },
        }
        return self.save(campaign_run.spec.name, document)

    def ingest_results_dir(
        self, results_dir: str, campaign: str = "eseries"
    ) -> str:
        """Fold ``benchmarks/results/E*.json`` files into one baseline.

        Each file (written by the benchmark suite's ``record_run_json``
        fixture) contributes its metric vector under its experiment id;
        multiple vectors per experiment are keyed ``<id>/<row>``.
        """
        paths = sorted(glob.glob(os.path.join(results_dir, "E*.json")))
        if not paths:
            raise CampaignError(f"no E*.json results under {results_dir!r}")
        cells: Dict[str, Dict[str, float]] = {}
        runs: Dict[str, Dict[str, float]] = {}
        for path in paths:
            document = _load_json(path)
            experiment = document.get(
                "experiment", os.path.splitext(os.path.basename(path))[0]
            )
            for index, entry in enumerate(document.get("entries", ())):
                vector = {
                    name: float(value)
                    for name, value in dict(entry.get("vector", {})).items()
                }
                label = entry.get("label") or f"row{index}"
                runs[f"{experiment}/{label}"] = vector
                merged = cells.setdefault(experiment, {})
                for name, value in vector.items():
                    merged[f"{label}/{name}"] = value
        document = {
            "campaign": campaign,
            "cells": cells,
            "runs": runs,
            "source": {"kind": "eseries", "files": len(paths)},
        }
        return self.save(campaign, document)

    def cell_vectors(self, campaign: str) -> Dict[str, Dict[str, float]]:
        """The per-cell baseline vectors (the reporter's reference)."""
        baseline = self.load(campaign)
        return {
            cell: {name: float(value) for name, value in vector.items()}
            for cell, vector in dict(baseline.get("cells", {})).items()
        }

    def run_vectors(self, campaign: str) -> Dict[str, Dict[str, float]]:
        """The per-run baseline vectors (for exact-replay audits)."""
        baseline = self.load(campaign)
        return {
            key: {name: float(value) for name, value in vector.items()}
            for key, vector in dict(baseline.get("runs", {})).items()
        }


def load_baseline_file(path: str) -> Dict[str, Any]:
    """Load a single baseline document directly from ``path``."""
    baseline = _load_json(path)
    for section in ("cells", "runs"):
        baseline.setdefault(section, {})
    return baseline


__all__: Sequence[str] = (
    "BaselineStore",
    "load_baseline_file",
)
