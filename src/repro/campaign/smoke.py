"""CI campaign smoke: the smoke matrix vs its blessed baseline.

Run as ``python -m repro.campaign.smoke`` from the repository root (or
pass explicit paths).  Executes ``campaigns/smoke.json`` on 2 workers
into a temp directory, compares the per-cell metric vectors against
``campaigns/baselines/smoke.json`` with the spec's tolerance bands, and
fails loud on:

* any flagged regression (drift outside tolerance in the bad
  direction, a metric that disappeared, or a NaN);
* any invariant violation in any run;
* a per-run metric vector that drifted from the blessed per-run vector
  (seeded runs must replay byte-identically, so even *within-tolerance*
  per-run drift means determinism broke).

Exit status is the CI contract: 0 green, 1 regression/violation.
"""

from __future__ import annotations

import sys
import tempfile
from typing import List, Optional

from .baseline import load_baseline_file
from .orchestrator import CampaignOrchestrator
from .report import Reporter
from .spec import CampaignSpec

DEFAULT_SPEC = "campaigns/smoke.json"
DEFAULT_BASELINE = "campaigns/baselines/smoke.json"
WORKERS = 2


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    spec_path = args[0] if len(args) > 0 else DEFAULT_SPEC
    baseline_path = args[1] if len(args) > 1 else DEFAULT_BASELINE

    spec = CampaignSpec.load(spec_path)
    baseline = load_baseline_file(baseline_path)
    out_dir = tempfile.mkdtemp(prefix="campaign-smoke-")

    campaign_run = CampaignOrchestrator(spec, out_dir, workers=WORKERS).execute()
    report = Reporter.for_spec(spec).compare(campaign_run, baseline)
    report.write(out_dir)

    failures = 0
    print(
        f"campaign {spec.name}: {len(campaign_run.outcomes)} runs, "
        f"{len(campaign_run.violations)} violation(s), "
        f"{campaign_run.wall_clock_s:.1f}s on {WORKERS} workers"
    )
    for finding in report.regressions:
        failures += 1
        print(f"!! {finding.describe()}")
    for violation in campaign_run.violations[:10]:
        failures += 1
        print(f"!! invariant violation: {violation}")
    for finding in report.improvements:
        print(f"   {finding.describe()}")

    # Byte-level replay audit: per-run vectors must match the blessed
    # run vectors exactly — tolerance bands are for cell aggregates, a
    # seeded run that drifted at all means determinism broke.
    blessed_runs = baseline.get("runs", {})
    for key, vector in sorted(campaign_run.run_vectors().items()):
        blessed = blessed_runs.get(key)
        if blessed is None:
            print(f"   new run (no blessed vector): {key}")
            continue
        if {k: float(v) for k, v in blessed.items()} != vector:
            failures += 1
            drifted = sorted(
                name
                for name in set(blessed) | set(vector)
                if float(blessed.get(name, float("nan")))
                != vector.get(name, float("nan"))
            )
            print(f"!! run vector drifted from blessed replay: {key} {drifted}")

    if failures:
        print(f"CAMPAIGN SMOKE FAILED ({failures} problem(s)); report in {out_dir}")
        return 1
    print(f"campaign smoke passed; report in {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
