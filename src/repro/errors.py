"""Exception hierarchy for the vcloud-repro framework.

All framework exceptions derive from :class:`VCloudError` so callers can
catch every framework failure with a single ``except`` clause while the
subclasses keep failure modes distinguishable.
"""

from __future__ import annotations


class VCloudError(Exception):
    """Base class for every error raised by this framework."""


class ConfigurationError(VCloudError):
    """A scenario or component was configured with invalid parameters."""


class SimulationError(VCloudError):
    """The simulation engine was driven into an invalid state."""


class NetworkError(VCloudError):
    """A network-layer operation failed (no route, node offline, ...)."""


class RoutingError(NetworkError):
    """A routing protocol could not deliver or forward a message."""


class SecurityError(VCloudError):
    """Base class for security-related failures."""


class AuthenticationError(SecurityError):
    """An authentication handshake failed or was rejected."""


class AuthorizationError(SecurityError):
    """An access request was denied by the policy engine."""


class RevocationError(SecurityError):
    """A credential was found on a revocation list."""


class CryptoError(SecurityError):
    """A (simulated) cryptographic operation failed verification."""


class TrustError(VCloudError):
    """Trustworthiness evaluation could not produce a decision."""


class ResourceError(VCloudError):
    """A resource pool could not satisfy a reservation."""


class ReplicaPlacementError(ResourceError):
    """Re-replication found no eligible member to host a replica.

    Raised instead of a generic :class:`ResourceError` so callers can
    degrade (serve from the surviving replicas, retry later) rather than
    treat the condition as an unrecoverable crash.
    """


class QuorumUnreachableError(ResourceError):
    """A quorum read/write could not reach enough live replicas."""


class TaskError(VCloudError):
    """Task allocation, execution, or handover failed."""


class MembershipError(VCloudError):
    """A cloud membership operation (join/leave/merge/split) failed."""


class ChaosError(VCloudError):
    """A chaos campaign, reproducer capture, or replay failed."""


class CampaignError(VCloudError):
    """A scenario campaign spec, run, or report could not be produced."""
