"""CI DAG smoke: fixed-seed DAG run under churn, fails loud.

Run as ``python -m repro.dag.smoke``.  Builds a stationary cloud with
leases, backoff and replicated storage, submits a staggered stream of
pipeline and map-reduce graphs through the dependable
:class:`~repro.dag.scheduler.DagScheduler` (reliability-aware
redundancy + checkpointing), crashes a third of the members mid-run,
and asserts:

* every graph reached a typed terminal state (none stuck running);
* the :class:`~repro.chaos.invariants.DagConservation` and
  :class:`~repro.chaos.invariants.TaskConservation` invariants held at
  every periodic check (zero violations);
* the graph and replica streams balance at the end of the run;
* the capacity-aware planner path engaged: the scheduler runs with a
  :class:`~repro.core.capacity.BacklogEstimator` (E18's adaptive
  configuration), so stage plans must ledger ``predicted_deadline_hit``
  — only candidate-drought fallbacks may use the static rule.
"""

from __future__ import annotations

import sys

from ..chaos.invariants import DagConservation, InvariantSuite, TaskConservation
from ..core import (
    BackoffPolicy,
    BacklogEstimator,
    CheckpointHandoverPolicy,
    ResourceOffer,
    VehicularCloud,
)
from ..faults import FaultInjector, FaultPlan
from ..geometry import Vec2
from ..mobility import StationaryModel
from ..sim import ScenarioConfig, World
from . import (
    DagScheduler,
    GraphState,
    RedundancyPlanner,
    ReliabilityEstimator,
    map_reduce_template,
    pipeline_template,
)

SEED = 1717
MEMBERS = 10
GRAPHS = 6
HORIZON_S = 240.0


def main() -> int:
    world = World(ScenarioConfig(seed=SEED))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(
        world,
        "dag-smoke-vc",
        handover_policy=CheckpointHandoverPolicy(),
        retry_backoff=BackoffPolicy(
            base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
        ),
    )
    # Heterogeneous workers: replica runtimes diverge, so first-result-
    # wins actually has losers to cancel.
    for index, vehicle in enumerate(vehicles):
        cloud.admit(
            vehicle,
            offer=ResourceOffer(
                vehicle.vehicle_id, 70.0 + 10.0 * index, 10**9, 1e6
            ),
        )
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    cloud.enable_replicated_storage(capacity_bytes=10**8)
    scheduler = DagScheduler(
        world,
        cloud,
        name="smoke",
        reliability=ReliabilityEstimator(cloud),
        redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
        checkpointing=True,
        backlog=BacklogEstimator(cloud),
    )

    templates = [
        pipeline_template([(800.0, 1200.0)] * 3, deadline_s=120.0),
        map_reduce_template(3, (500.0, 900.0), (600.0, 800.0), deadline_s=120.0),
    ]
    rng = world.rng.fork("dag/smoke")
    for index in range(GRAPHS):
        template = templates[index % len(templates)]
        world.engine.schedule_at(
            index * 5.0,
            lambda t=template: scheduler.submit(t.instantiate(rng, submitter="smoke")),
            label="graph-submit",
        )

    targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
    plan = FaultPlan(SEED).random_crashes(
        round(MEMBERS / 3), (10.0, 60.0), targets=targets
    )
    FaultInjector(world, plan, cloud=cloud).arm()

    suite = InvariantSuite(
        [TaskConservation(cloud), DagConservation(scheduler)], metrics=world.metrics
    )
    suite.attach(world, check_interval_s=0.5)
    world.run_until(HORIZON_S)

    failures = 0
    acc = scheduler.accounting()
    stats = scheduler.stats
    print(f"accounting: {acc}")
    print(f"failure reasons: {stats.failure_reasons}")
    print(
        f"stages: completed={stats.stages_completed} "
        f"reexecuted={stats.stages_reexecuted} "
        f"checkpoints={stats.checkpoint_writes} "
        f"redundant={stats.redundant_dispatches} "
        f"cancelled={stats.replicas_cancelled} "
        f"load_shed={stats.replicas_load_shed}"
    )
    print(f"invariant checks: {suite.checks_run}, violations: {len(suite.violations)}")

    if acc["graphs_submitted"] != GRAPHS:
        failures += 1
        print(f"!! expected {GRAPHS} graphs submitted, saw {acc['graphs_submitted']}")
    stuck = [r for r in scheduler.records if r.state is GraphState.RUNNING]
    if stuck:
        failures += 1
        print(f"!! {len(stuck)} graph(s) still running after the horizon")
    if sum(stats.failure_reasons.values()) != stats.graphs_failed:
        failures += 1
        print("!! graph failure counter disagrees with typed failure reasons")
    if acc["replicas_live"] != 0:
        failures += 1
        print("!! live replicas remain after every graph reached a terminal state")
    if suite.violations:
        failures += 1
        for violation in suite.violations[:5]:
            print(f"!! {violation.describe()}")
    if cloud.stats.worker_crashes == 0:
        failures += 1
        print("!! fault plan never fired (smoke exercised nothing)")
    # Plans made during a candidate drought legitimately fall back to
    # the static rule, so require the adaptive ledger on the rest.
    ledgered = sum(
        1
        for record in scheduler.records
        for run in record.stages.values()
        if run.last_plan is not None
        and run.last_plan.predicted_deadline_hit is not None
    )
    if ledgered == 0:
        failures += 1
        print(
            "!! no stage plan ledgered a predicted_deadline_hit — the "
            "capacity-aware planner path never engaged"
        )

    if failures:
        print(f"DAG SMOKE FAILED ({failures} problem(s))")
        return 1
    print("dag smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
