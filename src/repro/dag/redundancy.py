"""Reliability- and capacity-aware stage replication (k-of-n).

The :class:`RedundancyPlanner` decides how many replicas a stage needs.
Given the survival probabilities of the available workers it grows the
replica set best-first — replicating exactly the stages most likely to
be lost, and leaving reliable stages un-replicated so redundancy costs
scale with risk, not with graph size.

The survival-only version of that rule has a failure mode E17 exposed:
when churn shrinks the fleet, survival probabilities drop, so the
planner adds *more* replicas exactly when the fleet has *less* spare
capacity — replication amplifies queueing and deadline misses in a
positive feedback loop.  The planner therefore optimizes the predicted
**deadline-hit** probability, not the raw survival probability, when
the caller supplies the deadline budget and a
:class:`~repro.core.capacity.LoadSignal`: each marginal replica's
survival gain is discounted by the queue delay it induces on the rest
of the fleet, so under combined churn and load the plan *sheds*
redundancy instead of piling it on.  ``max_replicas`` stays as a hard
cap either way.  "Leveraging Cloud Computing to Make Autonomous
Vehicles Safer" (PAPERS.md) is the source of the objective choice:
deadline-hit probability, not success probability, is the quantity an
autonomous-driving workload cares about.

Success probability over a heterogeneous replica set is computed exactly
with the standard Poisson-binomial dynamic program, so the plan is
deterministic and auditable (``predicted_success`` and
``predicted_deadline_hit`` are carried on the plan and into the stage's
trace span), and ``chosen_indices`` maps every planned replica slot
back to the caller's candidate list — on ties the caller's order is
preserved, so the ledgered probabilities always describe the workers
actually planned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.capacity import LoadSignal
from ..errors import ConfigurationError


def success_probability(survival_ps: Sequence[float], k: int) -> float:
    """P(at least ``k`` of the replicas survive), exactly.

    Poisson-binomial tail via the O(n·k) dynamic program over
    ``P(j successes among first i replicas)``.  Inputs are validated
    before any computation: a NaN or out-of-range probability raises
    :class:`~repro.errors.ConfigurationError` without mutating any
    state, so a caller holding partial results never sees a
    half-updated distribution.
    """
    for p in survival_ps:
        # NaN fails both comparisons, so it is rejected here too.
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("survival probabilities must be in [0, 1]")
    if k <= 0:
        return 1.0
    if k > len(survival_ps):
        return 0.0
    # dist[j] = P(exactly j successes so far) for j < k; dist[k] absorbs
    # P(at least k) — once the threshold is reached it can't be lost.
    dist: List[float] = [1.0] + [0.0] * k
    for p in survival_ps:
        dist[k] += dist[k - 1] * p
        for j in range(k - 1, 0, -1):
            dist[j] = dist[j] * (1.0 - p) + dist[j - 1] * p
        dist[0] *= 1.0 - p
    return dist[k]


@dataclass(frozen=True)
class RedundancyPlan:
    """The planner's decision for one stage dispatch."""

    replicas: int
    k: int
    predicted_success: float
    #: Survival probabilities of the chosen replica slots, best first.
    survival_ps: Tuple[float, ...]
    #: Index into the caller's candidate sequence for each chosen slot,
    #: aligned with ``survival_ps`` — ties keep the caller's order, so
    #: slot ``i`` always describes candidate ``chosen_indices[i]``.
    chosen_indices: Tuple[int, ...] = ()
    #: Predicted P(stage completes within its deadline budget), None
    #: when the plan was made without a load signal or budget.
    predicted_deadline_hit: Optional[float] = None
    #: Replicas the survival-only rule would have added but the
    #: queue-delay discount withheld (the anti-amplification path).
    load_shed: int = 0

    @property
    def redundant(self) -> bool:
        """Whether the plan carries more replicas than strictly needed."""
        return self.replicas > self.k


class RedundancyPlanner:
    """Sizes a stage's replica set for completion probability — and load.

    ``k`` is how many replicas must finish for the stage to count (1 =
    first-result-wins); ``target_success`` is the per-stage completion
    probability to aim for; ``max_replicas`` bounds the resources any
    single stage may burn — when even the cap cannot reach the target
    the planner returns the capped plan rather than refusing, because a
    best-effort attempt still beats failing the graph outright.

    Without a load signal :meth:`plan` reproduces the survival-only
    growth rule (the static baseline E18 contrasts against).  With
    ``budget_s``/``runtime_s``/``load`` supplied it sheds replicas
    whose induced queue delay outweighs their survival gain under the
    predicted deadline-hit objective — see
    :meth:`deadline_hit_probability`.
    """

    def __init__(
        self,
        target_success: float = 0.95,
        max_replicas: int = 3,
        k: int = 1,
    ) -> None:
        if not 0.0 < target_success < 1.0:
            raise ConfigurationError("target_success must be in (0, 1)")
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if max_replicas < k:
            raise ConfigurationError("max_replicas must be >= k")
        self.target_success = target_success
        self.max_replicas = max_replicas
        self.k = k

    # -- the objective -------------------------------------------------------

    def deadline_hit_probability(
        self,
        survival_ps: Sequence[float],
        budget_s: float,
        runtime_s: float,
        load: LoadSignal,
    ) -> float:
        """Predicted P(stage finishes in time) for one candidate plan.

        Survival (Poisson-binomial ``>= k`` tail) times an on-time
        factor.  The on-time factor decays linearly as the queue delay
        the *extra* replicas (beyond ``k``) induce eats the slack a
        lone dispatch would have had
        (``budget - runtime - standing queue delay``).  The induced
        delay is scaled by contention pressure — the standing queue
        delay relative to the remaining slack — because a replica's
        work only queues anything when work is already waiting: an idle
        fleet absorbs replicas for free (on a heterogeneous fleet they
        even *shorten* the stage, first-result-wins racing the fastest
        worker), so with an empty queue the objective degenerates to
        pure survival and the plan matches the static rule exactly.
        With no slack left, extra replicas cannot help the deadline at
        all — the regime where the planner must shed.
        """
        survival = success_probability(survival_ps, self.k)
        slack_s = budget_s - runtime_s - load.queue_delay_s
        if slack_s <= 0.0:
            # Already out of time before any induced delay: redundancy
            # only subtracts capacity, it cannot buy the deadline back.
            return 0.0
        pressure = (
            min(1.0, load.queue_delay_s / slack_s)
            if load.queue_delay_s > 0.0
            else 0.0
        )
        extras = max(0, len(survival_ps) - self.k)
        if extras == 0 or pressure <= 0.0:
            return survival
        induced_s = extras * load.marginal_delay_s * pressure
        on_time = max(0.0, 1.0 - induced_s / slack_s)
        return survival * on_time

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        survival_ps: Sequence[float],
        budget_s: Optional[float] = None,
        runtime_s: Optional[float] = None,
        load: Optional[LoadSignal] = None,
    ) -> RedundancyPlan:
        """Choose replica slots given candidate survival probabilities.

        ``survival_ps`` is in the caller's candidate order; the planner
        ranks it best-first internally (stable — ties keep the caller's
        order) and returns ``chosen_indices`` into the caller's
        sequence, so the recorded probabilities always describe the
        candidates actually planned.

        Without ``budget_s``/``runtime_s``/``load``, growth is
        survival-only: add replicas best-first while the predicted
        success probability is below ``target_success``.  With them,
        the planner starts from that same survival-only count and then
        *sheds* extras while dropping one does not lower the predicted
        deadline-hit probability (ties favor fewer replicas — under
        heavy load the whole surplus sheds down to ``k``).  Shedding
        from the static count, rather than re-growing against the hit
        objective, guarantees the load-aware plan never carries more
        replicas than the static rule and coincides with it exactly
        whenever the fleet is uncontended.
        """
        order = sorted(range(len(survival_ps)), key=lambda i: (-survival_ps[i], i))
        ranked = [survival_ps[i] for i in order]
        cap = min(self.max_replicas, len(ranked))
        base = min(self.k, cap) if cap else 0
        if base == 0:
            return RedundancyPlan(0, self.k, 0.0, ())

        # Survival-only growth — the static rule, also the reference
        # count the load-aware path reports shedding against.
        static_count = base
        while (
            success_probability(ranked[:static_count], self.k) < self.target_success
            and static_count < cap
        ):
            static_count += 1

        load_aware = budget_s is not None and runtime_s is not None and load is not None
        if not load_aware:
            count = static_count
            predicted_hit: Optional[float] = None
        else:
            assert budget_s is not None and runtime_s is not None and load is not None
            count = static_count
            predicted_hit = self.deadline_hit_probability(
                ranked[:count], budget_s, runtime_s, load
            )
            # Shed extras while a smaller set predicts at least as well
            # — strictly-better survival keeps its replica, so an
            # uncontended plan is byte-identical to the static one.
            while count > base:
                hit = self.deadline_hit_probability(
                    ranked[: count - 1], budget_s, runtime_s, load
                )
                if hit < predicted_hit:
                    break
                count -= 1
                predicted_hit = hit

        return RedundancyPlan(
            replicas=count,
            k=self.k,
            predicted_success=success_probability(ranked[:count], self.k),
            survival_ps=tuple(ranked[:count]),
            chosen_indices=tuple(order[:count]),
            predicted_deadline_hit=predicted_hit,
            load_shed=max(0, static_count - count) if load_aware else 0,
        )
