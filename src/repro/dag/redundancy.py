"""Reliability-aware stage replication (k-of-n).

The :class:`RedundancyPlanner` decides how many replicas a stage needs:
given the survival probabilities of the best available workers, it grows
the replica set until the predicted probability that at least ``k``
replicas finish reaches the target — replicating exactly the stages most
likely to be lost, and leaving reliable stages un-replicated so
redundancy costs scale with risk, not with graph size.

Success probability over a heterogeneous replica set is computed exactly
with the standard Poisson-binomial dynamic program, so the plan is
deterministic and auditable (``predicted_success`` is carried on the
plan and into the stage's trace span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError


def success_probability(survival_ps: Sequence[float], k: int) -> float:
    """P(at least ``k`` of the replicas survive), exactly.

    Poisson-binomial tail via the O(n·k) dynamic program over
    ``P(j successes among first i replicas)``.
    """
    if k <= 0:
        return 1.0
    if k > len(survival_ps):
        return 0.0
    # dist[j] = P(exactly j successes so far) for j < k; dist[k] absorbs
    # P(at least k) — once the threshold is reached it can't be lost.
    dist: List[float] = [1.0] + [0.0] * k
    for p in survival_ps:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("survival probabilities must be in [0, 1]")
        dist[k] += dist[k - 1] * p
        for j in range(k - 1, 0, -1):
            dist[j] = dist[j] * (1.0 - p) + dist[j - 1] * p
        dist[0] *= 1.0 - p
    return dist[k]


@dataclass(frozen=True)
class RedundancyPlan:
    """The planner's decision for one stage dispatch."""

    replicas: int
    k: int
    predicted_success: float
    #: Survival probabilities of the chosen replica slots, best first.
    survival_ps: Tuple[float, ...]

    @property
    def redundant(self) -> bool:
        """Whether the plan carries more replicas than strictly needed."""
        return self.replicas > self.k


class RedundancyPlanner:
    """Grows a stage's replica set until completion probability suffices.

    ``k`` is how many replicas must finish for the stage to count (1 =
    first-result-wins); ``target_success`` is the per-stage completion
    probability to aim for; ``max_replicas`` bounds the resources any
    single stage may burn — when even the cap cannot reach the target
    the planner returns the capped plan rather than refusing, because a
    best-effort attempt still beats failing the graph outright.
    """

    def __init__(
        self,
        target_success: float = 0.95,
        max_replicas: int = 3,
        k: int = 1,
    ) -> None:
        if not 0.0 < target_success < 1.0:
            raise ConfigurationError("target_success must be in (0, 1)")
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if max_replicas < k:
            raise ConfigurationError("max_replicas must be >= k")
        self.target_success = target_success
        self.max_replicas = max_replicas
        self.k = k

    def plan(self, survival_ps: Sequence[float]) -> RedundancyPlan:
        """Choose a replica count given candidate survival probabilities.

        ``survival_ps`` should be sorted best-first (the scheduler hands
        in the live candidates ranked by predicted survival); the
        planner commits the strongest candidates first and adds weaker
        ones only while the target is unmet.
        """
        ranked = sorted(survival_ps, reverse=True)
        cap = min(self.max_replicas, len(ranked))
        count = min(self.k, cap) if cap else 0
        if count == 0:
            return RedundancyPlan(0, self.k, 0.0, ())
        predicted = success_probability(ranked[:count], self.k)
        while predicted < self.target_success and count < cap:
            count += 1
            predicted = success_probability(ranked[:count], self.k)
        return RedundancyPlan(
            replicas=count,
            k=self.k,
            predicted_success=predicted,
            survival_ps=tuple(ranked[:count]),
        )
