"""Seeded DAG job templates for workload generation.

A :class:`GraphTemplate` is the graph-shaped analogue of the workload
generator's scalar task shape: a fixed topology whose per-stage work is
drawn from ranges at instantiation time.  Every draw flows through the
caller-provided :class:`~repro.sim.rng.SeededRng` (the generator hands
in its per-tenant substream), so a tenant emitting DAG jobs is exactly
as replayable as one emitting scalar requests.

Shape helpers cover the structures the paper's workloads decompose
into: :func:`pipeline_template` (sense → process → decide chains) and
:func:`map_reduce_template` (fan-out analysis over sensor shards with a
fusing reduce), the two idioms "Decomposition Theory Meets Reliability
Analysis" schedules over vehicular resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.rng import SeededRng
from .graph import StageSpec, TaskGraph


@dataclass(frozen=True)
class StageTemplate:
    """One stage's shape: fixed wiring, ranged work."""

    name: str
    work_mi_range: Tuple[float, float]
    deps: Tuple[str, ...] = ()
    input_bytes: int = 10_000
    output_bytes: int = 2_000

    def __post_init__(self) -> None:
        low, high = self.work_mi_range
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"stage {self.name!r}: work_mi_range must satisfy 0 < low <= high"
            )

    def draw(self, rng: SeededRng) -> StageSpec:
        """Materialize one stage, drawing work from the range."""
        low, high = self.work_mi_range
        work = low if high == low else rng.uniform(low, high)
        return StageSpec(
            name=self.name,
            work_mi=work,
            deps=self.deps,
            input_bytes=self.input_bytes,
            output_bytes=self.output_bytes,
        )


@dataclass(frozen=True)
class GraphTemplate:
    """A reusable graph shape; ``instantiate`` stamps out seeded jobs."""

    stages: Tuple[StageTemplate, ...]
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a graph template needs at least one stage")
        # Wiring errors should fail at template construction, not at the
        # first arrival mid-run; a probe instantiation validates the
        # topology through TaskGraph's own checks without consuming ids.
        names = {t.name for t in self.stages}
        if len(names) != len(self.stages):
            raise ConfigurationError("template stage names must be unique")
        for template in self.stages:
            for dep in template.deps:
                if dep not in names:
                    raise ConfigurationError(
                        f"stage {template.name!r} depends on unknown stage {dep!r}"
                    )

    def instantiate(self, rng: SeededRng, submitter: str = "") -> TaskGraph:
        """Draw one concrete :class:`TaskGraph` from this template."""
        return TaskGraph(
            stages=tuple(t.draw(rng) for t in self.stages),
            deadline_s=self.deadline_s,
            submitter=submitter,
        )

    @property
    def mean_total_work_mi(self) -> float:
        """Expected total work (midpoint of every range)."""
        return sum((t.work_mi_range[0] + t.work_mi_range[1]) / 2 for t in self.stages)


def pipeline_template(
    stage_work_mi: Sequence[Tuple[float, float]],
    deadline_s: Optional[float] = None,
    output_bytes: int = 2_000,
) -> GraphTemplate:
    """A linear pipeline template: each stage feeds the next."""
    if not stage_work_mi:
        raise ConfigurationError("pipeline needs at least one stage")
    stages = []
    prev: Tuple[str, ...] = ()
    for index, work_range in enumerate(stage_work_mi):
        name = f"s{index}"
        stages.append(
            StageTemplate(
                name=name, work_mi_range=work_range, deps=prev, output_bytes=output_bytes
            )
        )
        prev = (name,)
    return GraphTemplate(stages=tuple(stages), deadline_s=deadline_s)


def map_reduce_template(
    mappers: int,
    map_work_mi: Tuple[float, float],
    reduce_work_mi: Tuple[float, float],
    deadline_s: Optional[float] = None,
) -> GraphTemplate:
    """Fan-out over ``mappers`` parallel stages fused by one reduce."""
    if mappers < 1:
        raise ConfigurationError("mappers must be >= 1")
    map_names = tuple(f"map{i}" for i in range(mappers))
    stages = tuple(
        StageTemplate(name=name, work_mi_range=map_work_mi) for name in map_names
    ) + (
        StageTemplate(name="reduce", work_mi_range=reduce_work_mi, deps=map_names),
    )
    return GraphTemplate(stages=stages, deadline_s=deadline_s)
