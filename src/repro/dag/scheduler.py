"""Dependable DAG execution on a vehicular cloud.

The :class:`DagScheduler` runs :class:`~repro.dag.graph.TaskGraph` jobs
on a :class:`~repro.core.vcloud.VehicularCloud` through the existing
allocator/lease machinery, and makes the execution survive worker churn:

* **Reliability-aware redundancy** — each dispatching stage asks the
  :class:`~repro.dag.reliability.ReliabilityEstimator` for candidate
  survival probabilities and the
  :class:`~repro.dag.redundancy.RedundancyPlanner` for a k-of-n replica
  count; replicas are anti-affine (a
  :class:`~repro.core.scheduler.GatedAllocator` gate keeps siblings off
  the same worker), first acceptable result wins, and losers retire
  through the cloud's typed ``cancel`` path as ``replica_cancelled``.
* **Checkpointed recovery** — a completed stage's intermediate output is
  checkpointed into the cloud's replicated quorum store, so a crashed or
  departed worker costs re-execution of only the lost frontier (the
  stages actually running there), never the stages already finished.
  With checkpointing off, outputs stay resident on the worker that
  produced them and a later departure silently loses them — the
  failure-aware re-execution path then walks the graph and re-runs
  exactly the stages whose outputs are gone.
* **Typed terminal states** — a graph either completes or fails with a
  typed reason (``deadline``, ``stage_exhausted``, ``cancelled``) that
  is ledgered into :attr:`DagStats.failure_reasons`, the metrics
  registry (``dag/<name>/graph_failures/<reason>``), the structured
  event log, and the graph's ``dag.lifecycle`` trace (per-stage
  ``dag.stage`` child spans parent the cloud's ``task.lifecycle``
  spans, so a trace walks submit → stage → replica → fault).

Conservation contract (checked by the chaos
``DagConservation`` invariant): at any sim instant
``graphs_submitted == graphs_completed + graphs_failed + running`` and
``replicas_submitted == replicas_completed + replicas_failed + live``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..core.capacity import BacklogEstimator
from ..core.scheduler import GatedAllocator, WorkerCandidate, candidates_from_pool
from ..core.tasks import Task, TaskRecord, TaskState
from ..core.vcloud import VehicularCloud
from ..errors import ConfigurationError, ResourceError
from ..sim.world import World
from .graph import GraphState, StageSpec, StageStatus, TaskGraph
from .redundancy import RedundancyPlan, RedundancyPlanner
from .reliability import ReliabilityEstimator

if TYPE_CHECKING:
    from ..obs import Span

#: Typed reason carried by replicas retired after a sibling won.
REPLICA_CANCELLED = "replica_cancelled"


@dataclass
class _StageRun:
    """Mutable bookkeeping for one stage of one submitted graph."""

    spec: StageSpec
    status: StageStatus = StageStatus.PENDING
    attempts: int = 0
    #: Live replica records, task_id -> record.
    replicas: Dict[str, TaskRecord] = field(default_factory=dict)
    #: Worker holding the (un-checkpointed) output, None when durable.
    output_home: Optional[str] = None
    output_checkpointed: bool = False
    completed_at: Optional[float] = None
    span: Optional["Span"] = None
    last_plan: Optional[RedundancyPlan] = None


@dataclass
class GraphRecord:
    """Execution bookkeeping for one submitted task graph."""

    graph: TaskGraph
    submitted_at: float
    state: GraphState = GraphState.PENDING
    stages: Dict[str, _StageRun] = field(default_factory=dict)
    completed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    #: Whole-graph restarts (checkpointing off) and stage re-executions
    #: forced by lost intermediate outputs.
    restarts: int = 0
    stages_reexecuted: int = 0
    span: Optional["Span"] = None

    @property
    def completion_latency_s(self) -> Optional[float]:
        """Submission-to-completion delay, None until completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def met_deadline(self) -> Optional[bool]:
        """Whether the graph deadline held; None if no deadline/unfinished."""
        if self.graph.deadline_s is None or self.completed_at is None:
            return None
        latency = self.completion_latency_s
        return latency is not None and latency <= self.graph.deadline_s

    def deadline_at(self) -> Optional[float]:
        """Absolute deadline instant, None when deadline-free."""
        if self.graph.deadline_s is None:
            return None
        return self.submitted_at + self.graph.deadline_s

    def stage_statuses(self) -> Dict[str, str]:
        """Stage name -> status value (introspection/debugging)."""
        return {name: run.status.value for name, run in self.stages.items()}


@dataclass
class DagStats:
    """Aggregate outcomes of one scheduler's graph stream."""

    graphs_submitted: int = 0
    graphs_completed: int = 0
    graphs_failed: int = 0
    #: Terminal graph failures broken down by typed reason.
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    stages_completed: int = 0
    stages_reexecuted: int = 0
    graph_restarts: int = 0
    replicas_submitted: int = 0
    replicas_completed: int = 0
    replicas_failed: int = 0
    replicas_cancelled: int = 0
    #: Replicas the survival-only rule wanted but load pressure withheld.
    replicas_load_shed: int = 0
    redundant_dispatches: int = 0
    checkpoint_writes: int = 0
    checkpoint_degraded: int = 0
    outputs_lost: int = 0
    deadline_hits: int = 0
    deadline_misses: int = 0
    graph_latencies_s: List[float] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        """Completed over submitted (0 when nothing submitted)."""
        if self.graphs_submitted == 0:
            return 0.0
        return self.graphs_completed / self.graphs_submitted

    @property
    def deadline_hit_rate(self) -> float:
        """Deadline hits over deadline-carrying submissions that ended."""
        total = self.deadline_hits + self.deadline_misses
        if total == 0:
            return 0.0
        return self.deadline_hits / total


class DagScheduler:
    """Executes task graphs on a vehicular cloud, dependably.

    ``sequential=True`` is the naive baseline E17 contrasts against:
    one stage at a time in topological order, no redundancy, and —
    combined with ``checkpointing=False`` — a stage failure restarts
    the *whole* graph because nothing durable survives.

    ``checkpointing=True`` requires the cloud's replicated storage
    (:meth:`~repro.core.vcloud.VehicularCloud.enable_replicated_storage`);
    a quorum write that degrades mid-churn falls back to worker-resident
    output and is counted in :attr:`DagStats.checkpoint_degraded`.
    """

    def __init__(
        self,
        world: World,
        cloud: VehicularCloud,
        name: str = "dag",
        reliability: Optional[ReliabilityEstimator] = None,
        redundancy: Optional[RedundancyPlanner] = None,
        checkpointing: bool = False,
        sequential: bool = False,
        max_stage_attempts: int = 3,
        checkpoint_replicas: int = 3,
        backlog: Optional[BacklogEstimator] = None,
    ) -> None:
        if max_stage_attempts < 1:
            raise ConfigurationError("max_stage_attempts must be >= 1")
        if redundancy is not None and reliability is None:
            raise ConfigurationError(
                "a RedundancyPlanner needs a ReliabilityEstimator to rank workers"
            )
        self.world = world
        self.cloud = cloud
        self.name = name
        self.reliability = reliability
        self.redundancy = redundancy
        self.checkpointing = checkpointing
        self.sequential = sequential
        self.max_stage_attempts = max_stage_attempts
        self.checkpoint_replicas = checkpoint_replicas
        self.backlog = backlog
        if backlog is not None:
            # Replicas the cloud has accepted but not yet placed on a
            # worker are queued work only this scheduler knows about.
            backlog.add_backlog_source(self._pending_replica_work_mi)
        self.stats = DagStats()
        self.records: List[GraphRecord] = []
        #: replica task_id -> (graph record, stage name)
        self._replica_index: Dict[str, Tuple[GraphRecord, str]] = {}
        self._graph_listeners: List[Callable[[GraphRecord, str], None]] = []
        # Sibling replicas must land on distinct workers; the gate keeps
        # the cloud's own allocator ranking for everything it admits.
        cloud.allocator = GatedAllocator(cloud.allocator, self._gate)
        cloud.on_task_finished(self._on_task_finished)
        cloud.membership.on_leave(self._on_worker_left)

    # -- lifecycle hooks -----------------------------------------------------

    def on_graph_finished(self, listener: Callable[[GraphRecord, str], None]) -> None:
        """Register a listener fired at every terminal graph outcome.

        Receives ``(record, reason)``: ``"completed"`` on success, the
        typed failure reason otherwise.  The serving gateway uses this
        to account DAG jobs without polling.
        """
        self._graph_listeners.append(listener)

    def _notify_finished(self, record: GraphRecord, reason: str) -> None:
        for listener in self._graph_listeners:
            listener(record, reason)

    # -- observability -------------------------------------------------------

    def _emit(self, event: str, severity: str = "info", **attrs: Any) -> None:
        events = self.world.events
        if events is not None:
            events.emit("dag", event, severity=severity, scheduler=self.name, **attrs)

    def _metric(self, suffix: str) -> None:
        self.world.metrics.increment(f"dag/{self.name}/{suffix}")

    # -- submission ----------------------------------------------------------

    def submit(self, graph: TaskGraph) -> GraphRecord:
        """Submit a graph for dependable execution.

        On a traced run the submission roots a ``dag.lifecycle`` trace;
        every stage dispatch, replica, checkpoint and re-execution hangs
        off it.
        """
        if self.checkpointing and self.cloud.storage is None:
            raise ConfigurationError(
                "checkpointing requires the cloud's replicated storage "
                "(call enable_replicated_storage first)"
            )
        record = GraphRecord(
            graph=graph,
            submitted_at=self.world.now,
            state=GraphState.RUNNING,
            stages={spec.name: _StageRun(spec=spec) for spec in graph.stages},
        )
        self.records.append(record)
        self.stats.graphs_submitted += 1
        self._metric("graphs_submitted")
        tracer = self.world.tracer
        if tracer is not None:
            record.span = tracer.start_span(
                "dag.lifecycle",
                subsystem="dag",
                attrs={
                    "graph_id": graph.graph_id,
                    "scheduler": self.name,
                    "stages": len(graph.stages),
                    "total_work_mi": graph.total_work_mi,
                    "deadline_s": graph.deadline_s,
                },
            )
        self._emit("graph_submitted", graph_id=graph.graph_id, stages=len(graph.stages))
        deadline_at = record.deadline_at()
        if deadline_at is not None:
            # Watchdog: whatever the stages are doing, the graph reaches
            # a typed terminal state no later than its deadline.
            self.world.engine.schedule_at(
                deadline_at,
                lambda r=record: self._deadline_watchdog(r),
                label="dag-deadline",
            )
        self._dispatch_ready(record)
        return record

    def cancel(self, record: GraphRecord, reason: str = "cancelled") -> bool:
        """Cancel a running graph; every live replica retires typed."""
        if record.state in (GraphState.COMPLETED, GraphState.FAILED):
            return False
        self._fail_graph(record, reason)
        return True

    def _deadline_watchdog(self, record: GraphRecord) -> None:
        if record.state in (GraphState.COMPLETED, GraphState.FAILED):
            return
        self._fail_graph(record, "deadline")

    # -- dispatch ------------------------------------------------------------

    def _gate(self, task: Task, candidate: WorkerCandidate) -> bool:
        entry = self._replica_index.get(task.task_id)
        if entry is None:
            return True
        graph_record, stage_name = entry
        stage = graph_record.stages[stage_name]
        for sibling_id, sibling in stage.replicas.items():
            if sibling_id == task.task_id:
                continue
            if sibling.worker_id == candidate.vehicle_id and sibling.state in (
                TaskState.ASSIGNED,
                TaskState.RUNNING,
            ):
                return False
        return True

    def _remaining_budget_s(self, record: GraphRecord) -> Optional[float]:
        deadline_at = record.deadline_at()
        if deadline_at is None:
            return None
        return deadline_at - self.world.now

    def _stage_ready(self, record: GraphRecord, stage: _StageRun) -> bool:
        if stage.status is not StageStatus.PENDING:
            return False
        return all(
            record.stages[dep].status is StageStatus.COMPLETED
            for dep in stage.spec.deps
        )

    def _dispatch_ready(self, record: GraphRecord) -> None:
        if record.state is not GraphState.RUNNING:
            return
        if self.sequential and any(
            run.status is StageStatus.RUNNING for run in record.stages.values()
        ):
            return
        for name in record.graph.topological_order():
            if record.state is not GraphState.RUNNING:
                return
            stage = record.stages[name]
            if not self._stage_ready(record, stage):
                continue
            self._dispatch_stage(record, stage)
            if self.sequential:
                return

    def _pending_replica_work_mi(self) -> float:
        """Work of live replicas the cloud has not placed on a worker yet.

        Backlog source for the shared :class:`BacklogEstimator`: these
        replicas sit in the cloud's retry loop waiting for a free
        worker, so they are queued load the serving gateway would
        otherwise never see.
        """
        return sum(
            replica.task.work_mi
            for record in self.records
            if record.state is GraphState.RUNNING
            for run in record.stages.values()
            for replica in run.replicas.values()
            if replica.worker_id is None
        )

    def _replica_plan(self, record: GraphRecord, stage: _StageRun, task: Task) -> int:
        if self.redundancy is None or self.reliability is None:
            return 1
        candidates = candidates_from_pool(self.cloud.pool, task, self.cloud.dwell_lookup)
        if self.cloud.head_id is not None and len(candidates) > 1:
            # Head-fallback: the head never competes for stages while any
            # other candidate exists, but when it is the ONLY candidate it
            # keeps the stage rather than stalling the graph — a cloud
            # reduced to its head still makes progress.
            candidates = [c for c in candidates if c.vehicle_id != self.cloud.head_id]
        eligible = [c for c in candidates if c.free_mips > 0 and c.has_required_sensors]
        now = self.world.now
        survival = [
            self.reliability.survival_probability(
                c.vehicle_id,
                task.runtime_on(c.free_mips),
                now,
                dwell_s=c.estimated_dwell_s,
            )
            for c in eligible
        ]
        if self.backlog is not None and eligible:
            # Load-aware objective: survival gain per extra replica is
            # discounted by the queue delay it induces, so under combined
            # churn and load the plan sheds redundancy (E18).
            budget_s = self._remaining_budget_s(record)
            runtime_s = min(task.runtime_on(c.free_mips) for c in eligible)
            plan = self.redundancy.plan(
                survival,
                budget_s=budget_s if budget_s is not None else float("inf"),
                runtime_s=runtime_s,
                load=self.backlog.signal(now, task.work_mi),
            )
        else:
            plan = self.redundancy.plan(survival)
        stage.last_plan = plan
        if plan.load_shed > 0:
            self.stats.replicas_load_shed += plan.load_shed
            self._metric("replicas_load_shed")
        if plan.replicas == 0:
            # No eligible worker right now: dispatch a single replica and
            # let the cloud's retry loop wait out the drought.
            return 1
        return plan.replicas

    def _dispatch_stage(self, record: GraphRecord, stage: _StageRun) -> None:
        remaining = self._remaining_budget_s(record)
        if remaining is not None and remaining <= 0:
            self._fail_graph(record, "deadline")
            return
        stage.attempts += 1
        stage.status = StageStatus.RUNNING
        stage.output_home = None
        stage.output_checkpointed = False
        tracer = self.world.tracer
        if tracer is not None:
            stage.span = tracer.start_span(
                "dag.stage",
                subsystem="dag",
                parent=record.span,
                attrs={
                    "graph_id": record.graph.graph_id,
                    "stage": stage.spec.name,
                    "attempt": stage.attempts,
                    "work_mi": stage.spec.work_mi,
                },
            )
        probe = self._stage_task(record, stage, remaining)
        replicas = self._replica_plan(record, stage, probe)
        if replicas > 1:
            self.stats.redundant_dispatches += 1
            self._metric("redundant_dispatches")
        if tracer is not None and stage.span is not None and stage.last_plan is not None:
            stage.span.attrs["replicas"] = replicas
            stage.span.attrs["predicted_success"] = round(
                stage.last_plan.predicted_success, 6
            )
            if stage.last_plan.predicted_deadline_hit is not None:
                stage.span.attrs["predicted_deadline_hit"] = round(
                    stage.last_plan.predicted_deadline_hit, 6
                )
            if stage.last_plan.load_shed:
                stage.span.attrs["load_shed"] = stage.last_plan.load_shed
        # The positive-budget guard above means the cloud cannot fail a
        # replica synchronously inside submit (its failure paths are all
        # scheduled), so registering after submit is race-free.
        for index in range(replicas):
            task = probe if index == 0 else self._stage_task(record, stage, remaining)
            submitted = self.cloud.submit(task, trace_parent=stage.span)
            stage.replicas[task.task_id] = submitted
            self._replica_index[task.task_id] = (record, stage.spec.name)
            self.stats.replicas_submitted += 1
            self._metric("replicas_submitted")
        self._emit(
            "stage_dispatched",
            graph_id=record.graph.graph_id,
            stage=stage.spec.name,
            attempt=stage.attempts,
            replicas=replicas,
        )

    def _stage_task(
        self, record: GraphRecord, stage: _StageRun, remaining_s: Optional[float]
    ) -> Task:
        return Task(
            work_mi=stage.spec.work_mi,
            input_bytes=stage.spec.input_bytes,
            output_bytes=stage.spec.output_bytes,
            deadline_s=remaining_s,
            required_sensors=stage.spec.required_sensors,
            submitter=f"{record.graph.graph_id}/{stage.spec.name}",
        )

    # -- replica outcomes ----------------------------------------------------

    def _on_task_finished(self, task_record: TaskRecord, reason: str) -> None:
        entry = self._replica_index.pop(task_record.task.task_id, None)
        if entry is None:
            return  # not a DAG replica (direct cloud submission)
        record, stage_name = entry
        stage = record.stages[stage_name]
        stage.replicas.pop(task_record.task.task_id, None)
        if reason == "completed":
            self.stats.replicas_completed += 1
            self._metric("replicas_completed")
            if (
                record.state is not GraphState.RUNNING
                or stage.status is not StageStatus.RUNNING
            ):
                return  # late result after a sibling already won
            self._complete_stage(record, stage, task_record)
            return
        self.stats.replicas_failed += 1
        self._metric("replicas_failed")
        if reason == REPLICA_CANCELLED:
            self.stats.replicas_cancelled += 1
        if record.state is not GraphState.RUNNING or stage.status is not StageStatus.RUNNING:
            return
        if stage.replicas:
            return  # siblings still racing
        self._on_stage_exhausted(record, stage, reason)

    def _complete_stage(
        self, record: GraphRecord, stage: _StageRun, winner: TaskRecord
    ) -> None:
        stage.status = StageStatus.COMPLETED
        stage.completed_at = self.world.now
        self.stats.stages_completed += 1
        self._metric("stages_completed")
        # First result wins: retire the losing replicas through the
        # cloud's typed cancel path so nothing fails silently.
        for loser in list(stage.replicas.values()):
            self.cloud.cancel(loser, REPLICA_CANCELLED)
        self._checkpoint_output(record, stage, winner)
        tracer = self.world.tracer
        if tracer is not None and stage.span is not None:
            tracer.end_span(
                stage.span,
                "ok",
                {
                    "worker": winner.worker_id,
                    "checkpointed": stage.output_checkpointed,
                    "attempt": stage.attempts,
                },
            )
            stage.span = None
        self._emit(
            "stage_completed",
            graph_id=record.graph.graph_id,
            stage=stage.spec.name,
            checkpointed=stage.output_checkpointed,
        )
        if all(
            run.status is StageStatus.COMPLETED for run in record.stages.values()
        ):
            self._complete_graph(record)
        else:
            self._dispatch_ready(record)

    def _checkpoint_output(
        self, record: GraphRecord, stage: _StageRun, winner: TaskRecord
    ) -> None:
        """Make the stage output durable, or remember where it lives.

        Checkpointing writes the intermediate output into the replicated
        quorum store under a per-attempt file id.  A degraded quorum
        (partition, mass crash) falls back to worker-resident output —
        the graph keeps running, but that output is now exposed to the
        producer's departure like an un-checkpointed one.
        """
        if not self.checkpointing or self.cloud.storage is None:
            stage.output_home = winner.worker_id
            return
        file_id = (
            f"ckpt/{record.graph.graph_id}/{stage.spec.name}#{stage.attempts}"
        )
        writer = self.cloud.head_id or (winner.worker_id or "")
        try:
            self.cloud.store_put(
                file_id,
                size_bytes=max(1, stage.spec.output_bytes),
                target_replicas=self.checkpoint_replicas,
            )
            result = self.cloud.store_write(file_id, writer)
        except ResourceError:
            result = None
        if result is None:
            self.stats.checkpoint_degraded += 1
            self._metric("checkpoint_degraded")
            stage.output_home = winner.worker_id
            self._emit(
                "checkpoint_degraded", severity="warning",
                graph_id=record.graph.graph_id, stage=stage.spec.name,
            )
            return
        stage.output_checkpointed = True
        stage.output_home = None
        self.stats.checkpoint_writes += 1
        self._metric("checkpoint_writes")

    # -- failure handling ----------------------------------------------------

    def _on_stage_exhausted(
        self, record: GraphRecord, stage: _StageRun, reason: str
    ) -> None:
        """Every replica of a running stage failed without a winner."""
        remaining = self._remaining_budget_s(record)
        if reason == "deadline" or (remaining is not None and remaining <= 0):
            self._end_stage_span(stage, "failed", reason="deadline")
            self._fail_graph(record, "deadline")
            return
        if stage.attempts >= self.max_stage_attempts:
            self._end_stage_span(stage, "failed", reason="stage_exhausted")
            self._fail_graph(record, "stage_exhausted")
            return
        self._end_stage_span(stage, "retry", reason=reason)
        self._emit(
            "stage_retry", severity="warning",
            graph_id=record.graph.graph_id, stage=stage.spec.name,
            reason=reason, attempt=stage.attempts,
        )
        if self.checkpointing:
            # Predecessor outputs are durable: re-execute only this stage.
            stage.status = StageStatus.PENDING
            self._dispatch_ready(record)
        else:
            self._restart_graph(record, stage)

    def _restart_graph(self, record: GraphRecord, failed: _StageRun) -> None:
        """Nothing durable survives a stage failure: re-run from zero.

        The naive baseline's collapse mechanism — completed stages are
        thrown away because their outputs were never made durable.
        """
        record.restarts += 1
        self.stats.graph_restarts += 1
        self._metric("graph_restarts")
        for run in record.stages.values():
            for replica in list(run.replicas.values()):
                self.cloud.cancel(replica, REPLICA_CANCELLED)
            if run.status is StageStatus.COMPLETED:
                record.stages_reexecuted += 1
                self.stats.stages_reexecuted += 1
            self._end_stage_span(run, "restart", reason="graph_restart")
            run.status = StageStatus.PENDING
            run.output_home = None
            run.output_checkpointed = False
            run.completed_at = None
        self._emit(
            "graph_restarted", severity="warning",
            graph_id=record.graph.graph_id, restarts=record.restarts,
        )
        self._dispatch_ready(record)

    def _end_stage_span(self, stage: _StageRun, status: str, **attrs: Any) -> None:
        tracer = self.world.tracer
        if tracer is not None and stage.span is not None:
            tracer.link_active_faults(stage.span)
            tracer.end_span(stage.span, status, attrs)
        stage.span = None

    def _fail_graph(self, record: GraphRecord, reason: str) -> None:
        """Terminally fail a graph with a typed, ledgered reason."""
        record.state = GraphState.FAILED
        record.failure_reason = reason
        self.stats.graphs_failed += 1
        self.stats.failure_reasons[reason] = (
            self.stats.failure_reasons.get(reason, 0) + 1
        )
        self._metric(f"graph_failures/{reason}")
        for run in record.stages.values():
            for replica in list(run.replicas.values()):
                self.cloud.cancel(replica, REPLICA_CANCELLED)
            if run.status is StageStatus.RUNNING:
                run.status = StageStatus.FAILED
            self._end_stage_span(run, "failed", reason=reason)
        if record.graph.deadline_s is not None:
            self.stats.deadline_misses += 1
        tracer = self.world.tracer
        if tracer is not None and record.span is not None:
            tracer.link_active_faults(record.span)
            tracer.end_span(record.span, "failed", {"reason": reason})
            record.span = None
        self._emit(
            "graph_failed", severity="warning",
            graph_id=record.graph.graph_id, reason=reason,
        )
        self._notify_finished(record, reason)

    def _complete_graph(self, record: GraphRecord) -> None:
        record.state = GraphState.COMPLETED
        record.completed_at = self.world.now
        self.stats.graphs_completed += 1
        self._metric("graphs_completed")
        latency = record.completion_latency_s
        if latency is not None:
            self.stats.graph_latencies_s.append(latency)
            self.world.metrics.observe(f"dag/{self.name}/graph_latency_s", latency)
        met = record.met_deadline()
        if met is True:
            self.stats.deadline_hits += 1
        elif met is False:
            self.stats.deadline_misses += 1
        tracer = self.world.tracer
        if tracer is not None and record.span is not None:
            tracer.end_span(
                record.span, "ok", {"latency_s": latency, "met_deadline": met}
            )
            record.span = None
        self._emit(
            "graph_completed", graph_id=record.graph.graph_id, latency_s=latency
        )
        self._notify_finished(record, "completed")

    # -- failure-aware re-execution ------------------------------------------

    def _output_needed(self, record: GraphRecord, stage: _StageRun) -> bool:
        successors = record.graph.successors(stage.spec.name)
        if not successors:
            return True  # terminal output is the graph result
        return any(
            record.stages[s].status is not StageStatus.COMPLETED for s in successors
        )

    def _on_worker_left(self, worker_id: str) -> None:
        """A member left (departure or lease eviction): find lost outputs.

        Runs after the cloud's own departure handling (listener order),
        so in-flight executions have already been handed over; what is
        left to recover is intermediate outputs resident on the departed
        worker.  Checkpointed outputs survive in the quorum store; the
        rest force re-execution of exactly the producing stages — the
        lost frontier, not the whole graph.
        """
        for record in self.records:
            if record.state is not GraphState.RUNNING:
                continue
            lost = False
            for run in record.stages.values():
                if (
                    run.status is StageStatus.COMPLETED
                    and not run.output_checkpointed
                    and run.output_home == worker_id
                    and self._output_needed(record, run)
                ):
                    run.status = StageStatus.PENDING
                    run.output_home = None
                    run.completed_at = None
                    record.stages_reexecuted += 1
                    self.stats.stages_reexecuted += 1
                    self.stats.outputs_lost += 1
                    self._metric("outputs_lost")
                    self._emit(
                        "stage_output_lost", severity="warning",
                        graph_id=record.graph.graph_id,
                        stage=run.spec.name, worker=worker_id,
                    )
                    lost = True
            if lost:
                self._dispatch_ready(record)

    # -- introspection -------------------------------------------------------

    def running_graphs(self) -> List[GraphRecord]:
        """Records currently executing."""
        return [r for r in self.records if r.state is GraphState.RUNNING]

    def accounting(self) -> Dict[str, int]:
        """Graph/replica conservation counters, surfaced for invariants.

        At any sim instant ``graphs_submitted == records`` and
        ``graphs_submitted == completed + failed + running`` (counters
        agreeing with record states), and every replica ever submitted
        is completed, failed, or live — the DAG extension of the cloud's
        task-conservation law.
        """
        completed = sum(1 for r in self.records if r.state is GraphState.COMPLETED)
        failed = sum(1 for r in self.records if r.state is GraphState.FAILED)
        live = sum(len(run.replicas) for r in self.records for run in r.stages.values())
        return {
            "graphs_submitted": self.stats.graphs_submitted,
            "graph_records": len(self.records),
            "graphs_completed": self.stats.graphs_completed,
            "graphs_failed": self.stats.graphs_failed,
            "records_completed": completed,
            "records_failed": failed,
            "records_running": len(self.records) - completed - failed,
            "replicas_submitted": self.stats.replicas_submitted,
            "replicas_completed": self.stats.replicas_completed,
            "replicas_failed": self.stats.replicas_failed,
            "replicas_live": live,
            "replica_index": len(self._replica_index),
        }

    def replica_view(self) -> List[Tuple[str, str, str]]:
        """``(task_id, graph_id, stage)`` per live replica, sorted."""
        return sorted(
            (task_id, record.graph.graph_id, stage_name)
            for task_id, (record, stage_name) in self._replica_index.items()
        )
