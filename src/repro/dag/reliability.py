"""Per-worker survival estimation from dwell margins and the failure ledger.

"Decomposition Theory Meets Reliability Analysis" (PAPERS.md) schedules
dependent subtasks over dynamic vehicle resources by predicting which
workers will still be present when their stage finishes.  The
:class:`ReliabilityEstimator` reproduces that signal from what the
coordinator can actually observe:

* the **dwell margin** — the mobility layer's estimate of how long the
  worker remains in the cloud versus how long the stage needs; and
* the **churn hazard** — the rate of unplanned losses (crash-stops,
  lease evictions, departures) read from the cloud's failure ledger,
  smoothed with a prior so a freshly-formed cloud is neither blindly
  optimistic nor paralyzed.

The estimator is strictly read-only over cloud state (no RNG draws, no
engine events, no metrics writes), so attaching it never perturbs a
seeded run — the same determinism contract the observability layer and
the :class:`~repro.core.capacity.BacklogEstimator` follow.  Survival is
the *reliability* half of the redundancy decision; the backlog
estimator supplies the *capacity* half, and the
:class:`~repro.dag.redundancy.RedundancyPlanner` joins them into a
deadline-hit objective.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..core.vcloud import VehicularCloud


class ReliabilityEstimator:
    """Predicts the probability a worker survives a stage's runtime.

    ``dwell_safety`` scales the dwell requirement the same way the
    :class:`~repro.core.scheduler.DwellAwareAllocator` does: a worker
    whose estimated dwell does not cover ``runtime * dwell_safety`` is
    discounted proportionally.  ``prior_events``/``prior_exposure_s``
    form a pseudo-count prior over the churn rate: with no observed
    churn the hazard starts at ``prior_events / prior_exposure_s`` and
    converges to the observed rate as member-time accumulates.
    """

    def __init__(
        self,
        cloud: "VehicularCloud",
        dwell_safety: float = 1.2,
        prior_events: float = 1.0,
        prior_exposure_s: float = 500.0,
    ) -> None:
        if dwell_safety <= 0:
            raise ConfigurationError("dwell_safety must be positive")
        if prior_events < 0 or prior_exposure_s <= 0:
            raise ConfigurationError("priors must be non-negative / positive")
        self.cloud = cloud
        self.dwell_safety = dwell_safety
        self.prior_events = prior_events
        self.prior_exposure_s = prior_exposure_s

    # -- ledger-derived hazard ----------------------------------------------

    def observed_losses(self) -> int:
        """Unplanned worker losses so far (crashes dominate departures).

        ``membership.leaves`` already includes lease evictions (an
        eviction drives the departure path), so crashes are the only
        addition; the slight double-count of a crash that later evicts
        is a deliberately pessimistic reading of the ledger.
        """
        stats = self.cloud.stats
        return self.cloud.membership.leaves + stats.worker_crashes

    def churn_hazard_per_s(self, now: float) -> float:
        """Estimated per-worker loss rate (events per member-second)."""
        exposure = max(now, 0.0) * max(1, self.cloud.member_count())
        return (self.observed_losses() + self.prior_events) / (
            exposure + self.prior_exposure_s
        )

    # -- per-worker survival -------------------------------------------------

    def survival_probability(
        self,
        worker_id: str,
        runtime_s: float,
        now: float,
        dwell_s: Optional[float] = None,
    ) -> float:
        """P(worker still present when a ``runtime_s`` stage finishes).

        An exponential survival term from the churn hazard, discounted
        when the worker's estimated dwell does not cover the runtime
        with the safety margin — the paper's over-estimation failure
        mode ("the vehicle may not be able to finish the task before
        leaving the group") made quantitative.
        """
        if runtime_s < 0:
            raise ConfigurationError("runtime_s must be non-negative")
        if dwell_s is None:
            dwell_s = self.cloud.dwell_lookup(worker_id)
        survival = math.exp(-self.churn_hazard_per_s(now) * runtime_s)
        required = runtime_s * self.dwell_safety
        if required > 0 and dwell_s < required:
            survival *= max(0.0, dwell_s / required)
        return min(1.0, max(0.0, survival))
