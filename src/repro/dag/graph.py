"""DAG-structured task graphs (ROADMAP item 2, §V.A).

A :class:`TaskGraph` models one job as stages with data dependencies:
each :class:`StageSpec` names the stages whose outputs it consumes, and
every edge carries an intermediate output (sized by the producer's
``output_bytes``) that must survive vehicle churn for the successor to
run.  The graph itself carries the job-level deadline; per-stage tasks
inherit whatever budget remains when they dispatch.

Validation happens at construction: stage names must be unique,
dependencies must reference earlier-declared stages, and the dependency
relation must be acyclic — a malformed graph fails loudly before any
resources are committed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..mobility.equipment import SensorKind

_graph_counter = itertools.count(1)


def next_graph_id() -> str:
    """Return a fresh process-unique graph id."""
    return f"graph-{next(_graph_counter)}"


def reset_graph_ids() -> None:
    """Rewind the process-global graph id counter to ``graph-1``.

    Graph ids feed checkpoint file ids and sorted orders, so seeded
    replays must rewind this counter alongside the task and vehicle
    counters (see ``tests/conftest.py``).
    """
    global _graph_counter
    _graph_counter = itertools.count(1)


class GraphState(enum.Enum):
    """Life-cycle states of a whole graph."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class StageStatus(enum.Enum):
    """Life-cycle states of one stage inside a running graph."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class StageSpec:
    """One stage of a task graph: a unit of work plus its inputs."""

    name: str
    work_mi: float
    deps: Tuple[str, ...] = ()
    input_bytes: int = 10_000
    output_bytes: int = 2_000
    required_sensors: FrozenSet[SensorKind] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("stage name must be non-empty")
        if self.work_mi <= 0:
            raise ConfigurationError(f"stage {self.name!r}: work_mi must be positive")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ConfigurationError(
                f"stage {self.name!r}: transfer sizes must be non-negative"
            )
        if len(set(self.deps)) != len(self.deps):
            raise ConfigurationError(f"stage {self.name!r}: duplicate dependency")


@dataclass(frozen=True)
class TaskGraph:
    """An immutable DAG of stages forming one offloadable job."""

    stages: Tuple[StageSpec, ...]
    deadline_s: Optional[float] = None  # relative to submission
    submitter: str = ""
    graph_id: str = field(default_factory=next_graph_id)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a task graph needs at least one stage")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive when given")
        names = [spec.name for spec in self.stages]
        if len(set(names)) != len(names):
            raise ConfigurationError("stage names must be unique")
        known = set(names)
        for spec in self.stages:
            for dep in spec.deps:
                if dep not in known:
                    raise ConfigurationError(
                        f"stage {spec.name!r} depends on unknown stage {dep!r}"
                    )
                if dep == spec.name:
                    raise ConfigurationError(f"stage {spec.name!r} depends on itself")
        # Kahn's algorithm detects cycles; the order is cached lazily.
        self._topological_order()

    # -- structure -----------------------------------------------------------

    def stage(self, name: str) -> StageSpec:
        """Look up one stage by name."""
        for spec in self.stages:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"unknown stage {name!r}")

    def stage_names(self) -> List[str]:
        """Stage names in declaration order."""
        return [spec.name for spec in self.stages]

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Stages whose outputs the named stage consumes."""
        return self.stage(name).deps

    def successors(self, name: str) -> List[str]:
        """Stages that consume the named stage's output, in declaration order."""
        return [spec.name for spec in self.stages if name in spec.deps]

    def roots(self) -> List[str]:
        """Stages with no dependencies (the initial frontier)."""
        return [spec.name for spec in self.stages if not spec.deps]

    def terminals(self) -> List[str]:
        """Stages nothing depends on (their outputs are the graph result)."""
        consumed = {dep for spec in self.stages for dep in spec.deps}
        return [spec.name for spec in self.stages if spec.name not in consumed]

    def _topological_order(self) -> List[str]:
        in_degree: Dict[str, int] = {spec.name: len(spec.deps) for spec in self.stages}
        order: List[str] = []
        # Declaration order breaks ties, keeping the result deterministic.
        ready = [name for name, degree in in_degree.items() if degree == 0]
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self.successors(name):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.stages):
            cyclic = sorted(name for name, degree in in_degree.items() if degree > 0)
            raise ConfigurationError(f"dependency cycle through stages {cyclic}")
        return order

    def topological_order(self) -> List[str]:
        """Stage names in a deterministic dependency-respecting order."""
        return self._topological_order()

    # -- sizing --------------------------------------------------------------

    @property
    def total_work_mi(self) -> float:
        """Sum of all stage work."""
        return sum(spec.work_mi for spec in self.stages)

    def critical_path_mi(self) -> float:
        """Work along the heaviest dependency chain.

        The lower bound on compute time for fully parallel execution:
        no schedule finishes before the critical path does.
        """
        longest: Dict[str, float] = {}
        for name in self.topological_order():
            spec = self.stage(name)
            upstream = max((longest[dep] for dep in spec.deps), default=0.0)
            longest[name] = upstream + spec.work_mi
        return max(longest.values())


def chain(stage_work_mi: Sequence[float], **kwargs) -> TaskGraph:
    """A linear pipeline: each stage feeds the next."""
    stages = []
    prev: Tuple[str, ...] = ()
    for index, work in enumerate(stage_work_mi):
        name = f"s{index}"
        stages.append(StageSpec(name=name, work_mi=work, deps=prev))
        prev = (name,)
    return TaskGraph(stages=tuple(stages), **kwargs)
