"""Dependable DAG execution over vehicular clouds (ROADMAP item 2).

``repro.dag`` runs dependency-structured jobs on a
:class:`~repro.core.vcloud.VehicularCloud` and keeps them alive through
worker churn: reliability-aware stage replication (k-of-n,
first-result-wins), quorum-checkpointed intermediate outputs, and
failure-aware re-execution of only the lost frontier.
"""

from .graph import (
    GraphState,
    StageSpec,
    StageStatus,
    TaskGraph,
    chain,
    next_graph_id,
    reset_graph_ids,
)
from .redundancy import RedundancyPlan, RedundancyPlanner, success_probability
from .reliability import ReliabilityEstimator
from .scheduler import (
    REPLICA_CANCELLED,
    DagScheduler,
    DagStats,
    GraphRecord,
)
from .templates import (
    GraphTemplate,
    StageTemplate,
    map_reduce_template,
    pipeline_template,
)

__all__ = [
    "GraphState",
    "StageSpec",
    "StageStatus",
    "TaskGraph",
    "chain",
    "next_graph_id",
    "reset_graph_ids",
    "RedundancyPlan",
    "RedundancyPlanner",
    "success_probability",
    "ReliabilityEstimator",
    "REPLICA_CANCELLED",
    "DagScheduler",
    "DagStats",
    "GraphRecord",
    "GraphTemplate",
    "StageTemplate",
    "map_reduce_template",
    "pipeline_template",
]
