"""Metric collection for simulation runs.

A :class:`MetricsRegistry` holds named counters, gauges, and sample
series.  Benchmarks and experiments read summaries out of the registry
after a run; nothing here depends on the engine so the registry can be
unit-tested in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union


@dataclass
class SeriesSummary:
    """Summary statistics for a sample series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
        }


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Return the linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of an empty series is undefined")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    weight = rank - low
    interpolated = sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight
    # Clamp against float rounding so the result stays inside the data.
    return max(sorted_values[0], min(sorted_values[-1], interpolated))


def summarize(values: List[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for a non-empty list of samples."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    ordered = sorted(values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    return SeriesSummary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(ordered, 0.50),
        p90=percentile(ordered, 0.90),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
    )


@dataclass(frozen=True)
class ToleranceBand:
    """How far a metric may drift from its baseline and still be "within".

    ``rel_tol`` is a fraction of the baseline magnitude, ``abs_tol`` an
    absolute floor — a delta is within tolerance when
    ``|delta| <= max(rel_tol * |baseline|, abs_tol)``, mirroring
    :func:`math.isclose`.  Against a *zero* baseline the relative term
    vanishes, so only ``abs_tol`` can admit a drift — callers comparing
    rates that may legitimately be 0 should set it explicitly.
    """

    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    def admits(self, baseline: float, delta: float) -> bool:
        """True when ``delta`` off ``baseline`` stays inside the band."""
        return abs(delta) <= max(self.rel_tol * abs(baseline), self.abs_tol)


#: Tolerance specs accept plain numbers (treated as ``rel_tol``) too.
ToleranceSpec = Union[float, ToleranceBand]


@dataclass(frozen=True)
class MetricDelta:
    """One metric's drift from a baseline, classified against a band.

    ``classification`` is one of ``"within"``, ``"outside"``,
    ``"missing_baseline"``, ``"missing_current"`` or ``"nan"`` — only
    ``"within"`` counts as clean; every other class is something a
    reporter must surface.
    """

    name: str
    baseline: Optional[float]
    current: Optional[float]
    delta: Optional[float]
    #: ``delta / |baseline|``; None for missing values or zero baseline.
    relative: Optional[float]
    classification: str

    @property
    def within(self) -> bool:
        return self.classification == "within"

    def describe(self) -> str:
        """Canonical one-line rendering for reports."""
        if self.classification == "missing_baseline":
            return f"{self.name}: {self.current} (no baseline)"
        if self.classification == "missing_current":
            return f"{self.name}: missing (baseline {self.baseline})"
        rel = f" ({self.relative:+.2%})" if self.relative is not None else ""
        return (
            f"{self.name}: {self.baseline} -> {self.current} "
            f"[{self.classification}]{rel}"
        )


def _as_band(spec: Optional[ToleranceSpec]) -> ToleranceBand:
    if spec is None:
        return ToleranceBand()
    if isinstance(spec, ToleranceBand):
        return spec
    return ToleranceBand(rel_tol=float(spec))


def diff_metrics(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    tolerances: Optional[Mapping[str, ToleranceSpec]] = None,
    default: Optional[ToleranceSpec] = None,
) -> Dict[str, MetricDelta]:
    """Classify every metric in either mapping against tolerance bands.

    The comparison primitive behind campaign reporting: the union of
    keys is covered, so a metric that *disappeared* is as loud as one
    that drifted.  NaN on either side is classified ``"nan"`` — NaN
    compares unequal to itself, so it can never silently pass a
    tolerance check.  Deltas are ``current - baseline``.
    """
    bands = dict(tolerances) if tolerances else {}
    default_band = _as_band(default)
    deltas: Dict[str, MetricDelta] = {}
    for name in sorted(set(current) | set(baseline)):
        base = baseline.get(name)
        curr = current.get(name)
        if base is None:
            deltas[name] = MetricDelta(name, None, float(curr), None, None,
                                       "missing_baseline")
            continue
        if curr is None:
            deltas[name] = MetricDelta(name, float(base), None, None, None,
                                       "missing_current")
            continue
        base = float(base)
        curr = float(curr)
        if math.isnan(base) or math.isnan(curr):
            deltas[name] = MetricDelta(name, base, curr, None, None, "nan")
            continue
        delta = curr - base
        relative = delta / abs(base) if base != 0 else None
        band = _as_band(bands.get(name, default_band))
        verdict = "within" if band.admits(base, delta) else "outside"
        deltas[name] = MetricDelta(name, base, curr, delta, relative, verdict)
    return deltas


@dataclass
class MetricsRegistry:
    """Named counters, gauges and sample series for one simulation run.

    ``max_samples_per_series`` (None = unbounded, the default) caps how
    many samples each series *and* timeline retains, so million-event
    runs cannot hoard memory silently: once a series is full, further
    samples are dropped (keeping the earliest observations) and the drop
    is counted per series in :attr:`truncations` — explicit, never
    silent.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    timelines: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    max_samples_per_series: Optional[int] = None
    #: Per-series/timeline count of samples dropped by the cap.
    truncations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_samples_per_series is not None and self.max_samples_per_series < 1:
            raise ValueError("max_samples_per_series must be >= 1 (or None)")

    # -- counters -----------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Return the counter value, 0 if never incremented."""
        return self.counters.get(name, 0.0)

    def counters_under(self, prefix: str) -> Dict[str, float]:
        """All counters below a ``/``-separated prefix, keyed by suffix.

        ``counters_under("storage")`` returns ``{"stale_reads": 2.0, ...}``
        for every counter named ``storage/<suffix>`` — how experiments
        pull one subsystem's counters (e.g. the replicated store's
        stale-read/repair family) out of a shared registry.
        """
        lead = prefix.rstrip("/") + "/"
        return {
            name[len(lead):]: value
            for name, value in sorted(self.counters.items())
            if name.startswith(lead)
        }

    # -- gauges ---------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value``."""
        self.gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Return the gauge value or ``default``."""
        return self.gauges.get(name, default)

    # -- series ---------------------------------------------------------------

    def _note_truncation(self, name: str) -> None:
        self.truncations[name] = self.truncations.get(name, 0) + 1

    def observe(self, name: str, value: float) -> None:
        """Append a sample to the named series (subject to the cap)."""
        values = self.series.setdefault(name, [])
        cap = self.max_samples_per_series
        if cap is not None and len(values) >= cap:
            self._note_truncation(name)
            return
        values.append(value)

    def observe_at(self, name: str, time: float, value: float) -> None:
        """Append a timestamped sample to the named timeline (subject to the cap)."""
        points = self.timelines.setdefault(name, [])
        cap = self.max_samples_per_series
        if cap is not None and len(points) >= cap:
            self._note_truncation(name)
            return
        points.append((time, value))

    def samples(self, name: str) -> List[float]:
        """Return the raw samples of a series (empty list if absent)."""
        return self.series.get(name, [])

    def timeline(self, name: str) -> List[Tuple[float, float]]:
        """Return the raw (time, value) points of a timeline (empty if absent)."""
        return self.timelines.get(name, [])

    def truncated(self, name: str) -> int:
        """How many samples the cap dropped from one series/timeline."""
        return self.truncations.get(name, 0)

    def summary(self, name: str) -> Optional[SeriesSummary]:
        """Return summary stats for a series, or None if it is empty."""
        values = self.series.get(name)
        if not values:
            return None
        return summarize(values)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counter ``numerator / denominator`` (0 when empty)."""
        denom = self.counters.get(denominator, 0.0)
        if denom == 0:
            return 0.0
        return self.counters.get(numerator, 0.0) / denom

    def merged(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Return a new registry combining this one with ``other``."""
        result = MetricsRegistry()
        for source in (self, other):
            for name, value in source.counters.items():
                result.increment(name, value)
            for name, value in source.gauges.items():
                result.set_gauge(name, value)
            for name, values in source.series.items():
                result.series.setdefault(name, []).extend(values)
            for name, points in source.timelines.items():
                result.timelines.setdefault(name, []).extend(points)
            for name, count in source.truncations.items():
                result.truncations[name] = result.truncations.get(name, 0) + count
        return result

    def scalars(self) -> Dict[str, float]:
        """Flatten the registry into scalar metrics for comparison.

        Counters and gauges pass through under ``counter/`` and
        ``gauge/`` prefixes; every non-empty series contributes its
        summary statistics under ``series/<name>/<stat>``.  Timelines
        are excluded — point lists are not comparable as scalars.
        """
        flat: Dict[str, float] = {}
        for name, value in self.counters.items():
            flat[f"counter/{name}"] = value
        for name, value in self.gauges.items():
            flat[f"gauge/{name}"] = value
        for name in self.series:
            summary = self.summary(name)
            if summary is not None:
                for stat, value in summary.as_dict().items():
                    flat[f"series/{name}/{stat}"] = value
        for name, count in self.truncations.items():
            flat[f"truncated/{name}"] = float(count)
        return flat

    def diff(
        self,
        other: "MetricsRegistry",
        tolerances: Optional[Mapping[str, ToleranceSpec]] = None,
        default: Optional[ToleranceSpec] = None,
    ) -> Dict[str, MetricDelta]:
        """Per-metric deltas of this registry against baseline ``other``.

        ``self`` is the *current* run, ``other`` the baseline; both are
        flattened with :meth:`scalars` and classified per metric by
        :func:`diff_metrics` (missing keys and NaN get their own
        classes, zero baselines only admit drift through ``abs_tol``).
        """
        return diff_metrics(
            self.scalars(), other.scalars(), tolerances=tolerances, default=default
        )

    def snapshot(self) -> Mapping[str, object]:
        """Return a read-only flat snapshot usable in reports.

        Timelines export their full (time, value) point lists — a
        timestamped series would otherwise be invisible in reports —
        and any cap-dropped samples appear under ``truncated/<name>``.
        """
        flat: Dict[str, object] = {}
        for name, value in sorted(self.counters.items()):
            flat[f"counter/{name}"] = value
        for name, value in sorted(self.gauges.items()):
            flat[f"gauge/{name}"] = value
        for name in sorted(self.series):
            summary = self.summary(name)
            if summary is not None:
                flat[f"series/{name}"] = summary.as_dict()
        for name in sorted(self.timelines):
            points = self.timelines[name]
            if points:
                flat[f"timeline/{name}"] = [tuple(point) for point in points]
        for name, count in sorted(self.truncations.items()):
            flat[f"truncated/{name}"] = count
        return flat
