"""Deterministic random number generation.

Every stochastic choice in the framework flows through a :class:`SeededRng`
so a scenario is fully reproducible from ``(seed, config)``.  Subsystems
should request *forked* substreams (:meth:`SeededRng.fork`) keyed by a
stable name, so adding randomness to one subsystem never perturbs the
draws seen by another.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, MutableSequence, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A named, seeded random stream with convenience distributions.

    Parameters
    ----------
    seed:
        Integer master seed.
    name:
        Stream name; forked children combine their parent's name with
        their own so the stream identity is stable and hierarchical.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"SeededRng(seed={self.seed}, name={self.name!r})"

    def fork(self, name: str) -> "SeededRng":
        """Return an independent substream identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- primitive draws -------------------------------------------------

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Return a uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the closed interval ``[low, high]``."""
        return self._random.randint(low, high)

    def gauss(self, mean: float, std: float) -> float:
        """Return a normally distributed float."""
        return self._random.gauss(mean, std)

    def exponential(self, rate: float) -> float:
        """Return an exponentially distributed float with the given rate.

        ``rate`` is events per unit time; the mean of the draw is
        ``1 / rate``.
        """
        if rate <= 0:
            raise ValueError(f"exponential rate must be positive, got {rate}")
        return self._random.expovariate(rate)

    def poisson(self, mean: float) -> int:
        """Return a Poisson-distributed integer via inversion.

        Suitable for the small means used by workload generators.
        """
        if mean < 0:
            raise ValueError(f"poisson mean must be non-negative, got {mean}")
        if mean == 0:
            return 0
        # Knuth's algorithm; fine for mean values well under ~50.
        import math

        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    # -- collection helpers ----------------------------------------------

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Return ``k`` distinct elements chosen uniformly at random."""
        return self._random.sample(list(seq), k)

    def shuffle(self, seq: MutableSequence[T]) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def weighted_choice(self, seq: Sequence[T], weights: Sequence[float]) -> T:
        """Return one element drawn with the given non-negative weights."""
        if len(seq) != len(weights):
            raise ValueError("weights must match the sequence length")
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(list(seq), weights=list(weights), k=1)[0]

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def token(self, nbytes: int = 8) -> str:
        """Return a deterministic pseudo-random hex token."""
        return "".join(f"{self._random.randrange(256):02x}" for _ in range(nbytes))


def derive_seed(seed: int, *names: object) -> int:
    """Derive a stable integer sub-seed from a master seed and names."""
    text = ":".join([str(seed), *[str(name) for name in names]])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")
