"""Scenario configuration dataclasses.

Configs are plain frozen dataclasses with validation in ``__post_init__``
so an invalid scenario fails fast at construction time, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ChannelConfig:
    """Wireless channel parameters.

    ``v2v_range_m`` approximates DSRC-class radios; the loss exponent and
    contention delay shape latency under density, which is the axis the
    paper's time-constraint arguments live on.
    """

    v2v_range_m: float = 300.0
    rsu_range_m: float = 500.0
    base_station_range_m: float = 3000.0
    propagation_delay_s_per_km: float = 3.34e-6
    base_transmit_delay_s: float = 0.002
    bytes_per_second: float = 750_000.0
    base_loss_probability: float = 0.02
    loss_per_100m: float = 0.015
    contention_delay_per_neighbor_s: float = 0.0004
    wired_backhaul_delay_s: float = 0.020
    wan_delay_s: float = 0.080

    def __post_init__(self) -> None:
        _require(self.v2v_range_m > 0, "v2v_range_m must be positive")
        _require(self.rsu_range_m > 0, "rsu_range_m must be positive")
        _require(self.base_station_range_m > 0, "base_station_range_m must be positive")
        _require(self.bytes_per_second > 0, "bytes_per_second must be positive")
        _require(
            0.0 <= self.base_loss_probability < 1.0,
            "base_loss_probability must be in [0, 1)",
        )
        _require(self.loss_per_100m >= 0, "loss_per_100m must be non-negative")
        _require(
            self.propagation_delay_s_per_km >= 0,
            "propagation_delay_s_per_km must be non-negative",
        )
        _require(
            self.base_transmit_delay_s >= 0,
            "base_transmit_delay_s must be non-negative",
        )
        _require(
            self.contention_delay_per_neighbor_s >= 0,
            "contention_delay_per_neighbor_s must be non-negative",
        )
        _require(
            self.wired_backhaul_delay_s >= 0,
            "wired_backhaul_delay_s must be non-negative",
        )
        _require(self.wan_delay_s >= 0, "wan_delay_s must be non-negative")


@dataclass(frozen=True)
class MobilityConfig:
    """Traffic parameters shared by the mobility models."""

    mean_speed_mps: float = 25.0
    speed_std_mps: float = 4.0
    min_speed_mps: float = 5.0
    max_speed_mps: float = 40.0
    update_interval_s: float = 0.5
    turn_probability: float = 0.25
    parking_departure_rate_per_hour: float = 6.0

    def __post_init__(self) -> None:
        _require(self.mean_speed_mps > 0, "mean_speed_mps must be positive")
        _require(self.speed_std_mps >= 0, "speed_std_mps must be non-negative")
        _require(
            0 < self.min_speed_mps <= self.max_speed_mps,
            "speed bounds must satisfy 0 < min <= max",
        )
        _require(self.update_interval_s > 0, "update_interval_s must be positive")
        _require(
            0.0 <= self.turn_probability <= 1.0, "turn_probability must be in [0, 1]"
        )


@dataclass(frozen=True)
class SecurityConfig:
    """Knobs for the security stack."""

    pseudonym_pool_size: int = 20
    pseudonym_change_interval_s: float = 60.0
    beacon_signing: bool = True
    replay_cache_window_s: float = 30.0
    crl_check_cost_per_entry_s: float = 2e-6
    auth_deadline_s: float = 1.0
    emergency_grant_deadline_s: float = 0.050

    def __post_init__(self) -> None:
        _require(self.pseudonym_pool_size > 0, "pseudonym_pool_size must be positive")
        _require(
            self.pseudonym_change_interval_s > 0,
            "pseudonym_change_interval_s must be positive",
        )
        _require(self.auth_deadline_s > 0, "auth_deadline_s must be positive")


@dataclass(frozen=True)
class CloudConfig:
    """V-cloud formation and task-management parameters."""

    beacon_interval_s: float = 1.0
    neighbor_timeout_s: float = 3.0
    head_reelection_interval_s: float = 10.0
    min_cluster_dwell_s: float = 5.0
    task_checkpoint_interval_s: float = 2.0
    default_replicas: int = 3
    max_members: int = 64

    def __post_init__(self) -> None:
        _require(self.beacon_interval_s > 0, "beacon_interval_s must be positive")
        _require(
            self.neighbor_timeout_s > self.beacon_interval_s,
            "neighbor_timeout_s must exceed beacon_interval_s",
        )
        _require(self.default_replicas >= 1, "default_replicas must be >= 1")
        _require(self.max_members >= 2, "max_members must be >= 2")


@dataclass(frozen=True)
class ScenarioConfig:
    """Top-level configuration for one simulation scenario.

    ``error_policy`` governs how the engine treats raising callbacks:
    ``"raise"`` aborts the run (unit-test behaviour), ``"record"`` keeps
    running and ledgers every failure in the metrics registry,
    ``"suppress"`` keeps running and only counts them.
    """

    seed: int = 42
    duration_s: float = 120.0
    vehicle_count: int = 50
    area_m: Tuple[float, float] = (2000.0, 2000.0)
    error_policy: str = "raise"
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    cloud: CloudConfig = field(default_factory=CloudConfig)

    def __post_init__(self) -> None:
        _require(self.duration_s > 0, "duration_s must be positive")
        _require(self.vehicle_count > 0, "vehicle_count must be positive")
        _require(
            self.area_m[0] > 0 and self.area_m[1] > 0, "area dimensions must be positive"
        )
        _require(
            self.error_policy in ("raise", "record", "suppress"),
            "error_policy must be 'raise', 'record' or 'suppress'",
        )

    def with_overrides(self, **kwargs: object) -> "ScenarioConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]
