"""Discrete-event simulation kernel.

The engine owns a virtual clock and a priority queue of timestamped
events.  Components schedule callbacks with :meth:`Engine.schedule` (or
:meth:`Engine.schedule_at`) and the engine executes them in timestamp
order.  Ties break on a monotonically increasing sequence number so
execution order is fully deterministic.

"Stringent time constraints" from the paper are modelled as virtual-clock
deadlines: a security handshake that costs 12 ms of simulated crypto time
finishes 0.012 simulated seconds later, regardless of host wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

EventCallback = Callable[[], Any]


@dataclass(order=True)
class _QueuedEvent:
    """Internal heap entry; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by ``schedule`` allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled virtual time of the event."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label of the event."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self._event.cancelled = True


class Engine:
    """A deterministic discrete-event simulation engine."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_QueuedEvent] = []
        self._sequence = itertools.count()
        self._events_executed = 0
        self._running = False

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, when: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when:.6f}, clock already at t={self._now:.6f}"
            )
        event = _QueuedEvent(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_every(
        self,
        interval: float,
        callback: EventCallback,
        label: str = "",
        jitter: float = 0.0,
        rng: Optional[Any] = None,
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until stopped.

        ``jitter`` adds a uniform offset in ``[0, jitter]`` to every firing
        (drawn from ``rng``) to avoid global phase-locking of periodic
        processes such as beacons.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, label, jitter, rng)
        first = interval if start_delay is None else start_delay
        task._arm(first)
        return task

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns True if an event ran, False if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_executed += 1
            event.callback()
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events until the clock would pass ``end_time``.

        The clock finishes exactly at ``end_time``.  Returns the number of
        events executed during this call.  ``max_events`` is a safety
        valve against runaway event storms.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before current time {self._now:.6f}"
            )
        executed = 0
        while self._queue:
            event = self._queue[0]
            if event.time > end_time:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_executed += 1
            executed += 1
            event.callback()
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before t={end_time}"
                )
        self._now = end_time
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the simulation forward by ``duration`` seconds."""
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"drain exceeded max_events={max_events}")
        return executed


class PeriodicTask:
    """A repeating event created by :meth:`Engine.call_every`."""

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: EventCallback,
        label: str,
        jitter: float,
        rng: Optional[Any],
    ) -> None:
        self._engine = engine
        self._interval = interval
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self.firings = 0

    @property
    def stopped(self) -> bool:
        """Whether the task has been stopped."""
        return self._stopped

    def _arm(self, delay: float) -> None:
        offset = 0.0
        if self._jitter > 0 and self._rng is not None:
            offset = self._rng.uniform(0.0, self._jitter)
        self._handle = self._engine.schedule(delay + offset, self._fire, self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        self._callback()
        if not self._stopped:
            self._arm(self._interval)

    def stop(self) -> None:
        """Stop the task; any pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
