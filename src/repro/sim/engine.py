"""Discrete-event simulation kernel.

The engine owns a virtual clock and a priority queue of timestamped
events.  Components schedule callbacks with :meth:`Engine.schedule` (or
:meth:`Engine.schedule_at`) and the engine executes them in timestamp
order.  Ties break on a monotonically increasing sequence number so
execution order is fully deterministic.

"Stringent time constraints" from the paper are modelled as virtual-clock
deadlines: a security handshake that costs 12 ms of simulated crypto time
finishes 0.012 simulated seconds later, regardless of host wall-clock.

Error handling is governed by an :data:`ErrorPolicy`:

* ``"raise"`` (default) — a raising callback aborts the run, exactly the
  behaviour a unit test wants;
* ``"record"`` — the failure is appended to :attr:`Engine.failures`,
  counted per label in :attr:`Engine.failure_counts`, reported to
  listeners, and the run continues (what a 10k-event experiment wants);
* ``"suppress"`` — the failure is counted and reported to listeners but
  no detailed record is kept.

Observability hooks: an attached :attr:`Engine.profiler` wall-clock
times every dispatched callback by label, and an attached
:attr:`Engine.tracer` receives a span per ledgered failure.  Both are
``None`` by default (one attribute test per event) and neither touches
the queue, the clock, or any RNG — seeded runs are byte-identical with
or without them.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError

EventCallback = Callable[[], Any]

#: Accepted engine error policies.
ERROR_POLICIES = ("raise", "record", "suppress")

#: Queue-compaction kicks in once this many cancelled events linger.
_COMPACT_THRESHOLD = 64


@dataclass(frozen=True)
class CallbackFailure:
    """One callback exception captured under a non-raising error policy."""

    time: float
    label: str
    error: str

    def __str__(self) -> str:
        return f"t={self.time:.6f} [{self.label}] {self.error}"


@dataclass(order=True)
class _QueuedEvent:
    """Internal heap entry; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by ``schedule`` allowing cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _QueuedEvent, engine: "Engine") -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Scheduled virtual time of the event."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label of the event."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._engine._note_cancellation()


class Engine:
    """A deterministic discrete-event simulation engine."""

    def __init__(self, error_policy: str = "raise") -> None:
        if error_policy not in ERROR_POLICIES:
            raise SimulationError(
                f"error_policy must be one of {ERROR_POLICIES}, got {error_policy!r}"
            )
        self._now = 0.0
        self._queue: List[_QueuedEvent] = []
        self._sequence = itertools.count()
        self._events_executed = 0
        self._cancelled_pending = 0
        self._running = False
        self.error_policy = error_policy
        #: Detailed failure records (populated under the "record" policy).
        self.failures: List[CallbackFailure] = []
        #: Per-label failure counts (populated under "record" and "suppress").
        self.failure_counts: Dict[str, int] = {}
        self._failure_listeners: List[Callable[[CallbackFailure], None]] = []
        #: Optional wall-clock profiler (duck-typed: needs ``record(label, s)``).
        #: Timings are host time and never feed back into the sim, so a
        #: profiled seeded run stays byte-identical to an unprofiled one.
        self.profiler: Optional[Any] = None
        #: Optional tracer (duck-typed: needs ``add_event``-style hooks via
        #: :meth:`record_failure`); attached by ``World.enable_observability``.
        self.tracer: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Cancelled events may linger in the heap until lazily compacted,
        but they are excluded from this count, so the property reports
        real pending work.
        """
        return len(self._queue) - self._cancelled_pending

    def pending_labeled(self, label: str) -> int:
        """Count live queued events carrying exactly this label.

        A linear scan of the heap — meant for low-frequency callers such
        as invariant checks reconciling in-flight work (e.g. pending
        ``"frame-delivery"`` events against channel counters), not hot
        paths.
        """
        return sum(
            1
            for event in self._queue
            if not event.cancelled and not event.fired and event.label == label
        )

    # -- error handling ------------------------------------------------------

    def on_callback_failure(self, listener: Callable[[CallbackFailure], None]) -> None:
        """Register a listener fired for every non-raised callback failure."""
        self._failure_listeners.append(listener)

    def record_failure(self, exc: BaseException, label: str) -> CallbackFailure:
        """Ledger a callback failure per the current error policy.

        Used internally by the event loop and :class:`PeriodicTask`;
        exposed so components that run user callbacks outside the event
        loop can feed the same ledger.
        """
        failure = CallbackFailure(
            time=self._now,
            label=label or "<unlabelled>",
            error=f"{type(exc).__name__}: {exc}",
        )
        self.failure_counts[failure.label] = self.failure_counts.get(failure.label, 0) + 1
        if self.error_policy == "record":
            self.failures.append(failure)
        if self.tracer is not None:
            span = self.tracer.start_span(
                "engine.failure",
                subsystem="engine",
                attrs={"label": failure.label, "error": failure.error},
            )
            self.tracer.end_span(span, status="error")
        for listener in self._failure_listeners:
            listener(failure)
        return failure

    def _run_callback(self, callback: EventCallback, label: str) -> None:
        profiler = self.profiler
        if profiler is None:
            self._dispatch_callback(callback, label)
            return
        started = time.perf_counter()
        try:
            self._dispatch_callback(callback, label)
        finally:
            profiler.record(label or "<unlabelled>", time.perf_counter() - started)

    def _dispatch_callback(self, callback: EventCallback, label: str) -> None:
        if self.error_policy == "raise":
            callback()
            return
        try:
            callback()
        except Exception as exc:  # noqa: BLE001 - the policy decides
            self.record_failure(exc, label)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, when: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when:.6f}, clock already at t={self._now:.6f}"
            )
        event = _QueuedEvent(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def call_every(
        self,
        interval: float,
        callback: EventCallback,
        label: str = "",
        jitter: float = 0.0,
        rng: Optional[Any] = None,
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until stopped.

        ``jitter`` adds a uniform offset in ``[0, jitter]`` to every firing
        (drawn from ``rng``) to avoid global phase-locking of periodic
        processes such as beacons.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, label, jitter, rng)
        first = interval if start_delay is None else start_delay
        task._arm(first)
        return task

    # -- cancellation bookkeeping ---------------------------------------------

    def _note_cancellation(self) -> None:
        self._cancelled_pending += 1
        # Lazy compaction: once cancelled events dominate the heap,
        # rebuild it so long runs with heavy cancellation stay O(live).
        if (
            self._cancelled_pending > _COMPACT_THRESHOLD
            and self._cancelled_pending * 2 >= len(self._queue)
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    def _pop_live_event(self) -> Optional[_QueuedEvent]:
        """Pop the next non-cancelled event, or None if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.fired = True
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            return event
        return None

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns True if an event ran, False if the queue is empty.
        """
        event = self._pop_live_event()
        if event is None:
            return False
        self._now = event.time
        self._events_executed += 1
        self._run_callback(event.callback, event.label)
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events until the clock would pass ``end_time``.

        The clock finishes exactly at ``end_time``.  Returns the number of
        events executed during this call.  ``max_events`` is a safety
        valve against runaway event storms.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before current time {self._now:.6f}"
            )
        executed = 0
        while self._queue:
            event = self._queue[0]
            if event.time > end_time:
                break
            heapq.heappop(self._queue)
            event.fired = True
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_executed += 1
            executed += 1
            self._run_callback(event.callback, event.label)
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before t={end_time}"
                )
        self._now = end_time
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the simulation forward by ``duration`` seconds."""
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"drain exceeded max_events={max_events}")
        return executed


class PeriodicTask:
    """A repeating event created by :meth:`Engine.call_every`.

    A raising callback no longer silently kills the task: under the
    engine's ``"record"``/``"suppress"`` policies the failure is ledgered
    and the task re-arms; under ``"raise"`` the task is explicitly marked
    :attr:`failed` before the exception propagates, so the death is
    visible to whoever owns the handle.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: EventCallback,
        label: str,
        jitter: float,
        rng: Optional[Any],
    ) -> None:
        self._engine = engine
        self._interval = interval
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self.firings = 0
        self.failed = False

    @property
    def stopped(self) -> bool:
        """Whether the task has been stopped."""
        return self._stopped

    def _arm(self, delay: float) -> None:
        offset = 0.0
        if self._jitter > 0 and self._rng is not None:
            offset = self._rng.uniform(0.0, self._jitter)
        self._handle = self._engine.schedule(delay + offset, self._fire, self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        try:
            self._callback()
        except Exception as exc:  # noqa: BLE001 - the policy decides
            if self._engine.error_policy == "raise":
                self.failed = True
                self._stopped = True
                raise
            self._engine.record_failure(exc, self._label or "periodic")
        if not self._stopped:
            self._arm(self._interval)

    def stop(self) -> None:
        """Stop the task; any pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
