"""Discrete-event simulation substrate: engine, RNG, metrics, config, world."""

from .config import (
    ChannelConfig,
    CloudConfig,
    MobilityConfig,
    ScenarioConfig,
    SecurityConfig,
)
from .engine import ERROR_POLICIES, CallbackFailure, Engine, EventHandle, PeriodicTask
from .metrics import (
    MetricDelta,
    MetricsRegistry,
    SeriesSummary,
    ToleranceBand,
    diff_metrics,
    percentile,
    summarize,
)
from .rng import SeededRng, derive_seed
from .spatial import SpatialGrid, grid_from_positions
from .world import World

__all__ = [
    "CallbackFailure",
    "ChannelConfig",
    "CloudConfig",
    "ERROR_POLICIES",
    "Engine",
    "EventHandle",
    "MetricDelta",
    "MetricsRegistry",
    "MobilityConfig",
    "PeriodicTask",
    "ScenarioConfig",
    "SecurityConfig",
    "SeededRng",
    "SeriesSummary",
    "SpatialGrid",
    "ToleranceBand",
    "World",
    "derive_seed",
    "diff_metrics",
    "grid_from_positions",
    "percentile",
    "summarize",
]
