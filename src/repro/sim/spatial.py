"""Uniform-hash-grid spatial index for range queries.

Every topology question the simulator asks — who is in radio range, who
clusters with whom, is the cloud connected — reduces to "which items lie
within ``radius`` of this point?".  The seed answered it with brute-force
pairwise scans, which made dense scenes (exactly where the paper's
"stringent time constraints" bite) quadratic or worse.  A
:class:`SpatialGrid` hashes items into square cells of side
``cell_size_m`` (chosen ≈ the dominant radio range) so a range query only
inspects the cells overlapping the query disc.

Correctness contract
--------------------
``within()`` returns **exactly** the set a brute-force scan over the same
items would: candidates from the overlapping cells are filtered with the
identical ``Vec2.distance_to(...) <= radius`` comparison (boundary-exact
distances included), and results come back ordered by insertion sequence,
which matches the iteration order of the ``dict``-backed registries the
brute-force scans walked.  ``tests/test_sim_spatial.py`` pins the
equivalence with property tests over random snapshots.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Hashable, Iterator, List, Set, Tuple, TypeVar

from ..errors import SimulationError
from ..geometry import Vec2

ItemId = TypeVar("ItemId", bound=Hashable)
_Cell = Tuple[int, int]


class SpatialGrid(Generic[ItemId]):
    """A sparse uniform grid mapping item ids to 2-D positions.

    Cells are stored in a dict keyed by integer cell coordinates, so the
    grid covers an unbounded plane and only occupied cells cost memory.
    Queries whose disc spans more cells than are occupied fall back to
    scanning the occupied-cell dict, keeping huge radii (base stations)
    no worse than linear in the number of *occupied cells*.
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise SimulationError("cell_size_m must be positive")
        self.cell_size_m = cell_size_m
        self._cells: Dict[_Cell, Set[ItemId]] = {}
        self._positions: Dict[ItemId, Vec2] = {}
        self._cell_of_item: Dict[ItemId, _Cell] = {}
        self._seq: Dict[ItemId, int] = {}
        self._next_seq = 0

    # -- membership ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._positions

    def ids(self) -> Iterator[ItemId]:
        """Iterate over item ids in insertion order."""
        return iter(self._positions)

    def position_of(self, item_id: ItemId) -> Vec2:
        """Return the last position recorded for ``item_id``."""
        try:
            return self._positions[item_id]
        except KeyError:
            raise SimulationError(f"unknown spatial item: {item_id!r}") from None

    # -- updates ------------------------------------------------------------

    def _cell_for(self, position: Vec2) -> _Cell:
        size = self.cell_size_m
        return (math.floor(position.x / size), math.floor(position.y / size))

    def insert(self, item_id: ItemId, position: Vec2) -> None:
        """Add a new item; raises if the id is already present."""
        if item_id in self._positions:
            raise SimulationError(f"spatial item already present: {item_id!r}")
        cell = self._cell_for(position)
        self._positions[item_id] = position
        self._cell_of_item[item_id] = cell
        self._cells.setdefault(cell, set()).add(item_id)
        self._seq[item_id] = self._next_seq
        self._next_seq += 1

    def move(self, item_id: ItemId, position: Vec2) -> None:
        """Record a new position for an existing item."""
        if item_id not in self._positions:
            raise SimulationError(f"unknown spatial item: {item_id!r}")
        old_cell = self._cell_of_item[item_id]
        new_cell = self._cell_for(position)
        self._positions[item_id] = position
        if new_cell != old_cell:
            members = self._cells[old_cell]
            members.discard(item_id)
            if not members:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item_id)
            self._cell_of_item[item_id] = new_cell

    def move_if_changed(self, item_id: ItemId, position: Vec2) -> bool:
        """Move the item if its position changed; returns True if it did.

        The identity fast path makes the per-query synchronisation sweep
        cheap: unmoved entities keep the same ``Vec2`` object, so the
        common case is a single ``is`` comparison.
        """
        stored = self._positions[item_id]
        if stored is position or stored == position:
            return False
        self.move(item_id, position)
        return True

    def remove(self, item_id: ItemId) -> None:
        """Remove an item; unknown ids are ignored (idempotent)."""
        if item_id not in self._positions:
            return
        cell = self._cell_of_item.pop(item_id)
        members = self._cells[cell]
        members.discard(item_id)
        if not members:
            del self._cells[cell]
        del self._positions[item_id]
        del self._seq[item_id]

    def clear(self) -> None:
        """Remove every item (sequence numbers keep increasing)."""
        self._cells.clear()
        self._positions.clear()
        self._cell_of_item.clear()
        self._seq.clear()

    # -- queries ------------------------------------------------------------

    def within(self, point: Vec2, radius: float) -> List[ItemId]:
        """Return ids of items with ``distance(point, item) <= radius``.

        The result is ordered by insertion sequence, i.e. exactly the
        order a brute-force scan over the insertion-ordered registry
        would produce.  ``radius < 0`` returns an empty list.
        """
        if radius < 0:
            return []
        size = self.cell_size_m
        cx0 = math.floor((point.x - radius) / size)
        cx1 = math.floor((point.x + radius) / size)
        cy0 = math.floor((point.y - radius) / size)
        cy1 = math.floor((point.y + radius) / size)
        positions = self._positions
        seq = self._seq
        hits: List[Tuple[int, ItemId]] = []
        span = (cx1 - cx0 + 1) * (cy1 - cy0 + 1)
        if span <= len(self._cells):
            for cx in range(cx0, cx1 + 1):
                for cy in range(cy0, cy1 + 1):
                    members = self._cells.get((cx, cy))
                    if not members:
                        continue
                    for item_id in members:
                        if point.distance_to(positions[item_id]) <= radius:
                            hits.append((seq[item_id], item_id))
        else:
            # Query disc spans more cells than exist: walk occupied cells.
            for (cx, cy), members in self._cells.items():
                if cx0 <= cx <= cx1 and cy0 <= cy <= cy1:
                    for item_id in members:
                        if point.distance_to(positions[item_id]) <= radius:
                            hits.append((seq[item_id], item_id))
        hits.sort()
        return [item_id for _seq, item_id in hits]

    def neighbors_of(self, item_id: ItemId, radius: float) -> List[ItemId]:
        """``within()`` around an item's own position, excluding itself."""
        point = self.position_of(item_id)
        return [other for other in self.within(point, radius) if other != item_id]


def grid_from_positions(
    positions: Dict[ItemId, Vec2], cell_size_m: float
) -> "SpatialGrid[ItemId]":
    """Build a throw-away grid from an id→position snapshot."""
    grid = SpatialGrid(cell_size_m)
    for item_id, position in positions.items():
        grid.insert(item_id, position)
    return grid
