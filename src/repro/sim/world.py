"""Shared simulation context.

A :class:`World` bundles the engine, master RNG, metrics registry and the
scenario config, and acts as a registry of simulation entities (vehicles,
RSUs, services).  Passing a single ``world`` keeps component constructors
short and makes the wiring explicit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, TypeVar

from ..errors import SimulationError
from .config import ScenarioConfig
from .engine import CallbackFailure, Engine
from .metrics import MetricsRegistry
from .rng import SeededRng
from .spatial import SpatialGrid

if TYPE_CHECKING:
    from ..obs import EventLog, Observability, Profiler, Tracer

T = TypeVar("T")


class World:
    """Container for one simulation run's shared state."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config if config is not None else ScenarioConfig()
        self.engine = Engine(error_policy=self.config.error_policy)
        self.rng = SeededRng(self.config.seed)
        self.metrics = MetricsRegistry()
        self.engine.on_callback_failure(self._ledger_callback_failure)
        self._entities: Dict[str, object] = {}
        # Shared spatial index for radio-range queries.  Cell size tracks
        # the dominant (V2V) radio range so a typical range query touches
        # at most a 3x3 block of cells.
        self.spatial = SpatialGrid(cell_size_m=self.config.channel.v2v_range_m)
        self._spatial_owner: Optional[object] = None
        # Observability is opt-in (enable_observability); components
        # guard every hook with an ``is None`` check, so an unattached
        # world pays one attribute test and seeded runs stay identical.
        self.tracer: Optional["Tracer"] = None
        self.events: Optional["EventLog"] = None
        self.profiler: Optional["Profiler"] = None

    def enable_observability(
        self,
        trace: bool = True,
        events: bool = True,
        profile: bool = False,
        max_spans: int = 100_000,
        max_events: int = 100_000,
        channel_frames: str = "tagged",
        min_severity: str = "debug",
    ) -> "Observability":
        """Attach tracing / event telemetry / profiling to this world.

        Everything is keyed to *sim* time except the profiler, which is
        the one deliberately wall-clock component.  ``channel_frames``
        picks which frames get message-lifecycle spans: ``"tagged"``
        (only messages carrying a trace context), ``"all"``, or
        ``"off"``.  Returns the :class:`~repro.obs.Observability`
        bundle; the parts are also reachable as :attr:`tracer`,
        :attr:`events` and :attr:`profiler`.
        """
        from ..obs import EventLog, Observability, Profiler, Tracer

        bundle = Observability()
        if trace:
            self.tracer = Tracer(
                clock=lambda: self.engine.now,
                max_spans=max_spans,
                channel_frames=channel_frames,
            )
            self.engine.tracer = self.tracer
            bundle.tracer = self.tracer
        if events:
            self.events = EventLog(
                clock=lambda: self.engine.now,
                max_events=max_events,
                min_severity=min_severity,
            )
            self.engine.on_callback_failure(self._emit_failure_event)
            bundle.events = self.events
        if profile:
            self.profiler = Profiler()
            self.engine.profiler = self.profiler
            bundle.profiler = self.profiler
        return bundle

    def _emit_failure_event(self, failure: CallbackFailure) -> None:
        if self.events is not None:
            self.events.emit(
                "engine",
                "callback_failure",
                severity="error",
                label=failure.label,
                error=failure.error,
            )

    def claim_spatial_grid(self, owner: object) -> SpatialGrid:
        """Return the world's spatial grid, claiming it for ``owner``.

        The first claimant (normally the one wireless channel a scenario
        builds) gets the shared :attr:`spatial` grid; any later distinct
        claimant receives a private grid with the same cell size, so two
        channels on one world can never collide over item ids.
        """
        if self._spatial_owner is None or self._spatial_owner is owner:
            self._spatial_owner = owner
            return self.spatial
        return SpatialGrid(cell_size_m=self.spatial.cell_size_m)

    def _ledger_callback_failure(self, failure: CallbackFailure) -> None:
        """Surface engine callback failures in the metrics registry."""
        self.metrics.increment("engine/callback_failures")
        self.metrics.increment(f"engine/callback_failures/{failure.label}")
        self.metrics.observe_at("engine/callback_failures", failure.time, 1.0)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.now

    # -- entity registry ------------------------------------------------------

    def register(self, entity_id: str, entity: object) -> None:
        """Register an entity under a unique id."""
        if entity_id in self._entities:
            raise SimulationError(f"entity id already registered: {entity_id!r}")
        self._entities[entity_id] = entity

    def unregister(self, entity_id: str) -> None:
        """Remove an entity from the registry."""
        if entity_id not in self._entities:
            raise SimulationError(f"unknown entity id: {entity_id!r}")
        del self._entities[entity_id]

    def get(self, entity_id: str) -> object:
        """Return the entity registered under ``entity_id``."""
        try:
            return self._entities[entity_id]
        except KeyError:
            raise SimulationError(f"unknown entity id: {entity_id!r}") from None

    def maybe_get(self, entity_id: str) -> Optional[object]:
        """Return the entity or None if not registered."""
        return self._entities.get(entity_id)

    def has(self, entity_id: str) -> bool:
        """Return True if an entity with this id exists."""
        return entity_id in self._entities

    def entities_of_type(self, cls: type) -> List[object]:
        """Return all registered entities that are instances of ``cls``."""
        return [e for e in self._entities.values() if isinstance(e, cls)]

    def entity_ids(self) -> Iterator[str]:
        """Iterate over all registered entity ids."""
        return iter(self._entities)

    def __len__(self) -> int:
        return len(self._entities)

    # -- convenience -----------------------------------------------------------

    def run_for(self, duration: float) -> int:
        """Advance the simulation by ``duration`` seconds."""
        return self.engine.run_for(duration)

    def run_until(self, end_time: float) -> int:
        """Advance the simulation to absolute time ``end_time``."""
        return self.engine.run_until(end_time)
