"""Reproducer bundles: everything needed to replay a failure.

When a chaos run violates an invariant, the runner captures the run
seed, the generated plan, the first violation, the ddmin-minimized
fault subset and (when observability is on) the causal trace excerpt
explaining the chain of events, into a :class:`ReproducerBundle`.
The bundle is self-describing — :meth:`ReproducerBundle.describe`
prints the replay recipe, :meth:`ReproducerBundle.to_dict` serializes
it for CI artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..faults.plan import FaultSpec
from .invariants import Violation


@dataclass(frozen=True)
class ReproducerBundle:
    """A minimal, deterministic recipe for replaying one failure."""

    #: Seed of the failing run; replaying it regenerates the same plan.
    seed: int
    run_length_s: float
    #: Name of the first violated invariant (the minimization target).
    invariant: str
    #: The first violation observed in the original full run.
    violation: Violation
    #: Number of specs in the full generated schedule.
    schedule_size: int
    #: Original schedule positions that survived minimization, sorted.
    minimized_indices: Tuple[int, ...]
    #: The fault specs at those positions.
    minimized_specs: Tuple[FaultSpec, ...]
    #: Distinct scenario re-runs ddmin needed.
    minimize_runs: int
    #: ``Tracer.explain`` lines for the span nearest the violation
    #: (empty when the reproducing run had observability off).
    trace_excerpt: Tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        """Human-readable reproducer report."""
        lines: List[str] = [
            f"invariant violated : {self.invariant}",
            f"first violation    : {self.violation.describe()}",
            f"seed               : {self.seed}",
            f"run length         : {self.run_length_s:g}s",
            f"schedule           : {self.schedule_size} fault(s), minimized to "
            f"{len(self.minimized_specs)} in {self.minimize_runs} re-run(s)",
            "minimal fault set  :",
        ]
        for index, spec in zip(self.minimized_indices, self.minimized_specs):
            lines.append(f"  [{index:3d}] {spec.describe()}")
        lines.append(
            f"replay             : runner.run_seed({self.seed}, "
            f"only_indices={list(self.minimized_indices)})"
        )
        if self.trace_excerpt:
            lines.append("causal trace       :")
            lines.extend(f"  {line}" for line in self.trace_excerpt)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for CI artifacts."""
        return {
            "seed": self.seed,
            "run_length_s": self.run_length_s,
            "invariant": self.invariant,
            "violation": {
                "invariant": self.violation.invariant,
                "time": self.violation.time,
                "message": self.violation.message,
            },
            "schedule_size": self.schedule_size,
            "minimized_indices": list(self.minimized_indices),
            "minimized_specs": [
                {"kind": spec.kind, "at": spec.at, "params": dict(spec.params)}
                for spec in self.minimized_specs
            ],
            "minimize_runs": self.minimize_runs,
            "trace_excerpt": list(self.trace_excerpt),
        }
