"""Delta debugging (ddmin) over fault-schedule indices.

Given a failing campaign, :func:`ddmin` shrinks the set of schedule
positions that must be armed for the failure to reproduce.  The test
function receives a tuple of *original* schedule indices — the caller
re-runs the scenario arming only those positions
(:meth:`~repro.faults.injector.FaultInjector.arm` with ``only_indices``),
which preserves every spec's RNG fork key so a subset resolves the same
victims as the full plan.

This is Zeller & Hildebrandt's classic algorithm: try removing chunks,
then complements, then double the granularity; stop when single-spec
granularity yields no further reduction.  The result is 1-minimal —
removing any single remaining index makes the failure vanish.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

TestFn = Callable[[Tuple[int, ...]], bool]


def _chunks(items: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    """Split ``items`` into ``n`` contiguous, near-equal chunks."""
    out: List[Tuple[int, ...]] = []
    size, extra = divmod(len(items), n)
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            out.append(tuple(items[start:end]))
        start = end
    return out


def ddmin(indices: Sequence[int], test: TestFn) -> Tuple[List[int], int]:
    """Shrink ``indices`` to a 1-minimal subset for which ``test`` holds.

    ``test(subset)`` must return True when the failure reproduces with
    only that subset armed; it is memoized, so the returned run count is
    the number of *distinct* subsets actually executed.  ``test(())`` is
    never called — an empty schedule trivially cannot fail.

    Returns ``(minimal_indices, runs_executed)``.
    """
    cache: Dict[Tuple[int, ...], bool] = {}
    runs = 0

    def check(subset: Tuple[int, ...]) -> bool:
        nonlocal runs
        if not subset:
            return False
        if subset not in cache:
            runs += 1
            cache[subset] = test(subset)
        return cache[subset]

    current: Tuple[int, ...] = tuple(sorted(indices))
    if not check(current):
        raise ValueError("ddmin: the full index set does not reproduce the failure")

    granularity = 2
    while len(current) >= 2:
        chunks = _chunks(current, granularity)
        reduced = False
        # Pass 1: does any single chunk suffice?
        for chunk in chunks:
            if check(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # Pass 2: does dropping any single chunk keep the failure?
        if granularity > 2:
            for chunk in chunks:
                drop = set(chunk)
                complement = tuple(i for i in current if i not in drop)
                if check(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if reduced:
                continue
        # Pass 3: refine granularity or stop.
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)

    return list(current), runs
