"""Chaos campaign runner: seeded runs, campaigns, reproducer capture.

:class:`ChaosRunner` glues the pieces together.  A *scenario factory*
builds a fresh world + cloud + invariant list for a seed; the runner
generates a fault campaign for that seed (:mod:`.generator`), arms a
:class:`~repro.faults.injector.FaultInjector`, checks the invariant
suite on a fixed cadence, and reports a :class:`RunResult`.

On violation, :meth:`ChaosRunner.capture_reproducer` delta-debugs the
fault schedule (:mod:`.minimize`) down to a 1-minimal failing subset —
re-running the whole scenario deterministically for each candidate —
and packages seed, plan, first violation, minimal fault set and a
causal-trace excerpt into a :class:`~.bundle.ReproducerBundle`.

Cross-run determinism: task / vehicle / message ids come from
process-global counters, so the runner rewinds them before every run
(:func:`~repro.core.tasks.reset_task_ids` and friends).  Two calls to
:meth:`run_seed` with the same arguments are therefore byte-identical
even within one process — the property replay depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.tasks import reset_task_ids
from ..errors import ChaosError
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..mobility.vehicle import reset_vehicle_ids
from ..net.messages import reset_message_ids
from ..sim.world import World
from .bundle import ReproducerBundle
from .generator import ChaosProfile, ChaosTargets, generate_plan
from .invariants import Invariant, InvariantSuite, Violation
from .minimize import ddmin

#: Span statuses that mark a span as "something went wrong here".
_SUSPECT_STATUSES = ("failed", "error", "dropped", "degraded", "handover")


@dataclass
class ChaosScenario:
    """Everything the runner needs from one freshly built scenario."""

    world: World
    invariants: Sequence[Invariant]
    cloud: Any = None
    channel: Any = None
    infrastructure: Sequence = ()
    node_lookup: Optional[Callable[[str], Optional[object]]] = None
    label: str = "scenario"

    def targets(self) -> ChaosTargets:
        """Derive the fault-target inventory for plan generation."""
        members = self.cloud.member_count() if self.cloud is not None else 0
        return ChaosTargets(
            members=members,
            has_channel=self.channel is not None,
            infrastructure=len(self.infrastructure),
        )


@dataclass
class RunResult:
    """Outcome of one seeded chaos run."""

    seed: int
    label: str
    schedule_size: int
    armed: int
    injected: int
    skipped: int
    checks_run: int
    violations: List[Violation]
    plan: FaultPlan
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    storage_degraded: int = 0
    scenario: Optional[ChaosScenario] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None


@dataclass
class CampaignResult:
    """Aggregate outcome of a multi-seed campaign."""

    label: str
    results: List[RunResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def clean_runs(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def failing_seeds(self) -> List[int]:
        return [r.seed for r in self.results if not r.ok]

    @property
    def total_injected(self) -> int:
        return sum(r.injected for r in self.results)

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    def describe(self) -> str:
        return (
            f"{self.label}: {self.clean_runs}/{self.runs} clean, "
            f"{self.total_injected} faults injected, "
            f"{self.total_violations} violation(s)"
            + (f", failing seeds {self.failing_seeds}" if self.failing_seeds else "")
        )


#: A scenario factory builds a fresh, unstarted scenario for one seed.
ScenarioFactory = Callable[[int], ChaosScenario]


def _reset_global_ids() -> None:
    """Rewind process-global id counters for cross-run replay."""
    reset_task_ids()
    reset_vehicle_ids()
    reset_message_ids()


class ChaosRunner:
    """Runs seeded chaos campaigns against a scenario factory."""

    def __init__(
        self,
        factory: ScenarioFactory,
        run_length_s: float = 60.0,
        check_interval_s: float = 1.0,
        profile: Optional[ChaosProfile] = None,
    ) -> None:
        if run_length_s <= 0:
            raise ChaosError("run_length_s must be positive")
        if check_interval_s <= 0:
            raise ChaosError("check_interval_s must be positive")
        self.factory = factory
        self.run_length_s = run_length_s
        self.check_interval_s = check_interval_s
        self.profile = profile if profile is not None else ChaosProfile()

    # -- single runs ---------------------------------------------------------

    def run_seed(
        self,
        seed: int,
        only_indices: Optional[Sequence[int]] = None,
        observe: bool = False,
    ) -> RunResult:
        """Execute one seeded run; optionally arm only a schedule subset."""
        _reset_global_ids()
        scenario = self.factory(seed)
        world = scenario.world
        if observe:
            world.enable_observability(trace=True, events=True)
        plan = generate_plan(
            seed, self.run_length_s, scenario.targets(), self.profile
        )
        injector = FaultInjector(
            world,
            plan,
            cloud=scenario.cloud,
            channel=scenario.channel,
            infrastructure=scenario.infrastructure,
            node_lookup=scenario.node_lookup,
        )
        armed = injector.arm(only_indices)
        suite = InvariantSuite(scenario.invariants, metrics=world.metrics)
        suite.attach(world, self.check_interval_s)
        world.run_for(self.run_length_s)
        suite.check_now(world.now)

        result = RunResult(
            seed=seed,
            label=scenario.label,
            schedule_size=len(plan.schedule()),
            armed=armed,
            injected=len(injector.ledger),
            skipped=injector.skipped,
            checks_run=suite.checks_run,
            violations=list(suite.violations),
            plan=plan,
            scenario=scenario,
        )
        if scenario.cloud is not None:
            stats = scenario.cloud.stats
            result.submitted = stats.submitted
            result.completed = stats.completed
            result.failed = stats.failed
            result.storage_degraded = stats.storage_degraded
        return result

    def run_campaign(self, seeds: Sequence[int], label: str = "") -> CampaignResult:
        """Run one seed after another, collecting every result."""
        campaign = CampaignResult(label=label or "campaign")
        for seed in seeds:
            result = self.run_seed(seed)
            if not campaign.label or campaign.label == "campaign":
                campaign.label = result.label
            campaign.results.append(result)
        return campaign

    # -- reproducer capture --------------------------------------------------

    def capture_reproducer(self, seed: int) -> ReproducerBundle:
        """Minimize a failing seed into a replayable reproducer bundle.

        Raises :class:`~repro.errors.ChaosError` if the seed does not
        violate any invariant in the first place.
        """
        base = self.run_seed(seed)
        first = base.first_violation
        if first is None:
            raise ChaosError(
                f"seed {seed} violates no invariant; nothing to minimize"
            )
        target = first.invariant

        def reproduces(subset: Tuple[int, ...]) -> bool:
            result = self.run_seed(seed, only_indices=subset)
            return any(v.invariant == target for v in result.violations)

        minimal, runs = ddmin(range(base.schedule_size), reproduces)
        schedule = base.plan.schedule()
        minimized_specs = tuple(schedule[i] for i in minimal)

        # One final traced replay of the minimal subset for the causal chain.
        traced = self.run_seed(seed, only_indices=minimal, observe=True)
        traced_first = next(
            (v for v in traced.violations if v.invariant == target), first
        )
        excerpt = self._trace_excerpt(traced, traced_first)

        return ReproducerBundle(
            seed=seed,
            run_length_s=self.run_length_s,
            invariant=target,
            violation=traced_first,
            schedule_size=base.schedule_size,
            minimized_indices=tuple(minimal),
            minimized_specs=minimized_specs,
            minimize_runs=runs,
            trace_excerpt=excerpt,
        )

    @staticmethod
    def _trace_excerpt(result: RunResult, violation: Violation) -> Tuple[str, ...]:
        """Render the causal chain nearest the violation, if traced."""
        scenario = result.scenario
        if scenario is None or scenario.world.tracer is None:
            return ()
        tracer = scenario.world.tracer
        suspects = [
            span
            for span in tracer.spans()
            if span.status in _SUSPECT_STATUSES and span.start <= violation.time
        ]
        if not suspects:
            suspects = [
                span for span in tracer.find("fault.") if span.start <= violation.time
            ]
        if not suspects:
            return ()
        anchor = max(suspects, key=lambda span: span.start)
        lines = []
        for span in tracer.explain(anchor):
            status = span.status or "open"
            lines.append(
                f"{span.start:8.3f}s {span.subsystem}/{span.name} [{status}]"
            )
        return tuple(lines)
