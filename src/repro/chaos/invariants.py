"""Cross-subsystem safety invariants, checked continuously during a run.

An :class:`Invariant` inspects live simulation state and reports
:class:`Violation` records; an :class:`InvariantSuite` runs a set of
them on a periodic engine event.  Checks follow the observability
determinism contract: they are strictly read-only — no RNG draws, no
engine mutations beyond the suite's own periodic event, writes only to
the metrics registry — so a seeded run behaves byte-identically with
checks on or off (modulo the sequence numbers the check events consume,
which never reorder other same-time events relative to each other).

The library covers the safety properties the paper's dependability
section (§V.A) asks of a vehicular cloud:

* :class:`TaskConservation` — no task completes twice or is silently
  lost (``submitted = completed + failed + in-flight``, ledger counters
  agree with record states);
* :class:`LeaseExclusivity` — at most one live execution per worker,
  every execution on a leased current member;
* :class:`SingleHead` — exactly one coordinator, and it is a member
  (or a configured external head such as an RSU);
* :class:`ClusterExclusivity` — no vehicle in two clusters, every head
  inside its own cluster;
* :class:`QuorumSafety` — no stale reads or lost updates, wrapping the
  existing :class:`~repro.faults.consistency.ConsistencyChecker`;
* :class:`MembershipAgreement` — resource pool, lease table and storage
  membership agree with the membership manager;
* :class:`ChannelConservation` — the channel's frame counters obey their
  conservation law and in-flight frames reconcile exactly against the
  engine queue;
* :class:`StrandedTasks` — a crash-frozen execution is recovered within
  a grace window instead of hanging forever;
* :class:`ServingConservation` — the serving gateway's request stream
  balances (``offered = admitted + rejected``;
  ``admitted = completed + failed + shed + queued + in-flight``), so
  load shedding and hedging never lose a request silently;
* :class:`DagConservation` — the DAG scheduler's graph and replica
  streams balance (every submitted graph is completed, failed or
  running; every stage replica ever submitted is completed, failed or
  live on the cloud), extending task conservation to subtasks so
  replication and first-result-wins cancellation never leak work;
* :class:`TierConservation` — the tiered offloader's task and attempt
  streams balance across tiers: every speculated task resolves to
  exactly one winner with all losing replicas cancelled, failed, or
  flagged late, so cross-tier speculation over a lossy backhaul never
  double-completes or silently drops a task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Set

from ..faults.consistency import ConsistencyChecker
from ..net.clustering.base import ClusterSet
from ..sim.metrics import MetricsRegistry
from ..sim.world import World


@dataclass(frozen=True)
class Violation:
    """One observed breach of a safety invariant."""

    invariant: str
    time: float
    message: str

    def describe(self) -> str:
        """Canonical one-line rendering."""
        return f"t={self.time:.3f} [{self.invariant}] {self.message}"


class Invariant(Protocol):
    """The invariant protocol: a name plus a read-only check."""

    name: str

    def check(self, now: float) -> List[Violation]:
        """Inspect live state; return violations observed at ``now``."""
        ...


class InvariantSuite:
    """Runs a set of invariants and accumulates their violations."""

    def __init__(
        self,
        invariants: Sequence[Invariant],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.invariants = list(invariants)
        self.metrics = metrics
        self.violations: List[Violation] = []
        self.checks_run = 0

    @property
    def first_violation(self) -> Optional[Violation]:
        """The earliest recorded violation, or None."""
        return self.violations[0] if self.violations else None

    def check_now(self, now: float) -> List[Violation]:
        """Run every invariant once; returns the fresh violations."""
        self.checks_run += 1
        fresh: List[Violation] = []
        for invariant in self.invariants:
            fresh.extend(invariant.check(now))
        for violation in fresh:
            if self.metrics is not None:
                self.metrics.increment("chaos/violations")
                self.metrics.increment(f"chaos/violations/{violation.invariant}")
        self.violations.extend(fresh)
        return fresh

    def attach(self, world: World, check_interval_s: float = 1.0):
        """Schedule periodic checks on the world's engine."""
        return world.engine.call_every(
            check_interval_s,
            lambda: self.check_now(world.now),
            label="chaos-invariant-check",
        )


def _violation(name: str, now: float, message: str) -> Violation:
    return Violation(invariant=name, time=now, message=message)


class TaskConservation:
    """No task is double-counted or silently lost."""

    name = "task-conservation"

    def __init__(self, cloud) -> None:
        self.cloud = cloud

    def check(self, now: float) -> List[Violation]:
        acc = self.cloud.accounting()
        out: List[Violation] = []
        if acc["submitted"] != acc["records"]:
            out.append(_violation(
                self.name, now,
                f"submitted counter {acc['submitted']} != ledgered records {acc['records']}",
            ))
        if acc["completed"] != acc["records_completed"]:
            out.append(_violation(
                self.name, now,
                f"completed counter {acc['completed']} != completed records "
                f"{acc['records_completed']} (double completion or silent loss)",
            ))
        if acc["failed"] != acc["records_failed"]:
            out.append(_violation(
                self.name, now,
                f"failed counter {acc['failed']} != failed records {acc['records_failed']}",
            ))
        balance = acc["completed"] + acc["failed"] + acc["records_in_flight"]
        if acc["submitted"] != balance:
            out.append(_violation(
                self.name, now,
                f"submitted {acc['submitted']} != completed {acc['completed']} "
                f"+ failed {acc['failed']} + in-flight {acc['records_in_flight']}",
            ))
        return out


class LeaseExclusivity:
    """Every live execution sits alone on a leased, current member."""

    name = "lease-exclusivity"

    def __init__(self, cloud) -> None:
        self.cloud = cloud

    def check(self, now: float) -> List[Violation]:
        out: List[Violation] = []
        seen: Dict[str, str] = {}
        for task_id, worker, state in self.cloud.execution_view():
            if state not in ("assigned", "running"):
                out.append(_violation(
                    self.name, now,
                    f"execution of {task_id} in non-active state {state!r}",
                ))
            if not worker:
                out.append(_violation(
                    self.name, now, f"execution of {task_id} has no bound worker"
                ))
                continue
            if worker in seen:
                out.append(_violation(
                    self.name, now,
                    f"worker {worker} holds two live executions "
                    f"({seen[worker]} and {task_id})",
                ))
            seen[worker] = task_id
            if worker not in self.cloud.membership:
                out.append(_violation(
                    self.name, now,
                    f"execution of {task_id} on non-member worker {worker}",
                ))
            if self.cloud.leases is not None and worker not in self.cloud.leases:
                out.append(_violation(
                    self.name, now,
                    f"execution of {task_id} on unleased worker {worker}",
                ))
        return out


class SingleHead:
    """The cloud has exactly one coordinator, and it is legitimate."""

    name = "single-head"

    def __init__(self, cloud, external_heads: Sequence[str] = ()) -> None:
        self.cloud = cloud
        #: Heads that are valid without being members (e.g. an RSU id).
        self.external_heads = frozenset(external_heads)

    def check(self, now: float) -> List[Violation]:
        out: List[Violation] = []
        head = self.cloud.head_id
        members = set(self.cloud.membership.member_ids())
        if members and head is None:
            out.append(_violation(
                self.name, now,
                f"{len(members)} members but no coordinator elected",
            ))
        if head is not None and head not in members and head not in self.external_heads:
            out.append(_violation(
                self.name, now,
                f"coordinator {head} is neither a member nor a configured external head",
            ))
        return out


class ClusterExclusivity:
    """No vehicle belongs to two clusters; each head is in its cluster."""

    name = "cluster-exclusivity"

    def __init__(self, cluster_source: Callable[[], Optional[ClusterSet]]) -> None:
        self.cluster_source = cluster_source

    def check(self, now: float) -> List[Violation]:
        clusters = self.cluster_source()
        if clusters is None:
            return []
        out: List[Violation] = []
        owner: Dict[str, str] = {}
        for cluster in clusters.clusters:
            if cluster.head_id not in cluster.member_ids:
                out.append(_violation(
                    self.name, now,
                    f"head {cluster.head_id} is outside its own cluster",
                ))
            for member in cluster.member_ids:
                if member in owner and owner[member] != cluster.head_id:
                    out.append(_violation(
                        self.name, now,
                        f"vehicle {member} belongs to clusters of both "
                        f"{owner[member]} and {cluster.head_id}",
                    ))
                owner.setdefault(member, cluster.head_id)
        return out


class QuorumSafety:
    """No stale reads, no lost updates (wraps the consistency oracle).

    Detection is incremental: each check reports only anomalies the
    :class:`~repro.faults.consistency.ConsistencyChecker` found since
    the previous check, so a single stale read yields a single
    violation, timestamped near its occurrence.
    """

    name = "quorum-safety"

    def __init__(self, checker: ConsistencyChecker) -> None:
        self.checker = checker
        self._seen_stale = 0
        self._seen_lost = 0

    def check(self, now: float) -> List[Violation]:
        out: List[Violation] = []
        if self.checker.stale_reads > self._seen_stale:
            delta = self.checker.stale_reads - self._seen_stale
            self._seen_stale = self.checker.stale_reads
            out.append(_violation(
                self.name, now,
                f"{delta} stale read(s): a read returned a version older than "
                f"an acknowledged write ({self.checker.stale_reads} total)",
            ))
        if self.checker.lost_updates > self._seen_lost:
            delta = self.checker.lost_updates - self._seen_lost
            self._seen_lost = self.checker.lost_updates
            out.append(_violation(
                self.name, now,
                f"{delta} lost update(s): two acknowledged writes minted the "
                f"same version ({self.checker.lost_updates} total)",
            ))
        return out


class MembershipAgreement:
    """Pool, lease table and storage membership agree with the manager.

    All membership-derived tables are updated synchronously in the same
    callbacks, so at any instant between events they must match exactly;
    ``convergence_s`` relaxes the check for the window after the latest
    join/leave, for architectures with asynchronous propagation.
    """

    name = "membership-agreement"

    def __init__(self, cloud, convergence_s: float = 0.0) -> None:
        self.cloud = cloud
        self.convergence_s = convergence_s
        self._last_churn_seen = -1
        self._last_churn_at = 0.0

    def _converged(self, now: float) -> bool:
        churn = self.cloud.membership.joins + self.cloud.membership.leaves
        if churn != self._last_churn_seen:
            self._last_churn_seen = churn
            self._last_churn_at = now
        return now - self._last_churn_at >= self.convergence_s

    def check(self, now: float) -> List[Violation]:
        if not self._converged(now):
            return []
        members = sorted(self.cloud.membership.member_ids())
        out: List[Violation] = []
        pool = sorted(self.cloud.pool.member_ids())
        if pool != members:
            out.append(_violation(
                self.name, now,
                f"resource pool {pool} disagrees with membership {members}",
            ))
        if self.cloud.leases is not None:
            leased = self.cloud.leases.held()
            if leased != members:
                out.append(_violation(
                    self.name, now,
                    f"lease table {leased} disagrees with membership {members}",
                ))
        if self.cloud.storage is not None:
            stores = sorted(self.cloud.storage.member_ids())
            if stores != members:
                out.append(_violation(
                    self.name, now,
                    f"storage members {stores} disagree with membership {members}",
                ))
        return out


class ChannelConservation:
    """The channel's frame counters obey their conservation law.

    Exact equalities (integer-valued counters):

    * ``dispatched + duplicated == suppressed + lost + scheduled``;
    * ``in_flight = scheduled - delivered - to_departed >= 0``; and
    * ``in_flight`` equals the engine's live ``frame-delivery`` events.
    """

    name = "channel-conservation"

    def __init__(self, world: World) -> None:
        self.world = world

    def _count(self, name: str) -> int:
        return int(self.world.metrics.counter(f"channel/{name}"))

    def check(self, now: float) -> List[Violation]:
        out: List[Violation] = []
        dispatched = self._count("frames_dispatched")
        duplicated = self._count("frames_duplicated")
        suppressed = self._count("frames_suppressed")
        lost = self._count("frames_lost")
        scheduled = self._count("frames_scheduled")
        delivered = self._count("frames_delivered")
        to_departed = self._count("frames_to_departed")
        if dispatched + duplicated != suppressed + lost + scheduled:
            out.append(_violation(
                self.name, now,
                f"dispatched {dispatched} + duplicated {duplicated} != "
                f"suppressed {suppressed} + lost {lost} + scheduled {scheduled}",
            ))
        in_flight = scheduled - delivered - to_departed
        if in_flight < 0:
            out.append(_violation(
                self.name, now,
                f"negative in-flight count {in_flight} "
                f"(scheduled {scheduled}, delivered {delivered}, "
                f"departed {to_departed})",
            ))
        else:
            pending = self.world.engine.pending_labeled("frame-delivery")
            if in_flight != pending:
                out.append(_violation(
                    self.name, now,
                    f"counter in-flight {in_flight} != {pending} queued "
                    f"frame-delivery events",
                ))
        return out


class StrandedTasks:
    """A crash-frozen execution must be recovered within a grace window.

    A worker crash freezes its executions; lease-based liveness should
    evict the worker and route its tasks through handover within roughly
    ``lease_duration + sweep_interval`` seconds.  An execution still
    frozen past ``grace_s`` is a task silently lost to the submitter —
    the failure mode recovery-disabled configurations exhibit.  Each
    stranded task is reported once.
    """

    name = "stranded-tasks"

    def __init__(self, cloud, grace_s: float = 10.0) -> None:
        self.cloud = cloud
        self.grace_s = grace_s
        self._reported: Set[str] = set()

    def check(self, now: float) -> List[Violation]:
        out: List[Violation] = []
        for task_id, worker, crashed_at in self.cloud.crashed_executions():
            age = now - crashed_at
            if age > self.grace_s and task_id not in self._reported:
                self._reported.add(task_id)
                out.append(_violation(
                    self.name, now,
                    f"task {task_id} frozen on crashed worker {worker} for "
                    f"{age:.1f}s with no recovery (grace {self.grace_s:.1f}s)",
                ))
        return out


class ServingConservation:
    """No serving request leaks out of the gateway without a typed outcome.

    The serving-layer extension of :class:`TaskConservation`: at any
    instant ``offered = admitted + rejected`` and
    ``admitted = completed + failed + shed + queued + in-flight``.  A
    mismatch means a request was double-counted or dropped silently —
    exactly the bug class load shedding, hedging and small-task
    batching can introduce (a shed victim also dispatched, a hedge
    loser finalized twice, a batch member finalized with the wrong
    multiplicity).  In-flight counts *requests*, not cloud dispatches:
    a coalesced batch holds one cloud task but each member stays an
    admitted request until the batch reaches a terminal state.
    """

    name = "serving-conservation"

    def __init__(self, gateway) -> None:
        self.gateway = gateway

    def check(self, now: float) -> List[Violation]:
        acc = self.gateway.accounting()
        out: List[Violation] = []
        if acc["offered"] != acc["admitted"] + acc["rejected"]:
            out.append(_violation(
                self.name, now,
                f"offered {acc['offered']} != admitted {acc['admitted']} "
                f"+ rejected {acc['rejected']}",
            ))
        balance = (
            acc["completed"] + acc["failed"] + acc["shed"]
            + acc["queued"] + acc["inflight"]
        )
        if acc["admitted"] != balance:
            out.append(_violation(
                self.name, now,
                f"admitted {acc['admitted']} != completed {acc['completed']} "
                f"+ failed {acc['failed']} + shed {acc['shed']} "
                f"+ queued {acc['queued']} + in-flight {acc['inflight']}",
            ))
        return out


class DagConservation:
    """No graph or stage replica leaks out of the DAG scheduler.

    The subtask extension of :class:`TaskConservation`: at any instant
    every submitted graph is completed, failed or running (counters
    agreeing with record states), and every stage replica ever handed to
    the cloud is completed, failed or still live — so k-of-n
    replication, first-result-wins cancellation, whole-graph restarts
    and lost-frontier re-execution cannot silently drop or double-count
    a unit of work.
    """

    name = "dag-conservation"

    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    def check(self, now: float) -> List[Violation]:
        acc = self.scheduler.accounting()
        out: List[Violation] = []
        if acc["graphs_submitted"] != acc["graph_records"]:
            out.append(_violation(
                self.name, now,
                f"submitted counter {acc['graphs_submitted']} != ledgered "
                f"graph records {acc['graph_records']}",
            ))
        if acc["graphs_completed"] != acc["records_completed"]:
            out.append(_violation(
                self.name, now,
                f"completed counter {acc['graphs_completed']} != completed "
                f"records {acc['records_completed']} (double completion or "
                f"silent loss)",
            ))
        if acc["graphs_failed"] != acc["records_failed"]:
            out.append(_violation(
                self.name, now,
                f"failed counter {acc['graphs_failed']} != failed records "
                f"{acc['records_failed']}",
            ))
        graph_balance = (
            acc["graphs_completed"] + acc["graphs_failed"] + acc["records_running"]
        )
        if acc["graphs_submitted"] != graph_balance:
            out.append(_violation(
                self.name, now,
                f"graphs submitted {acc['graphs_submitted']} != completed "
                f"{acc['graphs_completed']} + failed {acc['graphs_failed']} "
                f"+ running {acc['records_running']}",
            ))
        replica_balance = (
            acc["replicas_completed"] + acc["replicas_failed"] + acc["replicas_live"]
        )
        if acc["replicas_submitted"] != replica_balance:
            out.append(_violation(
                self.name, now,
                f"replicas submitted {acc['replicas_submitted']} != completed "
                f"{acc['replicas_completed']} + failed {acc['replicas_failed']} "
                f"+ live {acc['replicas_live']}",
            ))
        if acc["replicas_live"] != acc["replica_index"]:
            out.append(_violation(
                self.name, now,
                f"live replicas on stages {acc['replicas_live']} != replica "
                f"index entries {acc['replica_index']}",
            ))
        return out

class TierConservation:
    """No task or speculative replica leaks out of the tiered offloader.

    The cross-tier extension of :class:`TaskConservation`: at any
    instant ``submitted = completed + failed + live`` at the task level,
    ``attempts = won + cancelled + failed + late + live`` at the replica
    level, ``completed == attempts won`` (exactly one winner per
    resolved task), and per task no resolved speculation holds more than
    one uncancelled completion or any loser left neither terminal nor
    cancelled.  A mismatch means first-result-wins across a lossy
    backhaul double-counted a result or dropped a replica silently.
    """

    name = "tier-conservation"

    def __init__(self, offloader) -> None:
        self.offloader = offloader

    def check(self, now: float) -> List[Violation]:
        acc = self.offloader.accounting()
        out: List[Violation] = []
        if acc["submitted"] != acc["completed"] + acc["failed"] + acc["live"]:
            out.append(_violation(
                self.name, now,
                f"tasks submitted {acc['submitted']} != completed "
                f"{acc['completed']} + failed {acc['failed']} + live {acc['live']}",
            ))
        if acc["live"] < 0 or acc["attempts_live"] < 0:
            out.append(_violation(
                self.name, now,
                f"negative live counts (tasks {acc['live']}, "
                f"attempts {acc['attempts_live']})",
            ))
        attempt_balance = (
            acc["attempts_won"] + acc["attempts_cancelled"]
            + acc["attempts_failed"] + acc["attempts_late"] + acc["attempts_live"]
        )
        if acc["attempts_submitted"] != attempt_balance:
            out.append(_violation(
                self.name, now,
                f"attempts submitted {acc['attempts_submitted']} != won "
                f"{acc['attempts_won']} + cancelled {acc['attempts_cancelled']} "
                f"+ failed {acc['attempts_failed']} + late {acc['attempts_late']} "
                f"+ live {acc['attempts_live']}",
            ))
        if acc["completed"] != acc["attempts_won"]:
            out.append(_violation(
                self.name, now,
                f"completed tasks {acc['completed']} != winning attempts "
                f"{acc['attempts_won']} (a task must have exactly one winner)",
            ))
        for entry in self.offloader.speculation_view():
            if entry["winners"] > 1:
                out.append(_violation(
                    self.name, now,
                    f"task {entry['task_id']} has {entry['winners']} uncancelled "
                    f"winners",
                ))
            if entry["resolved"] and entry["outcome"] == "completed" and entry["winners"] == 0:
                out.append(_violation(
                    self.name, now,
                    f"task {entry['task_id']} resolved completed without a winner",
                ))
            if entry["unreconciled"]:
                out.append(_violation(
                    self.name, now,
                    f"task {entry['task_id']} resolved with "
                    f"{entry['unreconciled']} losers neither terminal nor "
                    f"cancelled",
                ))
        return out
