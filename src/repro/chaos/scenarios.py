"""Ready-made chaos scenarios for the three Fig. 4 architectures.

Each builder returns a :class:`~.runner.ChaosScenario`: a fresh world,
a started cloud with a task stream and a storage workload, a full radio
stack (so network faults have something to bite on), and the invariant
set appropriate to the architecture.

``hardened=True`` (the default) enables every recovery mechanism the
framework offers — lease-based liveness, exponential-backoff retries,
majority-quorum replicated storage with anti-entropy repair and hinted
handoff.  ``hardened=False`` builds the deliberately weakened
configuration the chaos acceptance campaign is meant to break: no
leases, no retries, best-effort ``W=R=1`` quorum, no hinted handoff.
The weakened cloud violates :class:`~.invariants.StrandedTasks` (a
crashed worker's tasks are never recovered) and
:class:`~.invariants.QuorumSafety` (stale reads / lost updates under
partitions) — with minimized reproducers of one or two faults.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import (
    BackoffPolicy,
    CheckpointHandoverPolicy,
    DynamicVCloud,
    InfrastructureVCloud,
    QuorumConfig,
    ResourceOffer,
    Task,
    VehicularCloud,
)
from ..faults import ConsistencyChecker
from ..geometry import Vec2
from ..infra import deploy_rsus_on_highway
from ..mobility import Highway, HighwayModel, StationaryModel
from ..net import BeaconService, VehicleNode, WirelessChannel
from ..sim import ScenarioConfig, World
from .invariants import (
    ChannelConservation,
    Invariant,
    LeaseExclusivity,
    MembershipAgreement,
    QuorumSafety,
    SingleHead,
    StrandedTasks,
    TaskConservation,
)

__all__ = [
    "attach_stack",
    "finish_storage",
    "harden_cloud",
    "standard_invariants",
    "storage_workload",
    "task_stream",
    "weaken_cloud",
    "stationary_scenario",
    "dynamic_scenario",
    "infrastructure_scenario",
    "overload_scenario",
    "CHAOS_BACKOFF",
]

CHAOS_BACKOFF = BackoffPolicy(
    base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
)

_FILE_IDS = ("chaos-file-a", "chaos-file-b", "chaos-file-c")


def harden_cloud(cloud: VehicularCloud) -> None:
    """Enable the full recovery stack."""
    cloud.retry_backoff = CHAOS_BACKOFF
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    cloud.enable_replicated_storage(
        quorum=QuorumConfig.majority(3),
        anti_entropy_period_s=5.0,
        anti_entropy_backoff=CHAOS_BACKOFF,
        hinted_handoff=True,
    )


def weaken_cloud(cloud: VehicularCloud) -> None:
    """Strip recovery: no leases, no retries, best-effort quorum."""
    cloud.retry_backoff = None
    cloud.enable_replicated_storage(
        quorum=QuorumConfig(write_quorum=1, read_quorum=1),
        anti_entropy_period_s=None,
        hinted_handoff=False,
    )


def storage_workload(
    world: World, cloud: VehicularCloud, period_s: float = 2.0
) -> None:
    """Seed shared files, then read/write them periodically.

    Storage faults surface as degraded operations (None results), never
    exceptions, so the workload runs to the end of every chaos run.
    """
    rng = world.rng.fork("chaos-workload")
    storage = cloud.storage
    assert storage is not None

    def seed_files() -> None:
        for file_id in _FILE_IDS:
            if cloud.membership.member_ids() and not storage.holders_of(file_id):
                cloud.store_put(file_id, size_bytes=1_000_000, target_replicas=3)

    def churn() -> None:
        members = sorted(cloud.membership.member_ids())
        if not members:
            return
        file_id = rng.choice(_FILE_IDS)
        if not storage.holders_of(file_id):
            return
        if rng.chance(0.5):
            cloud.store_write(file_id, writer=rng.choice(members))
        else:
            cloud.store_read(file_id)

    world.engine.schedule(0.5, seed_files, label="chaos-seed-files")
    world.engine.call_every(period_s, churn, label="chaos-storage-workload")


def task_stream(
    world: World, cloud: VehicularCloud, count: int = 10, work_mi: float = 2500.0
) -> List:
    """Submit ``count`` long tasks early so faults interrupt them."""
    records: List = []
    for index in range(count):
        world.engine.schedule_at(
            1.0 + index * 2.0,
            lambda: records.append(cloud.submit(Task(work_mi=work_mi))),
            label="chaos-task",
        )
    return records


def standard_invariants(
    cloud: VehicularCloud,
    world: World,
    checker: ConsistencyChecker,
    external_heads=(),
    stranded_grace_s: float = 12.0,
) -> List[Invariant]:
    return [
        TaskConservation(cloud),
        LeaseExclusivity(cloud),
        SingleHead(cloud, external_heads=external_heads),
        MembershipAgreement(cloud),
        QuorumSafety(checker),
        ChannelConservation(world),
        StrandedTasks(cloud, grace_s=stranded_grace_s),
    ]


def attach_stack(world: World, vehicles):
    """Channel + node + beacon per vehicle; returns (channel, lookup)."""
    channel = WirelessChannel(world)
    nodes: Dict[str, VehicleNode] = {}
    for vehicle in vehicles:
        node = VehicleNode(world, channel, vehicle)
        BeaconService(world, node).start()
        nodes[vehicle.vehicle_id] = node

    def lookup(node_id: str) -> Optional[object]:
        return nodes.get(node_id)

    return channel, lookup


def finish_storage(cloud: VehicularCloud, hardened: bool) -> ConsistencyChecker:
    if hardened:
        harden_cloud(cloud)
    else:
        weaken_cloud(cloud)
    checker = ConsistencyChecker(metrics=cloud.world.metrics)
    assert cloud.storage is not None
    checker.attach(cloud.storage)
    return checker


def stationary_scenario(seed: int, hardened: bool = True, members: int = 8):
    """A parked-fleet cloud on a controlled stationary grid."""
    from .runner import ChaosScenario

    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    channel, lookup = attach_stack(world, vehicles)
    cloud = VehicularCloud(
        world, "chaos-stationary-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    checker = finish_storage(cloud, hardened)
    task_stream(world, cloud)
    storage_workload(world, cloud)
    return ChaosScenario(
        world=world,
        invariants=standard_invariants(cloud, world, checker),
        cloud=cloud,
        channel=channel,
        node_lookup=lookup,
        label="stationary",
    )


def dynamic_scenario(seed: int, hardened: bool = True, vehicles: int = 12):
    """A self-organized highway cloud with an elected captain."""
    from .runner import ChaosScenario

    world = World(ScenarioConfig(seed=seed, vehicle_count=vehicles))
    highway = Highway(length_m=3000.0)
    model = HighwayModel(world, highway)
    model.populate(vehicles)
    model.start()
    channel, lookup = attach_stack(world, model.vehicles)
    arch = DynamicVCloud(world, model)
    arch.start()
    cloud = arch.cloud
    checker = finish_storage(cloud, hardened)
    task_stream(world, cloud)
    storage_workload(world, cloud)
    # A dynamic cloud re-elects its captain and churns members as
    # vehicles move, so membership-derived tables may lag one refresh
    # interval; give agreement a convergence window and stranded tasks
    # extra grace for handover-in-progress.
    invariants: List[Invariant] = [
        TaskConservation(cloud),
        LeaseExclusivity(cloud),
        SingleHead(cloud),
        MembershipAgreement(cloud, convergence_s=2.0),
        QuorumSafety(checker),
        ChannelConservation(world),
        StrandedTasks(cloud, grace_s=12.0),
    ]
    return ChaosScenario(
        world=world,
        invariants=invariants,
        cloud=cloud,
        channel=channel,
        node_lookup=lookup,
        label="dynamic",
    )


def infrastructure_scenario(seed: int, hardened: bool = True, vehicles: int = 14):
    """An RSU-anchored highway cloud (the RSU is the external head)."""
    from .runner import ChaosScenario

    world = World(ScenarioConfig(seed=seed, vehicle_count=vehicles))
    highway = Highway(length_m=3000.0)
    model = HighwayModel(world, highway)
    model.populate(vehicles)
    model.start()
    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500.0)
    nodes: Dict[str, VehicleNode] = {}
    for vehicle in model.vehicles:
        node = VehicleNode(world, channel, vehicle)
        BeaconService(world, node).start()
        nodes[vehicle.vehicle_id] = node

    def lookup(node_id: str) -> Optional[object]:
        return nodes.get(node_id)

    arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    cloud = arch.cloud
    checker = finish_storage(cloud, hardened)
    task_stream(world, cloud)
    storage_workload(world, cloud)
    invariants: List[Invariant] = [
        TaskConservation(cloud),
        LeaseExclusivity(cloud),
        SingleHead(cloud, external_heads=(rsus[0].node_id,)),
        MembershipAgreement(cloud, convergence_s=2.0),
        QuorumSafety(checker),
        ChannelConservation(world),
        StrandedTasks(cloud, grace_s=12.0),
    ]
    return ChaosScenario(
        world=world,
        invariants=invariants,
        cloud=cloud,
        channel=channel,
        infrastructure=rsus,
        node_lookup=lookup,
        label="infrastructure",
    )


def overload_scenario(seed: int, hardened: bool = True, members: int = 8):
    """A stationary cloud behind a protected serving gateway, overloaded.

    Open-loop traffic at roughly twice the fleet's compute capacity
    pushes the gateway into sustained admission rejection and load
    shedding *while* the chaos campaign injects faults — the regime in
    which request-accounting bugs (a shed victim also dispatched, a
    hedge loser finalized twice) would surface.
    :class:`~.invariants.ServingConservation` holds the gateway to its
    conservation law throughout.
    """
    from ..serve import (
        CircuitBreakerBoard,
        CompositeAdmission,
        DeadlineFeasibilityAdmission,
        DeadlineLapseShedder,
        HedgePolicy,
        PoissonArrivals,
        QueueDelayShedder,
        ServiceGateway,
        TenantFairShareAdmission,
        TenantSpec,
        WorkloadGenerator,
    )
    from .invariants import ServingConservation
    from .runner import ChaosScenario

    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    channel, lookup = attach_stack(world, vehicles)
    cloud = VehicularCloud(
        world, "chaos-overload-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    checker = finish_storage(cloud, hardened)
    gateway = ServiceGateway(
        world,
        cloud,
        name="chaos-overload",
        queue_capacity=32,
        admission=CompositeAdmission([
            DeadlineFeasibilityAdmission(),
            TenantFairShareAdmission(share=0.7),
        ]),
        shedders=[DeadlineLapseShedder(), QueueDelayShedder(max_delay_s=4.0)],
        breakers=CircuitBreakerBoard(world, "chaos-overload"),
        hedging=HedgePolicy(),
    )
    # ~2x the fleet's compute capacity: (members-1) workers x 100 MIPS
    # against 200 MI tasks is (members-1)/2 tasks/s sustainable.
    overload_rate = float(members - 1)
    tenants = [
        TenantSpec(
            name="bulk",
            arrivals=PoissonArrivals(overload_rate * 0.7),
            work_mi_range=(150.0, 250.0),
            deadline_s=8.0,
            priority=2,
        ),
        TenantSpec(
            name="interactive",
            arrivals=PoissonArrivals(overload_rate * 0.3),
            work_mi_range=(100.0, 200.0),
            deadline_s=6.0,
            priority=1,
        ),
    ]
    WorkloadGenerator(world, gateway, tenants, horizon_s=600.0).start()
    storage_workload(world, cloud)
    invariants = standard_invariants(cloud, world, checker)
    invariants.append(ServingConservation(gateway))
    return ChaosScenario(
        world=world,
        invariants=invariants,
        cloud=cloud,
        channel=channel,
        node_lookup=lookup,
        label="overload",
    )
