"""Chaos harness: randomized fault campaigns with invariant checking.

The paper's dependability section (§V.A) demands that a vehicular cloud
"operate normally even under attacks or failures of sub-components".
Hand-written fault schedules (experiment E11) probe *chosen* failure
modes; this package probes *unchosen* ones:

* :mod:`.generator` samples seeded, randomized fault campaigns from a
  weighted grammar over every fault family, scaled to world size and
  run length;
* :mod:`.invariants` defines cross-subsystem safety invariants (task
  conservation, lease exclusivity, single-head, quorum safety,
  membership agreement, channel conservation, stranded tasks, DAG
  conservation) checked continuously while faults fire;
* :mod:`.runner` executes campaigns and, on violation, captures a
  reproducer bundle and delta-debugs (:mod:`.minimize`) the fault
  schedule down to a minimal failing subset that replays
  deterministically from the recorded seed;
* :mod:`.scenarios` provides hardened and deliberately weakened builds
  of the three Fig. 4 architectures for campaigns to chew on.

Quick start::

    from repro.chaos import ChaosRunner, stationary_scenario

    runner = ChaosRunner(stationary_scenario, run_length_s=60.0)
    campaign = runner.run_campaign(range(20))
    if campaign.failing_seeds:
        bundle = runner.capture_reproducer(campaign.failing_seeds[0])
        print(bundle.describe())
"""

from .bundle import ReproducerBundle
from .generator import (
    DEFAULT_WEIGHTS,
    ChaosProfile,
    ChaosTargets,
    campaign_size,
    generate_plan,
)
from .invariants import (
    ChannelConservation,
    ClusterExclusivity,
    DagConservation,
    Invariant,
    InvariantSuite,
    LeaseExclusivity,
    MembershipAgreement,
    QuorumSafety,
    ServingConservation,
    SingleHead,
    StrandedTasks,
    TaskConservation,
    TierConservation,
    Violation,
)
from .minimize import ddmin
from .runner import (
    CampaignResult,
    ChaosRunner,
    ChaosScenario,
    RunResult,
    ScenarioFactory,
)
from .scenarios import (
    CHAOS_BACKOFF,
    dynamic_scenario,
    infrastructure_scenario,
    overload_scenario,
    stationary_scenario,
)

__all__ = [
    "CampaignResult",
    "CHAOS_BACKOFF",
    "ChannelConservation",
    "ChaosProfile",
    "ChaosRunner",
    "ChaosScenario",
    "ChaosTargets",
    "ClusterExclusivity",
    "DagConservation",
    "DEFAULT_WEIGHTS",
    "Invariant",
    "InvariantSuite",
    "LeaseExclusivity",
    "MembershipAgreement",
    "QuorumSafety",
    "ReproducerBundle",
    "RunResult",
    "ScenarioFactory",
    "ServingConservation",
    "SingleHead",
    "StrandedTasks",
    "TaskConservation",
    "TierConservation",
    "Violation",
    "campaign_size",
    "ddmin",
    "dynamic_scenario",
    "generate_plan",
    "infrastructure_scenario",
    "overload_scenario",
    "stationary_scenario",
]
