"""Randomized, seeded fault-campaign generation.

A :class:`ChaosProfile` is a weighted grammar over every fault kind the
framework knows (:data:`~repro.faults.plan.ALL_FAULT_KINDS`);
:func:`generate_plan` samples it into an ordinary
:class:`~repro.faults.plan.FaultPlan`, scaled to the world size
(member count) and the run length.  Every draw flows through the plan's
own :class:`~repro.sim.rng.SeededRng`, so one ``(seed, profile,
run length, targets)`` tuple always yields a byte-identical schedule —
the property the chaos runner's reproducer capture and delta-debugging
replay depend on.

Fault times are quantized to a 0.1 s grid.  That makes generated
schedules readable and deliberately produces identical-timestamp specs,
exercising the :class:`FaultPlan` tie-break contract (insertion order)
instead of hiding it behind continuous draws.

Families whose targets are absent from the scenario (no members, no
channel, no infrastructure) are *dropped from the grammar* — an explicit,
documented no-op per kind — and a grammar left empty after dropping
raises :class:`~repro.errors.ConfigurationError`, so a zero-vehicle
world cannot silently generate an empty campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..errors import ConfigurationError
from ..faults.plan import (
    ALL_FAULT_KINDS,
    NETWORK_FAULTS,
    PROCESS_FAULTS,
    FaultPlan,
)

#: Default kind weights: crashes and partitions dominate (they are the
#: faults the paper's dependability section worries about most), the
#: rest provide background noise.
DEFAULT_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("crash", 3.0),
    ("stall", 2.0),
    ("reboot", 2.0),
    ("loss_burst", 2.0),
    ("partition", 3.0),
    ("jitter_spike", 1.0),
    ("duplication", 1.0),
    ("rsu_flap", 2.0),
    ("disaster", 1.0),
)

#: Reference member count at which the campaign intensity scale is 1.0.
_REFERENCE_MEMBERS = 12


def _grid(value: float) -> float:
    """Quantize to the 0.1 s schedule grid."""
    return round(value, 1)


@dataclass(frozen=True)
class ChaosTargets:
    """What the scenario under test offers each fault family to bite on."""

    members: int = 0
    has_channel: bool = False
    infrastructure: int = 0

    def __post_init__(self) -> None:
        if self.members < 0 or self.infrastructure < 0:
            raise ConfigurationError("target counts must be non-negative")

    def accepts(self, kind: str) -> bool:
        """Whether this scenario can host a fault of ``kind``."""
        if kind in PROCESS_FAULTS:
            return self.members > 0
        if kind in NETWORK_FAULTS:
            return self.has_channel
        return self.infrastructure > 0


@dataclass(frozen=True)
class ChaosProfile:
    """Weighted fault grammar plus parameter ranges for each kind."""

    weights: Tuple[Tuple[str, float], ...] = DEFAULT_WEIGHTS
    #: Mean sim-seconds between faults at the reference world size.
    mean_interval_s: float = 6.0
    #: No faults before this point — the scenario settles first.
    warmup_s: float = 5.0
    #: Fraction of the run tail kept fault-free so effects can surface.
    cooldown_fraction: float = 0.15
    min_faults: int = 1
    max_faults: int = 48
    stall_s: Tuple[float, float] = (2.0, 8.0)
    reboot_downtime_s: Tuple[float, float] = (2.0, 8.0)
    burst_s: Tuple[float, float] = (2.0, 10.0)
    drop_probability: Tuple[float, float] = (0.4, 0.9)
    partition_s: Tuple[float, float] = (4.0, 12.0)
    partition_fraction: Tuple[float, float] = (0.25, 0.5)
    jitter_s: Tuple[float, float] = (2.0, 8.0)
    max_extra_delay_s: Tuple[float, float] = (0.05, 0.4)
    duplication_s: Tuple[float, float] = (2.0, 8.0)
    duplication_probability: Tuple[float, float] = (0.2, 0.8)
    copies: Tuple[int, int] = (1, 2)
    rsu_cycles: Tuple[int, int] = (1, 3)
    rsu_down_s: Tuple[float, float] = (2.0, 6.0)
    rsu_up_s: Tuple[float, float] = (2.0, 6.0)
    disaster_fraction: Tuple[float, float] = (0.25, 0.75)
    disaster_repair_s: Tuple[float, float] = (4.0, 10.0)

    def __post_init__(self) -> None:
        if self.mean_interval_s <= 0:
            raise ConfigurationError("mean_interval_s must be positive")
        if self.warmup_s < 0:
            raise ConfigurationError("warmup_s must be non-negative")
        if not 0.0 <= self.cooldown_fraction < 1.0:
            raise ConfigurationError("cooldown_fraction must be in [0, 1)")
        if not 0 <= self.min_faults <= self.max_faults:
            raise ConfigurationError("need 0 <= min_faults <= max_faults")
        if not self.weights:
            raise ConfigurationError("profile needs at least one weighted kind")
        for kind, weight in self.weights:
            if kind not in ALL_FAULT_KINDS:
                raise ConfigurationError(f"unknown fault kind in weights: {kind!r}")
            if weight < 0:
                raise ConfigurationError(f"negative weight for {kind!r}")

    def only(self, *kinds: str) -> "ChaosProfile":
        """A copy keeping only the named kinds."""
        kept = tuple((k, w) for k, w in self.weights if k in kinds)
        return replace(self, weights=kept)

    def without(self, *kinds: str) -> "ChaosProfile":
        """A copy with the named kinds removed from the grammar."""
        kept = tuple((k, w) for k, w in self.weights if k not in kinds)
        return replace(self, weights=kept)

    def applicable_weights(
        self, targets: ChaosTargets
    ) -> Tuple[List[str], List[float]]:
        """Kinds/weights this scenario can host (positive weight only)."""
        kinds: List[str] = []
        weights: List[float] = []
        for kind, weight in self.weights:
            if weight > 0 and targets.accepts(kind):
                kinds.append(kind)
                weights.append(weight)
        return kinds, weights


def campaign_size(
    profile: ChaosProfile, run_length_s: float, members: int
) -> int:
    """Fault count for one run, scaled to run length and world size."""
    horizon = run_length_s * (1.0 - profile.cooldown_fraction)
    active_s = max(0.0, horizon - profile.warmup_s)
    scale = max(0.5, min(2.0, members / _REFERENCE_MEMBERS)) if members else 1.0
    raw = round(active_s / profile.mean_interval_s * scale)
    return max(profile.min_faults, min(profile.max_faults, raw))


def generate_plan(
    seed: int,
    run_length_s: float,
    targets: ChaosTargets,
    profile: ChaosProfile = ChaosProfile(),
) -> FaultPlan:
    """Sample one seeded campaign into a :class:`FaultPlan`.

    Raises :class:`~repro.errors.ConfigurationError` when the run is too
    short to fit any fault after warmup/cooldown, or when no weighted
    kind has a target in this scenario (e.g. a zero-vehicle world with a
    process-only grammar).
    """
    horizon = _grid(run_length_s * (1.0 - profile.cooldown_fraction))
    if horizon <= profile.warmup_s:
        raise ConfigurationError(
            f"run of {run_length_s}s leaves no fault window after "
            f"{profile.warmup_s}s warmup and {profile.cooldown_fraction:.0%} cooldown"
        )
    kinds, weights = profile.applicable_weights(targets)
    if not kinds:
        raise ConfigurationError(
            "no weighted fault kind has a target in this scenario "
            f"(members={targets.members}, channel={targets.has_channel}, "
            f"infrastructure={targets.infrastructure})"
        )
    count = campaign_size(profile, run_length_s, targets.members)
    plan = FaultPlan(seed)
    rng = plan.rng
    for _ in range(count):
        kind = rng.weighted_choice(kinds, weights)
        at = _grid(rng.uniform(profile.warmup_s, horizon))
        if kind == "crash":
            plan.crash(at)
        elif kind == "stall":
            plan.stall(at, duration_s=_grid(rng.uniform(*profile.stall_s)))
        elif kind == "reboot":
            plan.reboot(at, downtime_s=_grid(rng.uniform(*profile.reboot_downtime_s)))
        elif kind == "loss_burst":
            plan.loss_burst(
                at,
                duration_s=_grid(rng.uniform(*profile.burst_s)),
                drop_probability=round(rng.uniform(*profile.drop_probability), 3),
            )
        elif kind == "partition":
            plan.partition(
                at,
                duration_s=_grid(rng.uniform(*profile.partition_s)),
                fraction=round(rng.uniform(*profile.partition_fraction), 3),
            )
        elif kind == "jitter_spike":
            plan.jitter_spike(
                at,
                duration_s=_grid(rng.uniform(*profile.jitter_s)),
                max_extra_delay_s=round(rng.uniform(*profile.max_extra_delay_s), 3),
            )
        elif kind == "duplication":
            plan.duplication(
                at,
                duration_s=_grid(rng.uniform(*profile.duplication_s)),
                probability=round(rng.uniform(*profile.duplication_probability), 3),
                copies=rng.randint(*profile.copies),
            )
        elif kind == "rsu_flap":
            plan.rsu_flap(
                at,
                cycles=rng.randint(*profile.rsu_cycles),
                down_s=_grid(rng.uniform(*profile.rsu_down_s)),
                up_s=_grid(rng.uniform(*profile.rsu_up_s)),
            )
        else:  # disaster
            plan.disaster(
                at,
                fraction=round(rng.uniform(*profile.disaster_fraction), 3),
                repair_start_s=_grid(rng.uniform(*profile.disaster_repair_s)),
                repair_interval_s=1.0,
            )
    return plan
