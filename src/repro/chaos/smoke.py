"""CI chaos smoke: fixed seeds, bounded runtime, fails loud.

Run as ``python -m repro.chaos.smoke``.  Two phases:

1. **Hardened must hold** — a fixed-seed campaign per architecture with
   the full recovery stack; any invariant violation fails the build and
   prints the ddmin-minimized reproducer bundle.
2. **Weakened must break** — a short campaign against the
   recovery-stripped stationary cloud; at least one seed must violate
   (otherwise the harness has lost its teeth) and its reproducer must
   minimize to a handful of faults and replay deterministically.

Seeds and run lengths are pinned so the job is deterministic and stays
within a couple of minutes.
"""

from __future__ import annotations

import sys

from .runner import ChaosRunner
from .scenarios import (
    dynamic_scenario,
    infrastructure_scenario,
    stationary_scenario,
)

HARDENED_SEEDS = range(101, 107)
WEAKENED_SEEDS = range(7001, 7011)
RUN_LENGTH_S = 45.0
MAX_MINIMIZED_SPECS = 3


def main() -> int:
    failures = 0

    print("== phase 1: hardened architectures must satisfy every invariant ==")
    for factory in (stationary_scenario, dynamic_scenario, infrastructure_scenario):
        runner = ChaosRunner(factory, run_length_s=RUN_LENGTH_S)
        campaign = runner.run_campaign(HARDENED_SEEDS)
        print(f"  {campaign.describe()}")
        for seed in campaign.failing_seeds:
            failures += 1
            print(f"!! {campaign.label} seed {seed} violated an invariant; reproducer:")
            print(runner.capture_reproducer(seed).describe())

    print("== phase 2: weakened configuration must break, minimally ==")
    weak = ChaosRunner(
        lambda seed: stationary_scenario(seed, hardened=False),
        run_length_s=RUN_LENGTH_S,
    )
    campaign = weak.run_campaign(WEAKENED_SEEDS)
    print(f"  {campaign.describe()}")
    if not campaign.failing_seeds:
        failures += 1
        print("!! weakened campaign found no violations — harness has lost its teeth")
    else:
        seed = campaign.failing_seeds[0]
        bundle = weak.capture_reproducer(seed)
        print(bundle.describe())
        if len(bundle.minimized_specs) > MAX_MINIMIZED_SPECS:
            failures += 1
            print(
                f"!! reproducer did not minimize: {len(bundle.minimized_specs)} "
                f"specs > {MAX_MINIMIZED_SPECS}"
            )
        replay = weak.run_seed(seed, only_indices=list(bundle.minimized_indices))
        if not any(v.invariant == bundle.invariant for v in replay.violations):
            failures += 1
            print("!! minimized reproducer did not replay deterministically")
        else:
            print("  minimized reproducer replayed deterministically")

    if failures:
        print(f"CHAOS SMOKE FAILED ({failures} problem(s))")
        return 1
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
