"""Security stack: crypto, identities, PKI, authentication, access control."""

from .batch import BatchItem, BatchVerifier, PrecomputedSigner
from .crypto import (
    CryptoCostModel,
    CryptoOp,
    DEFAULT_COSTS,
    GroupSignature,
    GroupSignatureScheme,
    HmacScheme,
    KeyPair,
    Signature,
    SignatureScheme,
    serialize_for_signing,
    sha256_hex,
)
from .identity import (
    Certificate,
    Pseudonym,
    PseudonymPool,
    RealIdentity,
    RotatingIdentity,
    StaticIdentity,
)
from .pki import Enrollment, TrustedAuthority
from .revocation import BloomRevocationFilter, RevocationList
from .secret_sharing import (
    DistributedSecretStore,
    SecretShare,
    reconstruct_secret,
    split_secret,
)
from .tokens import ServiceAccessToken, TokenService

__all__ = [
    "DistributedSecretStore",
    "SecretShare",
    "reconstruct_secret",
    "split_secret",
    "BatchItem",
    "BatchVerifier",
    "PrecomputedSigner",
    "BloomRevocationFilter",
    "Certificate",
    "CryptoCostModel",
    "CryptoOp",
    "DEFAULT_COSTS",
    "Enrollment",
    "GroupSignature",
    "GroupSignatureScheme",
    "HmacScheme",
    "KeyPair",
    "Pseudonym",
    "PseudonymPool",
    "RealIdentity",
    "RevocationList",
    "RotatingIdentity",
    "ServiceAccessToken",
    "Signature",
    "SignatureScheme",
    "StaticIdentity",
    "TokenService",
    "TrustedAuthority",
    "serialize_for_signing",
    "sha256_hex",
]
