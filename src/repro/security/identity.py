"""Identities, certificates and pseudonyms.

The split the paper insists on: a vehicle has one *real identity* known
to the trusted authority, and puts *pseudonyms* on the air.  Privacy is
preserved to the degree that on-air identities cannot be linked back to
the real identity — the tracking adversary of experiment E3 measures
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SecurityError
from .crypto import KeyPair, Signature


@dataclass(frozen=True)
class RealIdentity:
    """A vehicle's registered legal identity (license/VIN-level)."""

    real_id: str
    owner: str = ""


@dataclass(frozen=True)
class Certificate:
    """A credential binding a subject id to a public key, signed by the TA."""

    subject_id: str
    public_id: str
    issued_at: float
    expires_at: float
    issuer_id: str
    signature: Optional[Signature] = None

    def is_expired(self, now: float) -> bool:
        """Return True once past the expiry time."""
        return now > self.expires_at


@dataclass(frozen=True)
class Pseudonym:
    """One disposable on-air identity with its keypair and certificate."""

    pseudonym_id: str
    keypair: KeyPair
    certificate: Certificate


@dataclass
class PseudonymPool:
    """The pre-loaded pool of pseudonyms a vehicle rotates through."""

    pseudonyms: List[Pseudonym] = field(default_factory=list)
    used: int = 0

    @property
    def remaining(self) -> int:
        """Pseudonyms not yet consumed."""
        return len(self.pseudonyms) - self.used

    def current(self) -> Pseudonym:
        """Return the pseudonym currently in use."""
        if not self.pseudonyms:
            raise SecurityError("pseudonym pool is empty")
        return self.pseudonyms[min(self.used, len(self.pseudonyms) - 1)]

    def rotate(self) -> Pseudonym:
        """Advance to the next pseudonym; returns the new current one.

        Raises once the pool is exhausted — the caller must refill from
        the TA (an infrastructure interaction the experiments count).
        """
        if self.used + 1 >= len(self.pseudonyms):
            raise SecurityError("pseudonym pool exhausted; refill required")
        self.used += 1
        return self.current()

    def refill(self, fresh: List[Pseudonym]) -> None:
        """Append fresh pseudonyms from the TA."""
        self.pseudonyms.extend(fresh)


class RotatingIdentity:
    """Identity provider that changes pseudonym on a fixed interval.

    Plugs into :class:`repro.net.beacon.BeaconService` so the on-air
    source id changes every ``change_interval_s`` — the standard defence
    against trajectory linking.
    """

    def __init__(self, pool: PseudonymPool, change_interval_s: float) -> None:
        if change_interval_s <= 0:
            raise SecurityError("change_interval_s must be positive")
        self.pool = pool
        self.change_interval_s = change_interval_s
        self._last_rotation = 0.0
        self.rotations = 0
        self.exhausted = False

    def current_identity(self, now: float) -> str:
        """Return the pseudonym id to put on the air at time ``now``."""
        if now - self._last_rotation >= self.change_interval_s:
            try:
                self.pool.rotate()
                self.rotations += 1
            except SecurityError:
                self.exhausted = True
            self._last_rotation = now
        return self.pool.current().pseudonym_id


class StaticIdentity:
    """Identity provider that never changes (the no-privacy baseline)."""

    def __init__(self, identity: str) -> None:
        self.identity = identity

    def current_identity(self, now: float) -> str:
        """Always return the same id."""
        return self.identity
