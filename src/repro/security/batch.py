"""Batch and real-time signature verification (§IV.D).

Two techniques the survey highlights for meeting stringent time
constraints:

* **Batch verification** (Limbasiya & Das [21]): verifying *n*
  signatures together costs far less than *n* independent verifies —
  modelled as ``base + per_item * n`` with ``per_item`` a fraction of a
  full verify.  A failed batch falls back to bisection to locate the bad
  signatures (the standard technique), and the cost model charges it.
* **Structure-free compact real-time authentication** (SCRA, Yavuz et
  al. [44]): "shifting the expensive operations of signature generation
  phase to the key generation phase" — a signer precomputes a pool of
  signature tokens offline; online signing is one table lookup plus a
  hash, orders of magnitude cheaper than ECDSA signing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import CryptoError
from .crypto import (
    CryptoCostModel,
    CryptoOp,
    DEFAULT_COSTS,
    KeyPair,
    Signature,
    SignatureScheme,
    sha256_hex,
)


@dataclass(frozen=True)
class BatchItem:
    """One (public key, message, signature) triple in a batch."""

    public_id: str
    data: bytes
    signature: Signature


class BatchVerifier:
    """Aggregate signature verification with bisection fallback."""

    def __init__(
        self,
        scheme: SignatureScheme = None,
        costs: CryptoCostModel = DEFAULT_COSTS,
        batch_base_s: float = 0.0012,
        per_item_fraction: float = 0.12,
    ) -> None:
        if not 0.0 < per_item_fraction <= 1.0:
            raise CryptoError("per_item_fraction must be in (0, 1]")
        self.scheme = scheme if scheme is not None else SignatureScheme(costs)
        self.costs = costs
        self.batch_base_s = batch_base_s
        self.per_item_fraction = per_item_fraction

    def _batch_cost(self, count: int) -> float:
        return self.batch_base_s + self.per_item_fraction * self.costs.ecdsa_verify_s * count

    def _all_valid(self, items: Sequence[BatchItem]) -> bool:
        # The aggregate check itself: valid iff every member verifies.
        # (Simulated faithfully — a single bad signature poisons the batch.)
        return all(
            self.scheme.verify(item.public_id, item.data, item.signature).value
            for item in items
        )

    def verify_batch(self, items: Sequence[BatchItem]) -> CryptoOp[bool]:
        """One aggregate check over the whole batch; True iff all valid."""
        if not items:
            raise CryptoError("cannot verify an empty batch")
        return CryptoOp(self._all_valid(items), self._batch_cost(len(items)))

    def verify_and_isolate(
        self, items: Sequence[BatchItem]
    ) -> Tuple[List[int], float]:
        """Verify, bisecting failed batches to find the bad indices.

        Returns ``(bad_indices, total_cost_s)``.  A clean batch costs one
        aggregate check; each level of bisection adds two sub-checks.
        """
        if not items:
            raise CryptoError("cannot verify an empty batch")
        total_cost = 0.0
        bad: List[int] = []

        def recurse(start: int, chunk: Sequence[BatchItem]) -> None:
            nonlocal total_cost
            total_cost += self._batch_cost(len(chunk))
            if self._all_valid(chunk):
                return
            if len(chunk) == 1:
                bad.append(start)
                return
            mid = len(chunk) // 2
            recurse(start, chunk[:mid])
            recurse(start + mid, chunk[mid:])

        recurse(0, list(items))
        return sorted(bad), total_cost

    def sequential_cost(self, count: int) -> float:
        """Cost of verifying the same batch one by one (the baseline)."""
        return self.costs.ecdsa_verify_s * count


class PrecomputedSigner:
    """SCRA-style signer: expensive precompute, near-free online signing.

    ``precompute`` mints a pool of one-time signing tokens at full ECDSA
    cost each (done while parked / idle); ``sign`` consumes one token at
    hash cost.  Verifiers use the ordinary scheme — the signature format
    is unchanged, only *when* the work happens moves.
    """

    def __init__(
        self,
        keypair: KeyPair,
        scheme: SignatureScheme = None,
        costs: CryptoCostModel = DEFAULT_COSTS,
        online_sign_s: float = 2.5e-5,
    ) -> None:
        self.keypair = keypair
        self.scheme = scheme if scheme is not None else SignatureScheme(costs)
        self.costs = costs
        self.online_sign_s = online_sign_s
        self._tokens: List[str] = []
        self.precompute_cost_s = 0.0

    @property
    def tokens_remaining(self) -> int:
        """Unused precomputed tokens."""
        return len(self._tokens)

    def precompute(self, count: int) -> CryptoOp[int]:
        """Mint ``count`` one-time tokens (offline phase)."""
        if count < 1:
            raise CryptoError("must precompute at least one token")
        for index in range(count):
            token = sha256_hex(
                f"{self.keypair.private_token}:tok:{len(self._tokens)}:{index}".encode()
            )
            self._tokens.append(token)
        cost = self.costs.ecdsa_sign_s * count
        self.precompute_cost_s += cost
        return CryptoOp(count, cost)

    def sign(self, data: bytes) -> CryptoOp[Signature]:
        """Online signing: consume one token, pay hash-class cost only.

        Raises when the pool is dry — the caller must precompute during
        idle time, exactly the operational discipline SCRA requires.
        """
        if not self._tokens:
            raise CryptoError("precomputed token pool exhausted")
        self._tokens.pop()
        # The produced signature is byte-compatible with the scheme's, so
        # any verifier accepts it; only the signer-side cost differs.
        signature = self.scheme.sign(self.keypair, data).value
        return CryptoOp(signature, self.online_sign_s, self.costs.signature_bytes)
