"""Certificate revocation lists.

The survey calls out CRL checking as the pseudonym approach's soft
underbelly: "the checking process of the similarly huge pool of revoked
certificates is time-consuming" (§IV.B.1).  The cost model here makes
that concrete: a naive list check costs time linear in the CRL size,
while the bloom-filter variant models the constant-time optimization
modern designs use (at a configurable false-positive rate).
"""

from __future__ import annotations

from typing import Set

from ..errors import ConfigurationError
from .crypto import CryptoOp, sha256_hex


class RevocationList:
    """A TA-published list of revoked credential ids."""

    def __init__(self, check_cost_per_entry_s: float = 2e-6) -> None:
        if check_cost_per_entry_s < 0:
            raise ConfigurationError("check_cost_per_entry_s must be non-negative")
        self.check_cost_per_entry_s = check_cost_per_entry_s
        self._revoked: Set[str] = set()

    def __len__(self) -> int:
        return len(self._revoked)

    def revoke(self, credential_id: str) -> None:
        """Add a credential to the list."""
        self._revoked.add(credential_id)

    def reinstate(self, credential_id: str) -> None:
        """Remove a credential from the list."""
        self._revoked.discard(credential_id)

    def is_revoked(self, credential_id: str) -> bool:
        """Membership test without cost accounting (for assertions)."""
        return credential_id in self._revoked

    def check(self, credential_id: str) -> CryptoOp[bool]:
        """Linear-scan check: cost grows with the CRL size.

        This is the survey's "time-consuming" baseline.
        """
        cost = self.check_cost_per_entry_s * max(1, len(self._revoked))
        return CryptoOp(credential_id in self._revoked, cost)

    def bulk_revoke(self, credential_ids: Set[str]) -> None:
        """Revoke many credentials at once."""
        self._revoked.update(credential_ids)


class BloomRevocationFilter:
    """Constant-time revocation pre-filter with false positives.

    A compact digest of the CRL distributed to vehicles: membership
    checks are O(1); a hit must be confirmed against the full list (an
    infrastructure round trip), a miss is authoritative.
    """

    def __init__(
        self,
        bits: int = 4096,
        hashes: int = 3,
        check_cost_s: float = 5e-6,
    ) -> None:
        if bits <= 0 or hashes <= 0:
            raise ConfigurationError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self.check_cost_s = check_cost_s
        self._bitset = 0
        self.entries = 0

    def _positions(self, credential_id: str) -> list:
        return [
            int(sha256_hex(f"{i}:{credential_id}".encode())[:12], 16) % self.bits
            for i in range(self.hashes)
        ]

    def add(self, credential_id: str) -> None:
        """Insert a revoked credential into the filter."""
        for position in self._positions(credential_id):
            self._bitset |= 1 << position
        self.entries += 1

    def rebuild(self, revocation_list: RevocationList) -> None:
        """Rebuild the filter from a full CRL."""
        self._bitset = 0
        self.entries = 0
        for credential_id in revocation_list._revoked:
            self.add(credential_id)

    def might_be_revoked(self, credential_id: str) -> CryptoOp[bool]:
        """Constant-time possible-membership test."""
        hit = all(
            self._bitset & (1 << position) for position in self._positions(credential_id)
        )
        return CryptoOp(hit, self.check_cost_s)

    @property
    def saturation(self) -> float:
        """Fraction of bits set (false-positive pressure indicator)."""
        return bin(self._bitset).count("1") / self.bits
