"""Service access tokens for v-cloud services (after Park et al. [29]).

A pseudonymous *service access token* lets "only legitimate vehicles ...
connect to cloud services through RSUs while protecting the privacy of
vehicles": the TA signs (pseudonym, service, expiry) without the service
ever learning the real identity.  Tokens are bearer credentials, so
verification also consults the revocation list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..errors import SecurityError
from .crypto import CryptoOp, Signature, serialize_for_signing
from .pki import TrustedAuthority

_token_counter = itertools.count(1)


@dataclass(frozen=True)
class ServiceAccessToken:
    """A TA-signed bearer token binding a pseudonym to a service."""

    token_id: str
    pseudonym_id: str
    service: str
    issued_at: float
    expires_at: float
    signature: Signature

    def is_expired(self, now: float) -> bool:
        """Return True once past expiry."""
        return now > self.expires_at


class TokenService:
    """Issues and verifies service access tokens on behalf of the TA."""

    DEFAULT_LIFETIME_S = 600.0

    def __init__(self, authority: TrustedAuthority) -> None:
        self.authority = authority
        self.issued = 0

    def issue(
        self,
        pseudonym_id: str,
        service: str,
        now: float,
        lifetime_s: Optional[float] = None,
    ) -> ServiceAccessToken:
        """Issue a token for a pseudonym the TA recognizes.

        Raises :class:`SecurityError` for pseudonyms the TA never minted
        (an impersonator cannot obtain tokens).
        """
        if self.authority.reveal(pseudonym_id) is None:
            raise SecurityError(f"unknown pseudonym: {pseudonym_id!r}")
        lifetime = lifetime_s if lifetime_s is not None else self.DEFAULT_LIFETIME_S
        token_id = f"tok-{next(_token_counter)}"
        expires = now + lifetime
        payload = serialize_for_signing(token_id, pseudonym_id, service, now, expires)
        signature = self.authority.signatures.sign(self.authority.keypair, payload).value
        self.issued += 1
        return ServiceAccessToken(
            token_id=token_id,
            pseudonym_id=pseudonym_id,
            service=service,
            issued_at=now,
            expires_at=expires,
            signature=signature,
        )

    def verify(
        self, token: ServiceAccessToken, service: str, now: float
    ) -> CryptoOp[bool]:
        """Verify a presented token for a specific service."""
        if token.is_expired(now) or token.service != service:
            return CryptoOp(False, self.authority.costs.ecdsa_verify_s)
        payload = serialize_for_signing(
            token.token_id,
            token.pseudonym_id,
            token.service,
            token.issued_at,
            token.expires_at,
        )
        sig_op = self.authority.signatures.verify(
            self.authority.keypair.public_id, payload, token.signature
        )
        crl_op = self.authority.crl.check(token.pseudonym_id)
        return CryptoOp(sig_op.value and not crl_op.value, sig_op.cost_s + crl_op.cost_s)
