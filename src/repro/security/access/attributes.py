"""Attribute sets for attribute-based access control.

Vehicles hold attributes ("role=head", "sensors=lidar", "region=east")
issued by authorities; policies and ABE ciphertexts reference them.  An
:class:`AttributeSet` is immutable so a credential cannot be quietly
edited after issuance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ...errors import AuthorizationError


class AttributeSet:
    """An immutable mapping of attribute name to value."""

    def __init__(self, attributes: Optional[Mapping[str, object]] = None) -> None:
        self._attributes: Dict[str, object] = dict(attributes or {})

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(self._attributes.items())

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSet):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attributes.items()))
        return f"AttributeSet({inner})"

    def get(self, name: str, default: object = None) -> object:
        """Return an attribute value or ``default``."""
        return self._attributes.get(name, default)

    def require(self, name: str) -> object:
        """Return an attribute value, raising if absent."""
        if name not in self._attributes:
            raise AuthorizationError(f"missing required attribute: {name!r}")
        return self._attributes[name]

    def names(self) -> Iterable[str]:
        """Return the attribute names."""
        return self._attributes.keys()

    def with_attribute(self, name: str, value: object) -> "AttributeSet":
        """Return a copy with one attribute added/overridden."""
        merged = dict(self._attributes)
        merged[name] = value
        return AttributeSet(merged)

    def without_attribute(self, name: str) -> "AttributeSet":
        """Return a copy with one attribute removed."""
        remaining = {k: v for k, v in self._attributes.items() if k != name}
        return AttributeSet(remaining)

    def satisfies(self, required: Mapping[str, object]) -> bool:
        """True if every required name/value pair is held exactly."""
        return all(
            name in self._attributes and self._attributes[name] == value
            for name, value in required.items()
        )

    def as_dict(self) -> Dict[str, object]:
        """Return a mutable copy of the underlying mapping."""
        return dict(self._attributes)
