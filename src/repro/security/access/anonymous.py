"""Per-access anonymous authorization (§V.C, third open problem).

"How to design an access control mechanism that allows the lender
vehicle use a different new random ID for authentication and
authorization each time it needs to access or process the user data in
order to preserve the lender vehicle's privacy."

The scheme: at grant time the data owner gives the lender a
*capability* — a batch of single-use access tickets, each an HMAC over
(capability id, ticket index) under a key derived from the owner's
secret.  Per access, the lender presents a fresh random ticket id plus
the ticket MAC; the verifier recomputes the MAC without learning which
lender is behind it, and a spent-ticket set enforces single use.

Unlinkability holds because ticket ids are independent random strings;
accountability holds because the *capability* (not the lender identity)
can be revoked, and the owner knows which capability it issued to whom.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ...errors import AuthorizationError
from ..crypto import CryptoOp, HmacScheme

_capability_counter = itertools.count(1)


@dataclass(frozen=True)
class AccessTicket:
    """One single-use, unlinkable access credential."""

    ticket_id: str  # random-looking, carries no lender identity
    mac: str
    actions: Tuple[str, ...]
    resource: str


@dataclass(frozen=True)
class Capability:
    """A batch of tickets granted to one lender for one resource."""

    capability_id: str
    resource: str
    actions: Tuple[str, ...]
    tickets: Tuple[AccessTicket, ...]

    @property
    def remaining(self) -> int:
        """Tickets in the batch (issuer-side view; spending is verifier-side)."""
        return len(self.tickets)


class AnonymousAccessIssuer:
    """Owner-side: mints capabilities; knows who got which capability."""

    def __init__(self, owner_secret: bytes) -> None:
        self._secret = owner_secret
        self._hmac = HmacScheme()
        #: capability id -> the real grantee (the owner's private ledger).
        self.grant_ledger: Dict[str, str] = {}
        self.revoked: Set[str] = set()

    def _ticket_key(self, capability_id: str) -> bytes:
        return hashlib.sha256(self._secret + capability_id.encode()).digest()

    def _ticket_id(self, capability_id: str, index: int) -> str:
        digest = hashlib.sha256(
            self._secret + f"tid:{capability_id}:{index}".encode()
        ).hexdigest()
        return f"tkt-{digest[:20]}"

    def grant(
        self,
        grantee_real_id: str,
        resource: str,
        actions: Tuple[str, ...],
        ticket_count: int = 10,
    ) -> Capability:
        """Mint a capability for a lender; only the ledger links them."""
        if ticket_count < 1:
            raise AuthorizationError("ticket_count must be >= 1")
        capability_id = f"cap-{next(_capability_counter)}"
        key = self._ticket_key(capability_id)
        tickets = []
        for index in range(ticket_count):
            ticket_id = self._ticket_id(capability_id, index)
            mac = self._hmac.tag(key, f"{ticket_id}|{resource}|{','.join(actions)}".encode()).value
            tickets.append(
                AccessTicket(ticket_id=ticket_id, mac=mac, actions=actions, resource=resource)
            )
        self.grant_ledger[capability_id] = grantee_real_id
        return Capability(
            capability_id=capability_id,
            resource=resource,
            actions=actions,
            tickets=tuple(tickets),
        )

    def revoke_capability(self, capability_id: str) -> None:
        """Kill every remaining ticket of one capability."""
        self.revoked.add(capability_id)

    def attribute(self, capability_id: str) -> Optional[str]:
        """Owner-only: who holds this capability (for disputes)."""
        return self.grant_ledger.get(capability_id)


class AnonymousAccessVerifier:
    """Enforcement point: validates tickets without learning identities.

    The verifier receives the owner's per-capability ticket keys out of
    band (sealed in the data-policy package), never the lender mapping.
    """

    def __init__(self, issuer: AnonymousAccessIssuer) -> None:
        # The verifier shares the issuer's derivation oracle but not the
        # ledger — modelled by holding a reference and only calling the
        # key/ticket derivations.
        self._issuer = issuer
        self._hmac = HmacScheme()
        self._spent: Set[str] = set()
        self.accepted = 0
        self.rejected = 0

    def verify(
        self, ticket: AccessTicket, capability_id: str, action: str
    ) -> CryptoOp[bool]:
        """Check one presented ticket for one action.

        Rejects: wrong MAC (forged/foreign ticket), action outside the
        granted set, revoked capability, or a ticket spent before
        (replayed).  Cost: one HMAC plus set probes.
        """
        if capability_id in self._issuer.revoked:
            self.rejected += 1
            return CryptoOp(False, self._hmac.costs.hmac_s)
        if action not in ticket.actions:
            self.rejected += 1
            return CryptoOp(False, self._hmac.costs.hmac_s)
        if ticket.ticket_id in self._spent:
            self.rejected += 1
            return CryptoOp(False, self._hmac.costs.hmac_s)
        key = self._issuer._ticket_key(capability_id)
        payload = f"{ticket.ticket_id}|{ticket.resource}|{','.join(ticket.actions)}".encode()
        result = self._hmac.verify(key, payload, ticket.mac)
        if not result.value:
            self.rejected += 1
            return CryptoOp(False, result.cost_s)
        self._spent.add(ticket.ticket_id)
        self.accepted += 1
        return CryptoOp(True, result.cost_s)

    def observed_ticket_ids(self) -> List[str]:
        """What an honest-but-curious verifier saw: opaque ticket ids."""
        return sorted(self._spent)
