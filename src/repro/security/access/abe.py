"""Simulated ciphertext-policy attribute-based encryption (CP-ABE).

Models the SmartVeh / Luo-Ma line of work the survey cites for v-cloud
access control (§IV.C): data is encrypted under an attribute policy and
only keys whose attributes satisfy the policy can decrypt — no central
monitor needed at access time, which is exactly why ABE fits v-clouds.

Enforcement is simulated honestly: the plaintext is never stored in the
ciphertext object; ``decrypt`` re-derives it from the authority's master
secret only when the key satisfies the policy.  Costs follow CP-ABE's
published shape: keygen linear in attribute count, encrypt linear in
policy size, decrypt dominated by pairings per matched attribute —
including the "relative high computational complexity in the key
generation phase" the survey flags for multi-authority variants.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ...errors import CryptoError
from ..crypto import CryptoCostModel, CryptoOp, DEFAULT_COSTS

_abe_counter = itertools.count(1)


@dataclass(frozen=True)
class AbePolicy:
    """A conjunction-of-attributes policy (AND over name=value leaves)."""

    required: Tuple[Tuple[str, object], ...]

    @staticmethod
    def of(**attributes: object) -> "AbePolicy":
        """Build a policy requiring all the given attribute values."""
        return AbePolicy(tuple(sorted(attributes.items())))

    @property
    def leaves(self) -> int:
        """Number of attribute leaves in the policy."""
        return len(self.required)

    def satisfied_by(self, attributes: Mapping[str, object]) -> bool:
        """True if all required attribute values are held."""
        return all(attributes.get(name) == value for name, value in self.required)


@dataclass(frozen=True)
class AbeKey:
    """A user key bound to an attribute set by the authority."""

    key_id: str
    attributes: Tuple[Tuple[str, object], ...]
    binding: str  # authority-derived token proving issuance

    def attribute_dict(self) -> Dict[str, object]:
        """Return the key's attributes as a dict."""
        return dict(self.attributes)


@dataclass(frozen=True)
class AbeCiphertext:
    """Data sealed under an attribute policy."""

    ciphertext_id: str
    policy: AbePolicy
    sealed: str  # keyed digest of the plaintext; opaque without authority
    size_bytes: int


class AbeAuthority:
    """Key generation authority and (simulated) ABE engine."""

    def __init__(self, costs: CryptoCostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        # Per-authority master secret: keys from one authority must not
        # open another authority's ciphertexts.
        self._master_secret = hashlib.sha256(
            f"abe-master:{next(_abe_counter)}".encode()
        ).hexdigest()
        self._plaintexts: Dict[str, bytes] = {}
        self.keys_issued = 0

    # -- key generation ----------------------------------------------------

    def keygen(self, attributes: Mapping[str, object]) -> CryptoOp[AbeKey]:
        """Issue a key for an attribute set.

        Cost: one pairing-class operation per attribute (the expensive
        phase the survey calls out).
        """
        if not attributes:
            raise CryptoError("cannot issue a key for an empty attribute set")
        ordered = tuple(sorted(attributes.items()))
        binding = hashlib.sha256(
            f"{self._master_secret}:{ordered!r}".encode()
        ).hexdigest()
        key = AbeKey(
            key_id=f"abekey-{next(_abe_counter)}", attributes=ordered, binding=binding
        )
        self.keys_issued += 1
        cost = self.costs.pairing_s * len(ordered)
        return CryptoOp(key, cost)

    def _key_is_genuine(self, key: AbeKey) -> bool:
        expected = hashlib.sha256(
            f"{self._master_secret}:{key.attributes!r}".encode()
        ).hexdigest()
        return expected == key.binding

    # -- encryption -----------------------------------------------------------

    def encrypt(self, plaintext: bytes, policy: AbePolicy) -> CryptoOp[AbeCiphertext]:
        """Seal ``plaintext`` under ``policy``."""
        if policy.leaves == 0:
            raise CryptoError("ABE policy must have at least one attribute leaf")
        ciphertext_id = f"abect-{next(_abe_counter)}"
        sealed = hashlib.sha256(
            f"{self._master_secret}:{ciphertext_id}".encode() + plaintext
        ).hexdigest()
        self._plaintexts[ciphertext_id] = plaintext
        ciphertext = AbeCiphertext(
            ciphertext_id=ciphertext_id,
            policy=policy,
            sealed=sealed,
            size_bytes=len(plaintext) + 128 * policy.leaves,
        )
        cost = self.costs.pairing_s * 0.5 * policy.leaves + self.costs.symmetric_cost(
            len(plaintext)
        )
        return CryptoOp(ciphertext, cost, ciphertext.size_bytes)

    # -- decryption ---------------------------------------------------------------

    def decrypt(self, key: AbeKey, ciphertext: AbeCiphertext) -> CryptoOp[Optional[bytes]]:
        """Open a ciphertext; None if the key does not satisfy the policy.

        Cost: one pairing per policy leaf (paid even on failure — the
        decryptor cannot know it will fail without doing the math).
        """
        cost = self.costs.pairing_s * ciphertext.policy.leaves
        if not self._key_is_genuine(key):
            return CryptoOp(None, cost)
        if not ciphertext.policy.satisfied_by(key.attribute_dict()):
            return CryptoOp(None, cost)
        plaintext = self._plaintexts.get(ciphertext.ciphertext_id)
        if plaintext is None:
            return CryptoOp(None, cost)
        expected = hashlib.sha256(
            f"{self._master_secret}:{ciphertext.ciphertext_id}".encode() + plaintext
        ).hexdigest()
        if expected != ciphertext.sealed:
            return CryptoOp(None, cost)
        return CryptoOp(plaintext, cost + self.costs.symmetric_cost(len(plaintext)))
