"""Emergency permission escalation.

The paper's hardest authorization deadline: "if emergencies come up,
such as one vehicle hit ice on the road, additional permissions on the
data which may not be accessible in normal scenario should be granted to
another vehicle in milliseconds" (§III.C).

The escalator keeps a small, pre-compiled table of emergency grants so
the fast path is a dictionary probe plus one HMAC — no full policy walk —
and every grant is time-boxed and audit-logged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import ConfigurationError
from .audit import AuditLog, AuditRecord
from .context import AccessContext, OperatingMode


@dataclass(frozen=True)
class EmergencyGrant:
    """A time-boxed elevated permission."""

    grant_id: str
    requester: str
    resource: str
    action: str
    granted_at: float
    expires_at: float
    latency_s: float

    def is_active(self, now: float) -> bool:
        """True while the grant has not expired."""
        return now <= self.expires_at


@dataclass
class EmergencyRule:
    """One pre-compiled escalation: (resource, action) available in emergencies."""

    resource: str
    action: str
    ttl_s: float = 60.0


class EmergencyEscalator:
    """Millisecond-class permission escalation for emergency mode."""

    #: Fast-path evaluation cost: table probe + HMAC-class check.
    FAST_PATH_COST_S = 1.5e-4

    def __init__(self, rules: Optional[List[EmergencyRule]] = None) -> None:
        self._table: Dict[Tuple[str, str], EmergencyRule] = {}
        self._grant_counter = 0
        self.grants_issued = 0
        self.denials = 0
        for rule in rules or []:
            self.register(rule)

    def register(self, rule: EmergencyRule) -> None:
        """Pre-compile one escalation rule into the fast-path table."""
        if rule.ttl_s <= 0:
            raise ConfigurationError("grant ttl_s must be positive")
        self._table[(rule.resource, rule.action)] = rule

    def rules_count(self) -> int:
        """Number of pre-compiled escalations."""
        return len(self._table)

    def request(
        self,
        context: AccessContext,
        resource: str,
        action: str,
        audit_log: Optional[AuditLog] = None,
    ) -> Optional[EmergencyGrant]:
        """Request an emergency grant.

        Returns None (and counts a denial) when the context is not in
        emergency mode or no escalation is registered for the
        resource/action pair.  The grant's ``latency_s`` is the fast-path
        cost — the number experiment E4 compares against the paper's
        milliseconds budget.
        """
        permitted = (
            context.mode is OperatingMode.EMERGENCY
            and (resource, action) in self._table
        )
        if audit_log is not None:
            audit_log.append(
                AuditRecord(
                    time=context.time,
                    package_id="emergency",
                    requester=context.requester,
                    action=action,
                    resource=resource,
                    permitted=permitted,
                    matched_rule_id="emergency-fast-path" if permitted else None,
                )
            )
        if not permitted:
            self.denials += 1
            return None
        rule = self._table[(resource, action)]
        self._grant_counter += 1
        self.grants_issued += 1
        return EmergencyGrant(
            grant_id=f"egrant-{self._grant_counter}",
            requester=context.requester,
            resource=resource,
            action=action,
            granted_at=context.time,
            expires_at=context.time + rule.ttl_s,
            latency_s=self.FAST_PATH_COST_S,
        )
