"""Policy decision point (PDP) with deadline accounting.

The paper's authorization challenge is temporal: "the verification of
access rights needs to be completed within stringent time constraints
... in milliseconds" (§III.C).  The PDP therefore reports the virtual
time every decision cost, and decisions know whether they met their
deadline, so experiment E4 can sweep policy size against latency budget.

Semantics: deny-overrides among matching rules at the highest matching
priority, default deny when nothing matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .context import AccessRequest
from .policy import Effect, Policy, Rule


@dataclass(frozen=True)
class Decision:
    """The PDP's answer to one access request."""

    permitted: bool
    latency_s: float
    matched_rule_id: Optional[str]
    rules_evaluated: int
    default_deny: bool = False

    def met_deadline(self, deadline_s: float) -> bool:
        """True if the decision completed within ``deadline_s``."""
        return self.latency_s <= deadline_s


class PolicyDecisionPoint:
    """Evaluates access requests against policies with cost accounting."""

    #: Virtual seconds per condition-unit evaluated.
    DEFAULT_COST_PER_UNIT_S = 5e-6

    def __init__(self, cost_per_unit_s: float = DEFAULT_COST_PER_UNIT_S) -> None:
        self.cost_per_unit_s = cost_per_unit_s
        self.decisions_made = 0

    def evaluate(self, policy: Policy, request: AccessRequest) -> Decision:
        """Decide one request; latency reflects rules actually touched.

        Evaluation walks rules in priority order; within one priority
        level, a DENY match overrides PERMIT matches.  Evaluation stops
        at the first priority level that produced any match.
        """
        self.decisions_made += 1
        cost_units = 0
        rules_touched = 0
        current_priority: Optional[int] = None
        level_permit: Optional[Rule] = None
        level_deny: Optional[Rule] = None

        for rule in policy.sorted_rules():
            if current_priority is not None and rule.priority != current_priority:
                decision = self._conclude_level(level_permit, level_deny)
                if decision is not None:
                    return self._finish(decision, cost_units, rules_touched)
                level_permit = None
                level_deny = None
            current_priority = rule.priority
            rules_touched += 1
            cost_units += 1  # scope check
            if not rule.applies_to(request):
                continue
            cost_units += rule.condition.cost_units
            if not rule.condition.matches(request.context):
                continue
            if rule.effect is Effect.DENY:
                level_deny = rule
            else:
                level_permit = rule

        decision = self._conclude_level(level_permit, level_deny)
        if decision is not None:
            return self._finish(decision, cost_units, rules_touched)
        # Default deny.
        return Decision(
            permitted=False,
            latency_s=cost_units * self.cost_per_unit_s,
            matched_rule_id=None,
            rules_evaluated=rules_touched,
            default_deny=True,
        )

    @staticmethod
    def _conclude_level(
        level_permit: Optional[Rule], level_deny: Optional[Rule]
    ) -> Optional[Rule]:
        if level_deny is not None:
            return level_deny
        if level_permit is not None:
            return level_permit
        return None

    def _finish(self, rule: Rule, cost_units: int, rules_touched: int) -> Decision:
        return Decision(
            permitted=rule.effect is Effect.PERMIT,
            latency_s=cost_units * self.cost_per_unit_s,
            matched_rule_id=rule.rule_id,
            rules_evaluated=rules_touched,
        )
