"""Privacy-preserving access control for vehicular clouds (§III.C, §IV.C, §V.C)."""

from .abe import AbeAuthority, AbeCiphertext, AbeKey, AbePolicy
from .anonymous import (
    AccessTicket,
    AnonymousAccessIssuer,
    AnonymousAccessVerifier,
    Capability,
)
from .attributes import AttributeSet
from .audit import AuditLog, AuditRecord
from .context import AccessContext, AccessRequest, OperatingMode, VehicleRole
from .emergency import EmergencyEscalator, EmergencyGrant, EmergencyRule
from .engine import Decision, PolicyDecisionPoint
from .package import AccessOutcome, DataPolicyPackage
from .policy import (
    ALWAYS,
    AllOf,
    AnyOf,
    AttributeEquals,
    AutomationAtLeast,
    Condition,
    Effect,
    GroupIs,
    ModeIs,
    Policy,
    Predicate,
    RoleIs,
    Rule,
    SpeedBelow,
    WithinArea,
    deny,
    permit,
)

__all__ = [
    "AccessTicket",
    "AnonymousAccessIssuer",
    "AnonymousAccessVerifier",
    "Capability",
    "ALWAYS",
    "AbeAuthority",
    "AbeCiphertext",
    "AbeKey",
    "AbePolicy",
    "AccessContext",
    "AccessOutcome",
    "AccessRequest",
    "AllOf",
    "AnyOf",
    "AttributeEquals",
    "AttributeSet",
    "AuditLog",
    "AuditRecord",
    "AutomationAtLeast",
    "Condition",
    "DataPolicyPackage",
    "Decision",
    "deny",
    "Effect",
    "EmergencyEscalator",
    "EmergencyGrant",
    "EmergencyRule",
    "GroupIs",
    "ModeIs",
    "OperatingMode",
    "permit",
    "Policy",
    "PolicyDecisionPoint",
    "Predicate",
    "RoleIs",
    "Rule",
    "SpeedBelow",
    "VehicleRole",
    "WithinArea",
]
