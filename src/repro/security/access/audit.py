"""Audit logging for data access.

The paper requires that "any access to the data will trigger automatic
logging actions for future auditing" (§V.C).  The log records decisions
against *pseudonyms*, preserving privacy, while the TA's escrow can
attribute entries to real identities during an investigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class AuditRecord:
    """One access attempt against a protected object."""

    time: float
    package_id: str
    requester: str  # pseudonym
    action: str
    resource: str
    permitted: bool
    matched_rule_id: Optional[str] = None


@dataclass
class AuditLog:
    """An append-only record of access decisions."""

    records: List[AuditRecord] = field(default_factory=list)

    def append(self, record: AuditRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def for_package(self, package_id: str) -> List[AuditRecord]:
        """All records about one data-policy package."""
        return [r for r in self.records if r.package_id == package_id]

    def for_requester(self, requester: str) -> List[AuditRecord]:
        """All records from one (pseudonymous) requester."""
        return [r for r in self.records if r.requester == requester]

    def denials(self) -> List[AuditRecord]:
        """All denied attempts."""
        return [r for r in self.records if not r.permitted]

    def between(self, start: float, end: float) -> List[AuditRecord]:
        """Records in the half-open time window [start, end)."""
        return [r for r in self.records if start <= r.time < end]

    def denial_rate(self) -> float:
        """Fraction of attempts denied (0 for an empty log)."""
        if not self.records:
            return 0.0
        return len(self.denials()) / len(self.records)

    def suspicious_requesters(self, min_denials: int = 3) -> List[str]:
        """Pseudonyms with at least ``min_denials`` denied attempts.

        Candidates to hand to the TA's escrow for de-anonymization.
        """
        counts: dict = {}
        for record in self.records:
            if not record.permitted:
                counts[record.requester] = counts.get(record.requester, 0) + 1
        return sorted(r for r, c in counts.items() if c >= min_denials)

    def merge(self, other: "AuditLog") -> "AuditLog":
        """Return a new, time-ordered combined log."""
        combined = sorted(self.records + other.records, key=lambda r: r.time)
        return AuditLog(records=combined)
