"""Access-request context.

The paper requires policies "under varying contexts" — role in the
current group, location, speed, automation level, operating mode
(§III.C).  A :class:`AccessContext` snapshots all of that at request
time so the policy engine evaluates against the situation the vehicle is
*actually in*, not a stale registration record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ...geometry import Vec2
from ...mobility.equipment import AutomationLevel
from .attributes import AttributeSet


class VehicleRole(enum.Enum):
    """Roles a vehicle may hold within a v-cloud (paper §III.A)."""

    HEAD = "head"
    MEMBER = "member"
    STORAGE_NODE = "storage_node"
    BUFFER_NODE = "buffer_node"
    GATEWAY = "gateway"
    OUTSIDER = "outsider"


class OperatingMode(enum.Enum):
    """Cloud operating modes (paper §V.A)."""

    NORMAL = "normal"
    EVENT = "event"
    EMERGENCY = "emergency"


@dataclass(frozen=True)
class AccessContext:
    """Everything the policy engine may condition on."""

    requester: str  # on-air identity (pseudonym), never the real id
    role: VehicleRole = VehicleRole.MEMBER
    location: Optional[Vec2] = None
    speed_mps: float = 0.0
    automation_level: AutomationLevel = AutomationLevel.HIGH_AUTOMATION
    mode: OperatingMode = OperatingMode.NORMAL
    group_id: Optional[str] = None
    time: float = 0.0
    attributes: AttributeSet = field(default_factory=AttributeSet)

    def with_mode(self, mode: OperatingMode) -> "AccessContext":
        """Return a copy in a different operating mode."""
        from dataclasses import replace

        return replace(self, mode=mode)

    def with_role(self, role: VehicleRole) -> "AccessContext":
        """Return a copy holding a different role."""
        from dataclasses import replace

        return replace(self, role=role)


@dataclass(frozen=True)
class AccessRequest:
    """One authorization question: may ``context`` do ``action`` on ``resource``?"""

    context: AccessContext
    action: str  # "read" | "write" | "compute" | "share" | ...
    resource: str  # hierarchical path, e.g. "sensor/lidar/frames"
