"""Access-control policies.

A :class:`Policy` is a prioritized rule list with deny-overrides
semantics and a default-deny fallback.  Conditions are small composable
predicate objects over the :class:`AccessContext`, so policies can
express the paper's examples directly — "in group A a vehicle serves as
head node and can access road conditions ... in group B it serves as
video buffering node and can only access video data in its own storage".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ...errors import ConfigurationError
from ...geometry import Vec2
from .context import AccessContext, AccessRequest, OperatingMode, VehicleRole


class Effect(enum.Enum):
    """What a matching rule decides."""

    PERMIT = "permit"
    DENY = "deny"


class Condition:
    """Base predicate over an access context."""

    #: Relative evaluation cost in "condition units" (engine converts to time).
    cost_units = 1

    def matches(self, context: AccessContext) -> bool:
        """Return True if the context satisfies this condition."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "AllOf":
        return AllOf([self, other])

    def __or__(self, other: "Condition") -> "AnyOf":
        return AnyOf([self, other])


@dataclass(frozen=True)
class RoleIs(Condition):
    """Requester holds one of the given roles."""

    roles: Tuple[VehicleRole, ...]

    def __init__(self, *roles: VehicleRole) -> None:
        object.__setattr__(self, "roles", tuple(roles))

    def matches(self, context: AccessContext) -> bool:
        return context.role in self.roles


@dataclass(frozen=True)
class ModeIs(Condition):
    """Cloud is in one of the given operating modes."""

    modes: Tuple[OperatingMode, ...]

    def __init__(self, *modes: OperatingMode) -> None:
        object.__setattr__(self, "modes", tuple(modes))

    def matches(self, context: AccessContext) -> bool:
        return context.mode in self.modes


@dataclass(frozen=True)
class GroupIs(Condition):
    """Requester belongs to a specific group."""

    group_id: str

    def matches(self, context: AccessContext) -> bool:
        return context.group_id == self.group_id


@dataclass(frozen=True)
class AttributeEquals(Condition):
    """Requester's attribute has an exact value."""

    name: str
    value: object

    def matches(self, context: AccessContext) -> bool:
        return context.attributes.get(self.name) == self.value


@dataclass(frozen=True)
class SpeedBelow(Condition):
    """Requester is moving slower than a bound."""

    limit_mps: float

    def matches(self, context: AccessContext) -> bool:
        return context.speed_mps < self.limit_mps


@dataclass(frozen=True)
class AutomationAtLeast(Condition):
    """Requester's automation level meets a floor."""

    minimum: int

    def matches(self, context: AccessContext) -> bool:
        return int(context.automation_level) >= self.minimum


class WithinArea(Condition):
    """Requester is inside a circular geographic area."""

    cost_units = 2

    def __init__(self, center: Vec2, radius_m: float) -> None:
        if radius_m <= 0:
            raise ConfigurationError("radius_m must be positive")
        self.center = center
        self.radius_m = radius_m

    def matches(self, context: AccessContext) -> bool:
        if context.location is None:
            return False
        return context.location.distance_to(self.center) <= self.radius_m


class AllOf(Condition):
    """Conjunction of conditions."""

    def __init__(self, conditions: Sequence[Condition]) -> None:
        self.conditions = list(conditions)
        self.cost_units = sum(c.cost_units for c in self.conditions)

    def matches(self, context: AccessContext) -> bool:
        return all(c.matches(context) for c in self.conditions)


class AnyOf(Condition):
    """Disjunction of conditions."""

    def __init__(self, conditions: Sequence[Condition]) -> None:
        self.conditions = list(conditions)
        self.cost_units = sum(c.cost_units for c in self.conditions)

    def matches(self, context: AccessContext) -> bool:
        return any(c.matches(context) for c in self.conditions)


class Predicate(Condition):
    """Escape hatch: arbitrary callable predicate."""

    cost_units = 3

    def __init__(self, fn: Callable[[AccessContext], bool], label: str = "custom") -> None:
        self.fn = fn
        self.label = label

    def matches(self, context: AccessContext) -> bool:
        return self.fn(context)


ALWAYS = Predicate(lambda _context: True, label="always")
ALWAYS.cost_units = 0


@dataclass
class Rule:
    """One policy rule: effect + actions + resource scope + condition."""

    rule_id: str
    effect: Effect
    actions: Tuple[str, ...]
    resource_prefix: str
    condition: Condition = ALWAYS
    priority: int = 0

    def applies_to(self, request: AccessRequest) -> bool:
        """True if the rule's action/resource scope covers the request."""
        if "*" not in self.actions and request.action not in self.actions:
            return False
        return request.resource.startswith(self.resource_prefix)

    def matches(self, request: AccessRequest) -> bool:
        """True if the rule both applies and its condition holds."""
        return self.applies_to(request) and self.condition.matches(request.context)


@dataclass
class Policy:
    """A prioritized rule set with deny-overrides and default deny."""

    policy_id: str
    rules: List[Rule] = field(default_factory=list)

    def add_rule(self, rule: Rule) -> "Policy":
        """Append a rule (fluent)."""
        self.rules.append(rule)
        return self

    def sorted_rules(self) -> List[Rule]:
        """Rules in evaluation order: priority descending, stable."""
        return sorted(self.rules, key=lambda r: -r.priority)

    @property
    def total_cost_units(self) -> int:
        """Worst-case evaluation cost in condition units."""
        return sum(r.condition.cost_units + 1 for r in self.rules)


def permit(
    rule_id: str,
    actions: Sequence[str],
    resource_prefix: str,
    condition: Condition = ALWAYS,
    priority: int = 0,
) -> Rule:
    """Build a PERMIT rule."""
    return Rule(rule_id, Effect.PERMIT, tuple(actions), resource_prefix, condition, priority)


def deny(
    rule_id: str,
    actions: Sequence[str],
    resource_prefix: str,
    condition: Condition = ALWAYS,
    priority: int = 0,
) -> Rule:
    """Build a DENY rule."""
    return Rule(rule_id, Effect.DENY, tuple(actions), resource_prefix, condition, priority)
