"""Sticky data-policy packages (§V.C "Constructing data-policy package").

A :class:`DataPolicyPackage` "tightly couples data items with the
corresponding access control policies": the package carries its own
policy wherever the data travels, any access is mediated by the embedded
policy, every attempt is automatically audit-logged, and an HMAC seal
makes tampering with either data or policy detectable.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Optional

from ...errors import AuthorizationError, CryptoError
from ..crypto import HmacScheme, serialize_for_signing
from .audit import AuditLog, AuditRecord
from .context import AccessContext, AccessRequest
from .engine import Decision, PolicyDecisionPoint
from .policy import Policy

_package_counter = itertools.count(1)


@dataclass(frozen=True)
class AccessOutcome:
    """What a package access attempt produced."""

    decision: Decision
    data: Optional[bytes]  # present only when permitted

    @property
    def permitted(self) -> bool:
        """Whether access was granted."""
        return self.decision.permitted


class DataPolicyPackage:
    """Data + embedded policy + integrity seal, enforced wherever it goes."""

    def __init__(
        self,
        data: bytes,
        policy: Policy,
        owner: str,
        resource: str = "data",
        seal_key: Optional[bytes] = None,
    ) -> None:
        self.package_id = f"pkg-{next(_package_counter)}"
        self._data = data
        self.policy = policy
        self.owner = owner  # owner's pseudonym, not real identity
        self.resource = resource
        self._hmac = HmacScheme()
        self._seal_key = seal_key if seal_key is not None else hashlib.sha256(
            f"seal:{self.package_id}".encode()
        ).digest()
        self._seal = self._compute_seal()

    def _compute_seal(self) -> str:
        payload = serialize_for_signing(
            self.package_id,
            self.owner,
            self.resource,
            self.policy.policy_id,
            len(self.policy.rules),
        ) + self._data
        return self._hmac.tag(self._seal_key, payload).value

    # -- integrity ---------------------------------------------------------

    def verify_integrity(self) -> bool:
        """Return True if neither data nor policy has been tampered with."""
        return self._hmac.verify(
            self._seal_key,
            serialize_for_signing(
                self.package_id,
                self.owner,
                self.resource,
                self.policy.policy_id,
                len(self.policy.rules),
            )
            + self._data,
            self._seal,
        ).value

    def tamper_with_data(self, new_data: bytes) -> None:
        """Test helper: modify the payload *without* resealing."""
        self._data = new_data

    @property
    def size_bytes(self) -> int:
        """Approximate on-air size: data + policy + seal overhead."""
        return len(self._data) + 64 * len(self.policy.rules) + 32

    # -- mediated access -------------------------------------------------------

    def access(
        self,
        context: AccessContext,
        action: str,
        pdp: PolicyDecisionPoint,
        audit_log: AuditLog,
    ) -> AccessOutcome:
        """Attempt an action on the packaged data.

        Every attempt — permitted or not — is appended to ``audit_log``
        (the paper's automatic-logging requirement).  A package that
        fails its integrity check refuses all access.
        """
        if not self.verify_integrity():
            raise CryptoError(
                f"package {self.package_id} failed integrity check; refusing access"
            )
        request = AccessRequest(context=context, action=action, resource=self.resource)
        decision = pdp.evaluate(self.policy, request)
        audit_log.append(
            AuditRecord(
                time=context.time,
                package_id=self.package_id,
                requester=context.requester,
                action=action,
                resource=self.resource,
                permitted=decision.permitted,
                matched_rule_id=decision.matched_rule_id,
            )
        )
        data = self._data if decision.permitted else None
        return AccessOutcome(decision=decision, data=data)

    def read(
        self, context: AccessContext, pdp: PolicyDecisionPoint, audit_log: AuditLog
    ) -> bytes:
        """Read the data or raise :class:`AuthorizationError`."""
        outcome = self.access(context, "read", pdp, audit_log)
        if not outcome.permitted or outcome.data is None:
            raise AuthorizationError(
                f"read denied on {self.package_id} for {context.requester}"
            )
        return outcome.data
