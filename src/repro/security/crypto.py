"""Cost-modelled cryptographic primitives.

The survey's security arguments hinge on *time*: authentication and
authorization "must be done in seconds ... in milliseconds".  What
matters for reproduction is therefore the latency and size of each
operation class, not the bit-level math.  This module provides:

* **Real** hashing and HMAC (``hashlib``) where integrity checks are
  cheap and convenient to make genuinely binding.
* **Simulated** asymmetric schemes (ECDSA-like signatures, group
  signatures) whose unforgeability is enforced by simulation rules: a
  signature embeds a digest of the signed data plus the signing key's
  private token, and verification recomputes both.  An attacker object
  that never held the private key cannot construct a valid signature.
* A :class:`CryptoCostModel` with per-operation virtual latencies and
  sizes, defaulting to mid-range published OBU-class benchmarks
  (ECDSA-P256 sign ~0.6 ms / verify ~1.8 ms; group signature sign ~6 ms /
  verify ~12 ms; bilinear pairing ~10 ms).

Every operation returns a :class:`CryptoOp` carrying its virtual cost so
protocol code can accumulate handshake latency honestly.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import itertools
from dataclasses import dataclass, field
from typing import Dict, Generic, Optional, TypeVar

from ..errors import CryptoError

T = TypeVar("T")

_key_counter = itertools.count(1)


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 hex digest of ``data`` (real hash)."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class CryptoCostModel:
    """Virtual latencies (seconds) and sizes (bytes) per operation."""

    hash_s: float = 2e-6
    hmac_s: float = 4e-6
    symmetric_encrypt_s_per_kb: float = 1e-5
    ecdsa_sign_s: float = 0.0006
    ecdsa_verify_s: float = 0.0018
    group_sign_s: float = 0.006
    group_verify_s: float = 0.012
    group_open_s: float = 0.015
    pairing_s: float = 0.010
    signature_bytes: int = 64
    certificate_bytes: int = 125
    group_signature_bytes: int = 192
    hmac_bytes: int = 32

    def symmetric_cost(self, size_bytes: int) -> float:
        """Return the cost of symmetric-encrypting ``size_bytes``."""
        return self.symmetric_encrypt_s_per_kb * max(1.0, size_bytes / 1024.0)


DEFAULT_COSTS = CryptoCostModel()


@dataclass(frozen=True)
class CryptoOp(Generic[T]):
    """The result of one crypto operation plus its virtual cost."""

    value: T
    cost_s: float
    size_bytes: int = 0


# ---------------------------------------------------------------------------
# Signature scheme (ECDSA-like)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric keypair.

    ``private_token`` must never leave the owner; holding the KeyPair
    object *is* holding the private key.  ``public_id`` is what goes
    into certificates.
    """

    public_id: str
    private_token: str

    @staticmethod
    def generate(label: str = "") -> "KeyPair":
        index = next(_key_counter)
        public_id = f"pk-{index}" if not label else f"pk-{label}-{index}"
        private_token = sha256_hex(f"secret:{public_id}".encode())
        return KeyPair(public_id=public_id, private_token=private_token)


@dataclass(frozen=True)
class Signature:
    """A simulated digital signature over a byte string."""

    signer_public_id: str
    binding: str  # digest binding data to the private key


class SignatureScheme:
    """ECDSA-like sign/verify with honest unforgeability bookkeeping."""

    def __init__(self, costs: CryptoCostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    @staticmethod
    def _binding(private_token: str, data: bytes) -> str:
        return sha256_hex(private_token.encode() + b"|" + data)

    def sign(self, keypair: KeyPair, data: bytes) -> CryptoOp[Signature]:
        """Sign ``data`` with the private key."""
        signature = Signature(
            signer_public_id=keypair.public_id,
            binding=self._binding(keypair.private_token, data),
        )
        return CryptoOp(signature, self.costs.ecdsa_sign_s, self.costs.signature_bytes)

    def verify(
        self, public_id: str, data: bytes, signature: Signature
    ) -> CryptoOp[bool]:
        """Verify a signature against a public key id.

        Verification recomputes the private token the same way key
        generation derived it — legitimate because verification *models*
        the asymmetric math; attacker code never gets to call this to
        mint signatures, only to check them.
        """
        if signature.signer_public_id != public_id:
            return CryptoOp(False, self.costs.ecdsa_verify_s)
        expected_token = sha256_hex(f"secret:{public_id}".encode())
        valid = signature.binding == self._binding(expected_token, data)
        return CryptoOp(valid, self.costs.ecdsa_verify_s)


# ---------------------------------------------------------------------------
# HMAC (real)
# ---------------------------------------------------------------------------


class HmacScheme:
    """Keyed MAC built on real HMAC-SHA256."""

    def __init__(self, costs: CryptoCostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    def tag(self, key: bytes, data: bytes) -> CryptoOp[str]:
        """Return the MAC tag for ``data`` under ``key``."""
        digest = hmac_mod.new(key, data, hashlib.sha256).hexdigest()
        return CryptoOp(digest, self.costs.hmac_s, self.costs.hmac_bytes)

    def verify(self, key: bytes, data: bytes, tag: str) -> CryptoOp[bool]:
        """Constant-time-compare a MAC tag."""
        expected = hmac_mod.new(key, data, hashlib.sha256).hexdigest()
        return CryptoOp(hmac_mod.compare_digest(expected, tag), self.costs.hmac_s)


# ---------------------------------------------------------------------------
# Group signatures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupSignature:
    """An anonymous signature attributable only by the group manager."""

    group_id: str
    binding: str
    opening_hint: str  # encrypted signer identity, readable by the manager


@dataclass
class _GroupState:
    group_id: str
    group_secret: str
    members: Dict[str, str] = field(default_factory=dict)  # member_id -> member key


class GroupSignatureScheme:
    """Group signatures with manager-side opening (conditional privacy).

    Any member can sign anonymously on behalf of the group; verifiers
    learn only the group id; the manager (who created the group) can
    ``open`` a signature to the member identity — exactly the
    conditional-privacy property the survey ascribes to group-based
    authentication (§IV.B.1).
    """

    def __init__(self, costs: CryptoCostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self._groups: Dict[str, _GroupState] = {}

    def create_group(self, group_id: str) -> None:
        """Create a group; the caller becomes its manager."""
        if group_id in self._groups:
            raise CryptoError(f"group already exists: {group_id!r}")
        secret = sha256_hex(f"group-secret:{group_id}".encode())
        self._groups[group_id] = _GroupState(group_id=group_id, group_secret=secret)

    def has_group(self, group_id: str) -> bool:
        """Return True if the group exists."""
        return group_id in self._groups

    def enroll_member(self, group_id: str, member_id: str) -> str:
        """Issue a member key; returns the member-key token."""
        group = self._require_group(group_id)
        member_key = sha256_hex(f"{group.group_secret}:{member_id}".encode())
        group.members[member_id] = member_key
        return member_key

    def remove_member(self, group_id: str, member_id: str) -> None:
        """Revoke a member's signing ability."""
        group = self._require_group(group_id)
        group.members.pop(member_id, None)

    def sign(
        self, group_id: str, member_id: str, member_key: str, data: bytes
    ) -> CryptoOp[GroupSignature]:
        """Produce an anonymous group signature over ``data``."""
        group = self._require_group(group_id)
        if group.members.get(member_id) != member_key:
            raise CryptoError(f"{member_id!r} holds no valid key for group {group_id!r}")
        binding = sha256_hex(group.group_secret.encode() + b"|" + data)
        hint = sha256_hex(f"open:{group.group_secret}:{member_id}".encode())
        signature = GroupSignature(group_id=group_id, binding=binding, opening_hint=hint)
        return CryptoOp(signature, self.costs.group_sign_s, self.costs.group_signature_bytes)

    def verify(self, data: bytes, signature: GroupSignature) -> CryptoOp[bool]:
        """Verify that some group member signed ``data``."""
        group = self._groups.get(signature.group_id)
        if group is None:
            return CryptoOp(False, self.costs.group_verify_s)
        expected = sha256_hex(group.group_secret.encode() + b"|" + data)
        return CryptoOp(expected == signature.binding, self.costs.group_verify_s)

    def open(self, signature: GroupSignature) -> CryptoOp[Optional[str]]:
        """Manager-only: reveal which member produced a signature."""
        group = self._groups.get(signature.group_id)
        if group is None:
            return CryptoOp(None, self.costs.group_open_s)
        for member_id in group.members:
            hint = sha256_hex(f"open:{group.group_secret}:{member_id}".encode())
            if hint == signature.opening_hint:
                return CryptoOp(member_id, self.costs.group_open_s)
        return CryptoOp(None, self.costs.group_open_s)

    def member_count(self, group_id: str) -> int:
        """Return the number of enrolled members."""
        return len(self._require_group(group_id).members)

    def _require_group(self, group_id: str) -> _GroupState:
        group = self._groups.get(group_id)
        if group is None:
            raise CryptoError(f"no such group: {group_id!r}")
        return group


def serialize_for_signing(*parts: object) -> bytes:
    """Canonical, unambiguous byte encoding of heterogeneous fields."""
    encoded = []
    for part in parts:
        text = repr(part)
        encoded.append(f"{len(text)}:{text}")
    return "|".join(encoded).encode()
