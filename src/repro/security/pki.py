"""The trusted authority (TA): registration, pseudonym issue, escrow.

The TA is the root of trust the paper's architectures assume for the
*registration phase* — even infrastructure-light designs (Kang et al.
[15], [16]) visit the TA once.  It escrows the pseudonym-to-real-identity
mapping so "the authority should be able to reveal vehicles' real
identities ... to identify the attackers" (§V.A), which is precisely the
conditional-privacy property: anonymous to peers, accountable to the TA.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SecurityError
from .crypto import (
    CryptoCostModel,
    DEFAULT_COSTS,
    GroupSignatureScheme,
    KeyPair,
    SignatureScheme,
    serialize_for_signing,
)
from .identity import Certificate, Pseudonym, PseudonymPool, RealIdentity
from .revocation import RevocationList

_pseudonym_counter = itertools.count(1)


@dataclass
class Enrollment:
    """Everything the TA knows about one registered vehicle."""

    identity: RealIdentity
    long_term_keypair: KeyPair
    long_term_certificate: Certificate
    pseudonym_ids: List[str] = field(default_factory=list)
    group_ids: List[str] = field(default_factory=list)


class TrustedAuthority:
    """Registration authority, pseudonym issuer and identity escrow."""

    DEFAULT_VALIDITY_S = 7 * 24 * 3600.0

    def __init__(
        self,
        authority_id: str = "ta-root",
        costs: CryptoCostModel = DEFAULT_COSTS,
        crl_check_cost_per_entry_s: float = 2e-6,
    ) -> None:
        self.authority_id = authority_id
        self.costs = costs
        self.signatures = SignatureScheme(costs)
        self.group_signatures = GroupSignatureScheme(costs)
        self.keypair = KeyPair.generate("ta")
        self.crl = RevocationList(crl_check_cost_per_entry_s)
        self._enrollments: Dict[str, Enrollment] = {}
        self._escrow: Dict[str, str] = {}  # pseudonym id -> real id

    # -- registration ---------------------------------------------------------

    def register_vehicle(self, identity: RealIdentity, now: float = 0.0) -> Enrollment:
        """Register a vehicle and issue its long-term credential."""
        if identity.real_id in self._enrollments:
            raise SecurityError(f"vehicle already registered: {identity.real_id!r}")
        keypair = KeyPair.generate(identity.real_id)
        certificate = self._issue_certificate(identity.real_id, keypair.public_id, now)
        enrollment = Enrollment(
            identity=identity,
            long_term_keypair=keypair,
            long_term_certificate=certificate,
        )
        self._enrollments[identity.real_id] = enrollment
        return enrollment

    def is_registered(self, real_id: str) -> bool:
        """Return True if the vehicle has registered."""
        return real_id in self._enrollments

    def enrollment_of(self, real_id: str) -> Enrollment:
        """Return a vehicle's enrollment record."""
        enrollment = self._enrollments.get(real_id)
        if enrollment is None:
            raise SecurityError(f"vehicle not registered: {real_id!r}")
        return enrollment

    # -- pseudonyms --------------------------------------------------------------

    def issue_pseudonyms(
        self, real_id: str, count: int, now: float = 0.0
    ) -> PseudonymPool:
        """Issue a pool of certified pseudonyms to a registered vehicle."""
        if count < 1:
            raise SecurityError("must issue at least one pseudonym")
        enrollment = self.enrollment_of(real_id)
        pseudonyms = [self._mint_pseudonym(real_id, now) for _ in range(count)]
        enrollment.pseudonym_ids.extend(p.pseudonym_id for p in pseudonyms)
        return PseudonymPool(pseudonyms=pseudonyms)

    def refill_pseudonyms(
        self, real_id: str, pool: PseudonymPool, count: int, now: float = 0.0
    ) -> int:
        """Top a pool up with ``count`` fresh pseudonyms."""
        fresh_pool = self.issue_pseudonyms(real_id, count, now)
        pool.refill(fresh_pool.pseudonyms)
        return count

    def _mint_pseudonym(self, real_id: str, now: float) -> Pseudonym:
        pseudonym_id = f"pn-{next(_pseudonym_counter)}"
        keypair = KeyPair.generate(pseudonym_id)
        certificate = self._issue_certificate(pseudonym_id, keypair.public_id, now)
        self._escrow[pseudonym_id] = real_id
        return Pseudonym(
            pseudonym_id=pseudonym_id, keypair=keypair, certificate=certificate
        )

    def _issue_certificate(
        self, subject_id: str, public_id: str, now: float
    ) -> Certificate:
        expires = now + self.DEFAULT_VALIDITY_S
        payload = serialize_for_signing(subject_id, public_id, now, expires)
        signature = self.signatures.sign(self.keypair, payload).value
        return Certificate(
            subject_id=subject_id,
            public_id=public_id,
            issued_at=now,
            expires_at=expires,
            issuer_id=self.authority_id,
            signature=signature,
        )

    def verify_certificate(self, certificate: Certificate, now: float):
        """Verify a certificate's TA signature and expiry.

        Returns a CryptoOp[bool] whose cost is one signature verify.
        """
        payload = serialize_for_signing(
            certificate.subject_id,
            certificate.public_id,
            certificate.issued_at,
            certificate.expires_at,
        )
        if certificate.signature is None or certificate.is_expired(now):
            from .crypto import CryptoOp

            return CryptoOp(False, self.costs.ecdsa_verify_s)
        return self.signatures.verify(
            self.keypair.public_id, payload, certificate.signature
        )

    # -- escrow / conditional privacy -------------------------------------------

    def reveal(self, pseudonym_id: str) -> Optional[str]:
        """TA-only: map a pseudonym back to the real identity."""
        return self._escrow.get(pseudonym_id)

    # -- revocation ----------------------------------------------------------------

    def revoke_vehicle(self, real_id: str) -> int:
        """Revoke a vehicle's long-term credential and every pseudonym.

        Returns the number of credentials added to the CRL.
        """
        enrollment = self.enrollment_of(real_id)
        revoked = 0
        self.crl.revoke(enrollment.long_term_certificate.subject_id)
        revoked += 1
        for pseudonym_id in enrollment.pseudonym_ids:
            self.crl.revoke(pseudonym_id)
            revoked += 1
        for group_id in enrollment.group_ids:
            self.group_signatures.remove_member(group_id, real_id)
        return revoked

    # -- groups ------------------------------------------------------------------

    def create_group(self, group_id: str) -> None:
        """Create a signature group managed by the TA."""
        self.group_signatures.create_group(group_id)

    def join_group(self, real_id: str, group_id: str) -> str:
        """Enroll a registered vehicle into a group; returns member key."""
        enrollment = self.enrollment_of(real_id)
        if not self.group_signatures.has_group(group_id):
            self.group_signatures.create_group(group_id)
        member_key = self.group_signatures.enroll_member(group_id, real_id)
        if group_id not in enrollment.group_ids:
            enrollment.group_ids.append(group_id)
        return member_key

    def open_group_signature(self, signature) -> Optional[str]:
        """TA-only: attribute a group signature to its member."""
        return self.group_signatures.open(signature).value
