"""Threshold secret sharing (§V.B).

"In traditional scenarios, there are many existing methods, such as
splitting information into different parts, then store and process these
parts in several honest-but-curious servers to reduce the risk of
privacy leakage."  In a v-cloud the honest-but-curious servers are other
vehicles: a (k, n) split lets the owner scatter shares across cloud
members so that any k of them reconstruct the secret but k-1 collaborate
in vain — and departures of up to n-k holders lose nothing.

Implementation: Shamir's scheme per byte over GF(257) would leak for the
value 256, so we work over the prime field GF(2^61 - 1) on 7-byte blocks
— real information-theoretic hiding, not a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import CryptoError
from ..sim.rng import SeededRng

#: A Mersenne prime comfortably above any 7-byte block value.
PRIME = 2**61 - 1
_BLOCK_BYTES = 7


@dataclass(frozen=True)
class SecretShare:
    """One participant's share of a split secret."""

    index: int  # the x-coordinate (1-based; 0 would leak the secret)
    values: Tuple[int, ...]  # one field element per block
    total_blocks: int
    original_length: int
    threshold: int


def _blocks_of(secret: bytes) -> List[int]:
    blocks = []
    for offset in range(0, len(secret), _BLOCK_BYTES):
        chunk = secret[offset : offset + _BLOCK_BYTES]
        blocks.append(int.from_bytes(chunk, "big"))
    return blocks


def _bytes_of(blocks: Sequence[int], original_length: int) -> bytes:
    out = bytearray()
    for index, block in enumerate(blocks):
        remaining = original_length - index * _BLOCK_BYTES
        width = min(_BLOCK_BYTES, remaining)
        # Legitimate blocks always fit in ``width`` bytes; a garbage
        # reconstruction (wrong shares) may be any field element, so mask
        # rather than crash — the caller gets bytes either way, just not
        # the secret.
        masked = int(block) % (1 << (8 * width))
        out.extend(masked.to_bytes(width, "big"))
    return bytes(out)


def _eval_polynomial(coefficients: Sequence[int], x: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % PRIME
    return result


def split_secret(
    secret: bytes, n: int, k: int, rng: SeededRng
) -> List[SecretShare]:
    """Split ``secret`` into ``n`` shares, any ``k`` of which reconstruct.

    Coefficients are drawn from the supplied deterministic RNG so
    experiments replay; a deployment would use an OS CSPRNG here.
    """
    if not 1 <= k <= n:
        raise CryptoError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n >= PRIME:
        raise CryptoError("n must be smaller than the field size")
    if not secret:
        raise CryptoError("cannot split an empty secret")
    blocks = _blocks_of(secret)
    # One random polynomial of degree k-1 per block; the constant term is
    # the block value.
    polynomials = [
        [block] + [rng.randint(0, PRIME - 1) for _ in range(k - 1)]
        for block in blocks
    ]
    shares = []
    for index in range(1, n + 1):
        values = tuple(_eval_polynomial(poly, index) for poly in polynomials)
        shares.append(
            SecretShare(
                index=index,
                values=values,
                total_blocks=len(blocks),
                original_length=len(secret),
                threshold=k,
            )
        )
    return shares


def reconstruct_secret(shares: Sequence[SecretShare]) -> bytes:
    """Recover the secret from at least ``threshold`` distinct shares."""
    if not shares:
        raise CryptoError("no shares supplied")
    threshold = shares[0].threshold
    blocks = shares[0].total_blocks
    length = shares[0].original_length
    for share in shares:
        if (
            share.threshold != threshold
            or share.total_blocks != blocks
            or share.original_length != length
        ):
            raise CryptoError("shares belong to different splits")
    distinct: Dict[int, SecretShare] = {share.index: share for share in shares}
    if len(distinct) < threshold:
        raise CryptoError(
            f"need {threshold} distinct shares, got {len(distinct)}"
        )
    chosen = list(distinct.values())[:threshold]
    xs = [share.index for share in chosen]
    recovered_blocks = []
    for block_index in range(blocks):
        ys = [share.values[block_index] for share in chosen]
        recovered_blocks.append(_lagrange_at_zero(xs, ys))
    return _bytes_of(recovered_blocks, length)


def _lagrange_at_zero(xs: Sequence[int], ys: Sequence[int]) -> int:
    total = 0
    for i, (x_i, y_i) in enumerate(zip(xs, ys)):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = (numerator * (-x_j)) % PRIME
            denominator = (denominator * (x_i - x_j)) % PRIME
        total = (total + y_i * numerator * pow(denominator, PRIME - 2, PRIME)) % PRIME
    return total


class DistributedSecretStore:
    """Scatter shares across cloud members; survive departures.

    A thin orchestration layer over :func:`split_secret`: the store
    places one share per member, tracks departures, and reports whether
    reconstruction is still possible — the resilience/privacy trade the
    paper's §V.B sketch implies (higher k: harder for curious members to
    collude, easier to lose to churn).
    """

    def __init__(self, rng: SeededRng) -> None:
        self.rng = rng
        self._holdings: Dict[str, Dict[str, SecretShare]] = {}  # secret -> member -> share
        self._thresholds: Dict[str, int] = {}

    def scatter(
        self, secret_id: str, secret: bytes, members: Sequence[str], k: int
    ) -> int:
        """Split across ``members``; returns the share count placed."""
        if secret_id in self._holdings:
            raise CryptoError(f"secret already scattered: {secret_id!r}")
        shares = split_secret(secret, n=len(members), k=k, rng=self.rng)
        self._holdings[secret_id] = dict(zip(members, shares))
        self._thresholds[secret_id] = k
        return len(shares)

    def member_departed(self, member_id: str) -> None:
        """A member left, taking its shares with it."""
        for holdings in self._holdings.values():
            holdings.pop(member_id, None)

    def can_reconstruct(self, secret_id: str) -> bool:
        """Whether enough share-holders remain."""
        holdings = self._holdings.get(secret_id)
        if holdings is None:
            return False
        return len(holdings) >= self._thresholds[secret_id]

    def reconstruct(self, secret_id: str) -> bytes:
        """Gather surviving shares and recover the secret."""
        holdings = self._holdings.get(secret_id)
        if holdings is None:
            raise CryptoError(f"unknown secret: {secret_id!r}")
        return reconstruct_secret(list(holdings.values()))

    def colluders_needed(self, secret_id: str) -> int:
        """How many curious members must collude to learn the secret."""
        return self._thresholds.get(secret_id, 0)
