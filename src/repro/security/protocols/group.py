"""Group-signature-based authentication (§IV.B.1, second family).

Vehicles enroll into signature groups; a handshake exchanges group
signatures over nonces, so a verifier learns only *which group* the peer
belongs to.  The family's documented properties emerge here as:

* group signature operations are an order of magnitude costlier than
  plain ECDSA (the "high computation cost of the bilinear pairing"
  critique of Islam et al. [12]);
* group state must be periodically re-keyed through infrastructure —
  "heavily rely on some sort of infrastructure such as road side units"
  (Fig. 5).  When the RSU is unreachable and the epoch key is stale, the
  handshake fails;
* privacy is *conditional*: peers cannot identify the signer, but the
  group manager (TA or cluster coordinator) can ``open`` signatures —
  "locations and identities ... are still known to the group
  coordinators".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...errors import SecurityError
from ..crypto import serialize_for_signing
from ..identity import RealIdentity
from ..pki import TrustedAuthority
from .base import (
    AuthProtocol,
    AuthResult,
    EnrollmentReceipt,
    LinkProfile,
    MessageAuthCost,
)

_DEFAULT_LINK = LinkProfile()


@dataclass
class _Membership:
    group_id: str
    member_key: str
    last_rekey: float


class GroupAuthProtocol(AuthProtocol):
    """Threshold-style anonymous authentication within signature groups."""

    name = "group"
    infrastructure_free_handshake = False

    def __init__(
        self,
        authority: TrustedAuthority,
        group_id: str = "vc-group-1",
        rekey_interval_s: float = 300.0,
    ) -> None:
        if rekey_interval_s <= 0:
            raise SecurityError("rekey_interval_s must be positive")
        self.authority = authority
        self.group_id = group_id
        self.rekey_interval_s = rekey_interval_s
        self._members: Dict[str, _Membership] = {}
        self.rekeys = 0
        if not authority.group_signatures.has_group(group_id):
            authority.create_group(group_id)

    # -- enrollment -----------------------------------------------------------

    def enroll(self, real_id: str, now: float = 0.0) -> EnrollmentReceipt:
        if not self.authority.is_registered(real_id):
            self.authority.register_vehicle(RealIdentity(real_id), now)
        member_key = self.authority.join_group(real_id, self.group_id)
        self._members[real_id] = _Membership(
            group_id=self.group_id, member_key=member_key, last_rekey=now
        )
        # Registration + group join: heavier infra involvement.
        return EnrollmentReceipt(
            real_id=real_id, latency_s=2 * _DEFAULT_LINK.infra_rtt_s, infra_messages=4
        )

    def is_enrolled(self, real_id: str) -> bool:
        return real_id in self._members

    def on_air_identity(self, real_id: str, now: float) -> str:
        if real_id not in self._members:
            raise SecurityError(f"vehicle not enrolled: {real_id!r}")
        # Anonymous within the group: the air identity is the group tag.
        return f"grp:{self.group_id}"

    # -- handshake ----------------------------------------------------------------

    def mutual_authenticate(
        self,
        initiator_id: str,
        responder_id: str,
        now: float,
        link: Optional[LinkProfile] = None,
        infra_available: bool = True,
    ) -> AuthResult:
        link = link if link is not None else _DEFAULT_LINK
        total_bytes = 0
        crypto_cost = 0.0
        infra_messages = 0

        for real_id in (initiator_id, responder_id):
            membership = self._members.get(real_id)
            if membership is None:
                return AuthResult(False, 0.0, 0, 0, reason=f"{real_id} not enrolled")
            if now - membership.last_rekey > self.rekey_interval_s:
                # Stale epoch key: must reach the RSU/TA to re-key.
                if not infra_available:
                    return AuthResult(
                        False,
                        link.handshake_latency(1),
                        0,
                        1,
                        reason=f"{real_id} group key stale, no infrastructure",
                    )
                membership.last_rekey = now
                self.rekeys += 1
                infra_messages += 2
                crypto_cost += link.infra_rtt_s

        scheme = self.authority.group_signatures
        success = True
        for prover in (initiator_id, responder_id):
            membership = self._members[prover]
            nonce = serialize_for_signing("gauth", self.group_id, now, prover)
            sign_op = scheme.sign(
                self.group_id, prover, membership.member_key, nonce
            )
            crypto_cost += sign_op.cost_s
            total_bytes += sign_op.size_bytes + 32
            verify_op = scheme.verify(nonce, sign_op.value)
            crypto_cost += verify_op.cost_s
            success = success and verify_op.value

        latency = link.handshake_latency(2) + crypto_cost
        return AuthResult(
            success=success,
            latency_s=latency,
            bytes_on_air=total_bytes,
            rounds=2,
            infra_messages=infra_messages,
            reason="" if success else "group signature invalid",
        )

    # -- steady state -----------------------------------------------------------------

    def message_auth_cost(self, session_established: bool = True) -> MessageAuthCost:
        costs = self.authority.costs
        # No CRL scan (revocation is handled by group re-keying), but the
        # signature itself is large and slow.
        return MessageAuthCost(
            sign_cost_s=costs.group_sign_s,
            verify_cost_s=costs.group_verify_s,
            overhead_bytes=costs.group_signature_bytes,
        )

    def identity_linkable_by_peer(self) -> bool:
        # All members look identical on the air.
        return False

    def coordinator_can_identify(self) -> bool:
        """The conditional-privacy caveat: the manager can open signatures."""
        return True
