"""Randomized infrastructure-light authentication (after Kang et al. [16]).

The vehicle derives its own stream of randomized identities from a
TA-certified seed, so it "does not need the server to generate
pseudonyms every time and does not require the availability of RSUs in
the authentication phase".  Revocation checks use a compact Bloom
pre-filter distributed at enrollment instead of CRL scans.

This is the design point the survey's own authors advocate for dynamic
v-clouds: the cheapest handshake, zero infrastructure messages in the
steady state, and unlinkable on-air identities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ...errors import SecurityError
from ..crypto import HmacScheme, serialize_for_signing
from ..identity import RealIdentity
from ..pki import TrustedAuthority
from ..revocation import BloomRevocationFilter
from .base import (
    AuthProtocol,
    AuthResult,
    EnrollmentReceipt,
    LinkProfile,
    MessageAuthCost,
)

_DEFAULT_LINK = LinkProfile()


@dataclass
class _SeedCredential:
    real_id: str
    seed: bytes
    epoch_s: float


class RandomizedAuthProtocol(AuthProtocol):
    """Self-generated randomized identities; RSU-free authentication."""

    name = "randomized"
    infrastructure_free_handshake = True

    def __init__(
        self,
        authority: TrustedAuthority,
        identity_epoch_s: float = 30.0,
    ) -> None:
        if identity_epoch_s <= 0:
            raise SecurityError("identity_epoch_s must be positive")
        self.authority = authority
        self.identity_epoch_s = identity_epoch_s
        self.hmac = HmacScheme(authority.costs)
        self.bloom = BloomRevocationFilter()
        self._credentials: Dict[str, _SeedCredential] = {}

    # -- enrollment -----------------------------------------------------------

    def enroll(self, real_id: str, now: float = 0.0) -> EnrollmentReceipt:
        if not self.authority.is_registered(real_id):
            self.authority.register_vehicle(RealIdentity(real_id), now)
        seed = hashlib.sha256(f"seed:{real_id}:{self.authority.authority_id}".encode()).digest()
        self._credentials[real_id] = _SeedCredential(
            real_id=real_id, seed=seed, epoch_s=self.identity_epoch_s
        )
        # One registration round trip; the Bloom filter piggybacks on it.
        return EnrollmentReceipt(
            real_id=real_id, latency_s=_DEFAULT_LINK.infra_rtt_s, infra_messages=2
        )

    def is_enrolled(self, real_id: str) -> bool:
        return real_id in self._credentials

    def on_air_identity(self, real_id: str, now: float) -> str:
        credential = self._credentials.get(real_id)
        if credential is None:
            raise SecurityError(f"vehicle not enrolled: {real_id!r}")
        epoch = int(now / credential.epoch_s)
        digest = hashlib.sha256(credential.seed + f":{epoch}".encode()).hexdigest()
        return f"rnd-{digest[:16]}"

    # -- handshake ----------------------------------------------------------------

    def mutual_authenticate(
        self,
        initiator_id: str,
        responder_id: str,
        now: float,
        link: Optional[LinkProfile] = None,
        infra_available: bool = True,
    ) -> AuthResult:
        link = link if link is not None else _DEFAULT_LINK
        crypto_cost = 0.0
        total_bytes = 0
        success = True
        for real_id in (initiator_id, responder_id):
            credential = self._credentials.get(real_id)
            if credential is None:
                return AuthResult(False, 0.0, 0, 0, reason=f"{real_id} not enrolled")
            identity = self.on_air_identity(real_id, now)
            # One signature proves seed certification at first use; the
            # randomized scheme amortizes it with an HMAC chain, so the
            # handshake itself is MAC-only.
            challenge = serialize_for_signing("rauth", identity, now)
            tag_op = self.hmac.tag(credential.seed, challenge)
            verify_op = self.hmac.verify(credential.seed, challenge, tag_op.value)
            crypto_cost += tag_op.cost_s + verify_op.cost_s
            total_bytes += tag_op.size_bytes + 32
            bloom_op = self.bloom.might_be_revoked(real_id)
            crypto_cost += bloom_op.cost_s
            if bloom_op.value:
                # Possible revocation: must confirm with the TA.
                if not infra_available:
                    return AuthResult(
                        False,
                        link.handshake_latency(1) + crypto_cost,
                        total_bytes,
                        1,
                        reason=f"{real_id} flagged by filter, no infra to confirm",
                    )
                crypto_cost += link.infra_rtt_s
                crl_op = self.authority.crl.check(real_id)
                crypto_cost += crl_op.cost_s
                if crl_op.value:
                    return AuthResult(
                        False,
                        link.handshake_latency(2) + crypto_cost,
                        total_bytes,
                        2,
                        infra_messages=2,
                        reason=f"{real_id} revoked",
                    )
            success = success and verify_op.value
        return AuthResult(
            success=success,
            latency_s=link.handshake_latency(2) + crypto_cost,
            bytes_on_air=total_bytes,
            rounds=2,
            reason="" if success else "MAC verification failed",
        )

    def revoke(self, real_id: str) -> None:
        """Revoke a vehicle: CRL entry plus Bloom filter update."""
        self.authority.crl.revoke(real_id)
        self.bloom.add(real_id)

    # -- steady state -----------------------------------------------------------------

    def message_auth_cost(self, session_established: bool = True) -> MessageAuthCost:
        costs = self.authority.costs
        return MessageAuthCost(
            sign_cost_s=costs.hmac_s,
            verify_cost_s=costs.hmac_s,
            overhead_bytes=costs.hmac_bytes,
        )

    def identity_linkable_by_peer(self) -> bool:
        return False
