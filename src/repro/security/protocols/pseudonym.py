"""Pseudonym-based authentication (§IV.B.1, first family).

Each vehicle holds a TA-issued pool of certified pseudonyms and rotates
through them.  A handshake exchanges certificates and signed nonces both
ways; each side verifies the peer's certificate against the TA key,
verifies the nonce signature, and scans the CRL for the peer's pseudonym.

The family's documented weaknesses emerge from the cost model:

* the CRL scan is linear in the number of revoked certificates ("the
  checking process of the similarly huge pool of revoked certificates is
  time-consuming"), so handshake latency grows as the CRL grows;
* every message carries a certificate plus signature, the "high message
  authentication overhead" of Fig. 5;
* the TA can always link pseudonyms to the real identity (escrow), so
  "privacy isn't fully preserved" against the identity issuer.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import SecurityError
from ..crypto import serialize_for_signing
from ..identity import PseudonymPool, RealIdentity, RotatingIdentity
from ..pki import TrustedAuthority
from .base import (
    AuthProtocol,
    AuthResult,
    EnrollmentReceipt,
    LinkProfile,
    MessageAuthCost,
)

_DEFAULT_LINK = LinkProfile()


class PseudonymAuthProtocol(AuthProtocol):
    """Certificate-pool pseudonymous authentication."""

    name = "pseudonym"
    infrastructure_free_handshake = True

    def __init__(
        self,
        authority: TrustedAuthority,
        pool_size: int = 20,
        change_interval_s: float = 60.0,
    ) -> None:
        if pool_size < 2:
            raise SecurityError("pool_size must be at least 2")
        self.authority = authority
        self.pool_size = pool_size
        self.change_interval_s = change_interval_s
        self._pools: Dict[str, PseudonymPool] = {}
        self._rotators: Dict[str, RotatingIdentity] = {}
        self.refills = 0

    # -- enrollment -----------------------------------------------------------

    def enroll(self, real_id: str, now: float = 0.0) -> EnrollmentReceipt:
        if not self.authority.is_registered(real_id):
            self.authority.register_vehicle(RealIdentity(real_id), now)
        pool = self.authority.issue_pseudonyms(real_id, self.pool_size, now)
        self._pools[real_id] = pool
        self._rotators[real_id] = RotatingIdentity(pool, self.change_interval_s)
        # Registration + pool download: two infra round trips.
        latency = 2 * _DEFAULT_LINK.infra_rtt_s
        return EnrollmentReceipt(real_id=real_id, latency_s=latency, infra_messages=4)

    def is_enrolled(self, real_id: str) -> bool:
        return real_id in self._pools

    def on_air_identity(self, real_id: str, now: float) -> str:
        rotator = self._rotators.get(real_id)
        if rotator is None:
            raise SecurityError(f"vehicle not enrolled: {real_id!r}")
        return rotator.current_identity(now)

    def identity_provider(self, real_id: str) -> RotatingIdentity:
        """Return the rotating identity provider for beacon integration."""
        rotator = self._rotators.get(real_id)
        if rotator is None:
            raise SecurityError(f"vehicle not enrolled: {real_id!r}")
        return rotator

    # -- handshake ----------------------------------------------------------------

    def mutual_authenticate(
        self,
        initiator_id: str,
        responder_id: str,
        now: float,
        link: Optional[LinkProfile] = None,
        infra_available: bool = True,
    ) -> AuthResult:
        link = link if link is not None else _DEFAULT_LINK
        total_bytes = 0
        crypto_cost = 0.0
        infra_messages = 0
        costs = self.authority.costs

        for real_id in (initiator_id, responder_id):
            pool = self._pools.get(real_id)
            if pool is None:
                return AuthResult(False, 0.0, 0, 0, reason=f"{real_id} not enrolled")
            if pool.remaining <= 1:
                # Pool refill is an infrastructure interaction.
                if not infra_available:
                    return AuthResult(
                        False,
                        link.handshake_latency(1),
                        0,
                        1,
                        reason=f"{real_id} pseudonym pool exhausted, no infra",
                    )
                self.authority.refill_pseudonyms(real_id, pool, self.pool_size, now)
                self.refills += 1
                infra_messages += 2
                crypto_cost += link.infra_rtt_s

        side_results = []
        for prover, verifier in (
            (initiator_id, responder_id),
            (responder_id, initiator_id),
        ):
            pseudonym = self._pools[prover].current()
            nonce = serialize_for_signing("auth", prover, verifier, now)
            sign_op = self.authority.signatures.sign(pseudonym.keypair, nonce)
            crypto_cost += sign_op.cost_s
            total_bytes += sign_op.size_bytes + costs.certificate_bytes + 32

            cert_op = self.authority.verify_certificate(pseudonym.certificate, now)
            crypto_cost += cert_op.cost_s
            sig_op = self.authority.signatures.verify(
                pseudonym.keypair.public_id, nonce, sign_op.value
            )
            crypto_cost += sig_op.cost_s
            crl_op = self.authority.crl.check(pseudonym.pseudonym_id)
            crypto_cost += crl_op.cost_s
            side_results.append(
                cert_op.value and sig_op.value and not crl_op.value
            )

        success = all(side_results)
        latency = link.handshake_latency(2) + crypto_cost
        reason = "" if success else "credential invalid or revoked"
        return AuthResult(
            success=success,
            latency_s=latency,
            bytes_on_air=total_bytes,
            rounds=2,
            infra_messages=infra_messages,
            reason=reason,
        )

    # -- steady state -----------------------------------------------------------------

    def message_auth_cost(self, session_established: bool = True) -> MessageAuthCost:
        costs = self.authority.costs
        # Every message carries certificate + signature; the verifier
        # re-checks the CRL (this is the family's overhead signature).
        crl_cost = self.authority.crl.check("probe").cost_s
        return MessageAuthCost(
            sign_cost_s=costs.ecdsa_sign_s,
            verify_cost_s=costs.ecdsa_verify_s * 2 + crl_cost,
            overhead_bytes=costs.signature_bytes + costs.certificate_bytes,
        )

    def identity_linkable_by_peer(self) -> bool:
        # Within one rotation interval, yes; across rotations, no.
        return False
