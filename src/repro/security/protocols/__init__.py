"""Authentication protocol families of the paper's §IV.B."""

from .base import (
    AuthProtocol,
    AuthResult,
    EnrollmentReceipt,
    LinkProfile,
    MessageAuthCost,
)
from .group import GroupAuthProtocol
from .hybrid import HybridAuthProtocol
from .pseudonym import PseudonymAuthProtocol
from .randomized import RandomizedAuthProtocol

__all__ = [
    "AuthProtocol",
    "AuthResult",
    "EnrollmentReceipt",
    "GroupAuthProtocol",
    "HybridAuthProtocol",
    "LinkProfile",
    "MessageAuthCost",
    "PseudonymAuthProtocol",
    "RandomizedAuthProtocol",
]
