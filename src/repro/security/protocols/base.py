"""Authentication protocol interface.

Protocols expose three measurable surfaces, matching the axes of the
paper's Fig. 5 comparison:

* ``enroll``      — the registration-phase cost (always involves the TA);
* ``mutual_authenticate`` — the V2V handshake: latency, bytes, rounds,
  and how many *infrastructure* messages it needed right now;
* ``message_overhead_bytes`` / ``sign_message`` / ``verify_message`` —
  the steady-state per-message authentication cost.

A handshake is attempted under a :class:`LinkProfile` describing current
radio conditions, and with an ``infra_available`` flag — protocols that
need the RSU/TA mid-handshake fail when it is False, which is how
experiment E3 (and the disaster runs of E2/E10) expose infrastructure
reliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import AuthenticationError


@dataclass(frozen=True)
class LinkProfile:
    """Current radio conditions for a handshake."""

    v2v_latency_s: float = 0.004
    infra_rtt_s: float = 0.050

    def handshake_latency(self, rounds: int) -> float:
        """Air-time latency of a ``rounds``-message V2V exchange."""
        return rounds * self.v2v_latency_s


@dataclass(frozen=True)
class EnrollmentReceipt:
    """Result of registration with the TA."""

    real_id: str
    latency_s: float
    infra_messages: int


@dataclass(frozen=True)
class AuthResult:
    """Outcome of one mutual authentication attempt."""

    success: bool
    latency_s: float
    bytes_on_air: int
    rounds: int
    infra_messages: int = 0
    reason: str = ""

    def require_success(self) -> "AuthResult":
        """Raise if the handshake failed; returns self otherwise."""
        if not self.success:
            raise AuthenticationError(f"authentication failed: {self.reason}")
        return self


@dataclass(frozen=True)
class MessageAuthCost:
    """Cost of authenticating one steady-state message."""

    sign_cost_s: float
    verify_cost_s: float
    overhead_bytes: int


class AuthProtocol:
    """Base class for the protocol families of §IV.B."""

    name = "base"
    #: True if the handshake itself can proceed with no infrastructure.
    infrastructure_free_handshake = True

    def enroll(self, real_id: str, now: float = 0.0) -> EnrollmentReceipt:
        """Register a vehicle with the TA (one-time, infra required)."""
        raise NotImplementedError

    def is_enrolled(self, real_id: str) -> bool:
        """Return True if the vehicle completed enrollment."""
        raise NotImplementedError

    def mutual_authenticate(
        self,
        initiator_id: str,
        responder_id: str,
        now: float,
        link: Optional[LinkProfile] = None,
        infra_available: bool = True,
    ) -> AuthResult:
        """Run a mutual V2V handshake between two enrolled vehicles."""
        raise NotImplementedError

    def message_auth_cost(self, session_established: bool = True) -> MessageAuthCost:
        """Per-message signing/verification cost in steady state."""
        raise NotImplementedError

    def on_air_identity(self, real_id: str, now: float) -> str:
        """The identity this protocol exposes on the air right now."""
        raise NotImplementedError

    def identity_linkable_by_peer(self) -> bool:
        """Whether an eavesdropping peer can link consecutive identities.

        Used by the privacy experiment to sanity-check measured
        linkability against the protocol's design intent.
        """
        raise NotImplementedError
