"""Hybrid pseudonym + group authentication (after Rajput et al. [31]).

Pseudonyms act as *trapdoors* inside a group context: the first contact
between two vehicles runs a pseudonym-certificate handshake, after which
the pair derives a session key and authenticates subsequent exchanges
with cheap HMACs.  Vehicles are "not ... involved in the certificate
revocation list management" — revocation rides on short pseudonym
lifetimes instead of CRL scans — so the handshake avoids both the CRL
cost of the pseudonym family and the pairing cost of the group family.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ...errors import SecurityError
from ..crypto import HmacScheme, serialize_for_signing
from ..identity import PseudonymPool, RealIdentity, RotatingIdentity
from ..pki import TrustedAuthority
from .base import (
    AuthProtocol,
    AuthResult,
    EnrollmentReceipt,
    LinkProfile,
    MessageAuthCost,
)

_DEFAULT_LINK = LinkProfile()


class HybridAuthProtocol(AuthProtocol):
    """First-contact certificates, then HMAC sessions; no CRL scans."""

    name = "hybrid"
    infrastructure_free_handshake = True

    def __init__(
        self,
        authority: TrustedAuthority,
        pool_size: int = 20,
        change_interval_s: float = 60.0,
        session_lifetime_s: float = 120.0,
    ) -> None:
        self.authority = authority
        self.pool_size = pool_size
        self.change_interval_s = change_interval_s
        self.session_lifetime_s = session_lifetime_s
        self.hmac = HmacScheme(authority.costs)
        self._pools: Dict[str, PseudonymPool] = {}
        self._rotators: Dict[str, RotatingIdentity] = {}
        self._sessions: Dict[Tuple[str, str], float] = {}  # pair -> established_at
        self.session_hits = 0
        self.full_handshakes = 0

    # -- enrollment -----------------------------------------------------------

    def enroll(self, real_id: str, now: float = 0.0) -> EnrollmentReceipt:
        if not self.authority.is_registered(real_id):
            self.authority.register_vehicle(RealIdentity(real_id), now)
        pool = self.authority.issue_pseudonyms(real_id, self.pool_size, now)
        self._pools[real_id] = pool
        self._rotators[real_id] = RotatingIdentity(pool, self.change_interval_s)
        return EnrollmentReceipt(
            real_id=real_id, latency_s=2 * _DEFAULT_LINK.infra_rtt_s, infra_messages=4
        )

    def is_enrolled(self, real_id: str) -> bool:
        return real_id in self._pools

    def on_air_identity(self, real_id: str, now: float) -> str:
        rotator = self._rotators.get(real_id)
        if rotator is None:
            raise SecurityError(f"vehicle not enrolled: {real_id!r}")
        return rotator.current_identity(now)

    # -- handshake ----------------------------------------------------------------

    def _pair_key(self, a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def has_session(self, a: str, b: str, now: float) -> bool:
        """Return True if an unexpired session exists for the pair."""
        established = self._sessions.get(self._pair_key(a, b))
        return established is not None and now - established <= self.session_lifetime_s

    def mutual_authenticate(
        self,
        initiator_id: str,
        responder_id: str,
        now: float,
        link: Optional[LinkProfile] = None,
        infra_available: bool = True,
    ) -> AuthResult:
        link = link if link is not None else _DEFAULT_LINK
        for real_id in (initiator_id, responder_id):
            if real_id not in self._pools:
                return AuthResult(False, 0.0, 0, 0, reason=f"{real_id} not enrolled")

        costs = self.authority.costs
        if self.has_session(initiator_id, responder_id, now):
            # Fast path: mutual HMAC challenge over the session key.
            self.session_hits += 1
            session_key = self._session_key(initiator_id, responder_id)
            challenge = serialize_for_signing("fast", initiator_id, responder_id, now)
            tag_op = self.hmac.tag(session_key, challenge)
            verify_op = self.hmac.verify(session_key, challenge, tag_op.value)
            crypto_cost = 2 * (tag_op.cost_s + verify_op.cost_s)
            return AuthResult(
                success=verify_op.value,
                latency_s=link.handshake_latency(2) + crypto_cost,
                bytes_on_air=2 * (tag_op.size_bytes + 32),
                rounds=2,
            )

        # Slow path: certificate handshake (no CRL scan) + key agreement.
        self.full_handshakes += 1
        crypto_cost = 0.0
        total_bytes = 0
        success = True
        for prover in (initiator_id, responder_id):
            pseudonym = self._pools[prover].current()
            nonce = serialize_for_signing("hauth", prover, now)
            sign_op = self.authority.signatures.sign(pseudonym.keypair, nonce)
            cert_op = self.authority.verify_certificate(pseudonym.certificate, now)
            sig_op = self.authority.signatures.verify(
                pseudonym.keypair.public_id, nonce, sign_op.value
            )
            crypto_cost += sign_op.cost_s + cert_op.cost_s + sig_op.cost_s
            total_bytes += sign_op.size_bytes + costs.certificate_bytes + 32
            success = success and cert_op.value and sig_op.value
        if success:
            self._sessions[self._pair_key(initiator_id, responder_id)] = now
        return AuthResult(
            success=success,
            latency_s=link.handshake_latency(2) + crypto_cost,
            bytes_on_air=total_bytes,
            rounds=2,
            reason="" if success else "certificate invalid",
        )

    def _session_key(self, a: str, b: str) -> bytes:
        pair = self._pair_key(a, b)
        return hashlib.sha256(f"session:{pair[0]}:{pair[1]}".encode()).digest()

    # -- steady state -----------------------------------------------------------------

    def message_auth_cost(self, session_established: bool = True) -> MessageAuthCost:
        costs = self.authority.costs
        if session_established:
            return MessageAuthCost(
                sign_cost_s=costs.hmac_s,
                verify_cost_s=costs.hmac_s,
                overhead_bytes=costs.hmac_bytes,
            )
        return MessageAuthCost(
            sign_cost_s=costs.ecdsa_sign_s,
            verify_cost_s=costs.ecdsa_verify_s * 2,
            overhead_bytes=costs.signature_bytes + costs.certificate_bytes,
        )

    def identity_linkable_by_peer(self) -> bool:
        return False
