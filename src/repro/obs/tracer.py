"""Causal tracing for simulation runs.

A :class:`Tracer` records :class:`Span`s — named intervals of *simulated*
time with parent/child links and a trace id shared by every span that
belongs to one logical journey (a task from submit to completion, a
message from send to delivery, a storage operation through its quorum).
Spans carry free-form attributes, point-in-time events, and *causal
links* to other spans; the fault-injection layer registers its fault
spans as "active", and any span that degrades while a fault window is
open links back to it, so a stale read can be walked back to the
partition that caused it (:meth:`Tracer.explain`).

Determinism contract: the tracer never touches the engine queue, the
RNG, or the metrics registry.  Span and trace ids come from plain
counters, timestamps come from the injected sim-time clock, and every
hook in the simulator is guarded by an ``is None`` check — so a seeded
run produces byte-identical metrics whether tracing is on or off, and
tracing-off costs one attribute test per hook.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: How the wireless channel decides which frames deserve spans.
#:
#: * ``"tagged"`` (default) — only frames whose message carries a trace
#:   context (i.e. frames that belong to a journey someone is tracing);
#: * ``"all"`` — every frame, including beacons (expensive, exhaustive);
#: * ``"off"`` — no frame spans even when a tracer is attached.
CHANNEL_FRAME_MODES = ("tagged", "all", "off")

#: A portable span reference: ``(trace_id, span_id)``.  This is the form
#: threaded through message metadata so a context survives serialization
#: boundaries (routing hops, handovers) without carrying object graphs.
TraceContext = Tuple[str, str]


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation inside a span."""

    time: float
    name: str
    attrs: Mapping[str, Any]


@dataclass
class Span:
    """One named interval of simulated time inside a trace."""

    span_id: str
    trace_id: str
    name: str
    subsystem: str
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    status: str = "open"
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    #: Span ids this span is causally linked to (e.g. the fault that
    #: was active when this span degraded).
    links: Tuple[str, ...] = ()

    @property
    def context(self) -> TraceContext:
        """The portable ``(trace_id, span_id)`` reference for this span."""
        return (self.trace_id, self.span_id)

    @property
    def duration_s(self) -> Optional[float]:
        """Sim-time duration, or None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def ended(self) -> bool:
        """Whether :meth:`Tracer.end_span` has run for this span."""
        return self.end is not None

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable flat view of the span."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "subsystem": self.subsystem,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [
                {"time": e.time, "name": e.name, "attrs": dict(e.attrs)}
                for e in self.events
            ],
            "links": list(self.links),
        }


ParentRef = Union[Span, TraceContext, None]


class Tracer:
    """Collects causal spans keyed by simulated time.

    ``clock`` supplies the current sim time (normally ``lambda:
    world.now``).  ``max_spans`` bounds memory: once reached, new spans
    are still handed to callers (so instrumentation never branches) but
    are not retained, and :attr:`dropped_spans` counts the loss
    explicitly.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        max_spans: int = 100_000,
        channel_frames: str = "tagged",
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        if channel_frames not in CHANNEL_FRAME_MODES:
            raise ValueError(
                f"channel_frames must be one of {CHANNEL_FRAME_MODES}, got {channel_frames!r}"
            )
        self._clock = clock
        self.max_spans = max_spans
        self.channel_frames = channel_frames
        self._spans: Dict[str, Span] = {}
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        #: Spans that arrived after the ``max_spans`` cap (not retained).
        self.dropped_spans = 0
        #: span_id -> expiry sim-time (None = active until end of run).
        self._active_faults: Dict[str, Optional[float]] = {}

    # -- span lifecycle -----------------------------------------------------

    def start_span(
        self,
        name: str,
        subsystem: str = "",
        parent: ParentRef = None,
        trace_id: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> Span:
        """Open a span; a span with no parent and no trace id roots a new trace."""
        parent_id: Optional[str] = None
        if isinstance(parent, Span):
            trace_id = trace_id or parent.trace_id
            parent_id = parent.span_id
        elif parent is not None:  # a (trace_id, span_id) context tuple
            trace_id = trace_id or parent[0]
            parent_id = parent[1]
        if trace_id is None:
            trace_id = f"t{next(self._trace_ids)}"
        span = Span(
            span_id=f"s{next(self._span_ids)}",
            trace_id=trace_id,
            name=name,
            subsystem=subsystem,
            start=self._clock(),
            parent_id=parent_id,
            attrs=dict(attrs) if attrs else {},
        )
        if len(self._spans) < self.max_spans:
            self._spans[span.span_id] = span
        else:
            self.dropped_spans += 1
        return span

    def end_span(
        self,
        span: Span,
        status: str = "ok",
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Close a span; idempotent (the first close wins)."""
        if span.end is not None:
            return
        span.end = self._clock()
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    def add_event(self, span: Span, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to a span."""
        span.events.append(SpanEvent(time=self._clock(), name=name, attrs=attrs))

    def link(self, span: Span, *targets: Union[Span, str]) -> None:
        """Causally link ``span`` to other spans (deduplicated, ordered)."""
        existing = set(span.links)
        added = []
        for target in targets:
            target_id = target.span_id if isinstance(target, Span) else target
            if target_id not in existing:
                existing.add(target_id)
                added.append(target_id)
        span.links = span.links + tuple(added)

    # -- fault windows ------------------------------------------------------

    def activate_fault(self, span: Span, until: Optional[float] = None) -> None:
        """Register a fault span as active (until ``until``, or forever)."""
        self._active_faults[span.span_id] = until
        if len(self._spans) >= self.max_spans and span.span_id not in self._spans:
            # Fault spans are the anchors causal explanations hang off;
            # retain them even past the cap (the cap is for bulk spans).
            self._spans[span.span_id] = span

    def deactivate_fault(self, span: Span) -> None:
        """Explicitly close a fault window (idempotent)."""
        self._active_faults.pop(span.span_id, None)

    def active_fault_spans(self) -> List[Span]:
        """Fault spans whose window covers the current sim time.

        Expiry is evaluated lazily against the clock, so no engine
        events are ever scheduled on the tracer's behalf.
        """
        now = self._clock()
        live: List[Span] = []
        expired: List[str] = []
        for span_id, until in self._active_faults.items():
            if until is not None and now > until:
                expired.append(span_id)
                continue
            span = self._spans.get(span_id)
            if span is not None:
                live.append(span)
        for span_id in expired:
            del self._active_faults[span_id]
        return live

    def link_active_faults(self, span: Span) -> int:
        """Link every currently active fault span to ``span``.

        Returns the number of fault spans linked — the degradation
        hooks call this so "which fault broke this operation" is
        answerable straight from the trace.
        """
        faults = self.active_fault_spans()
        if faults:
            self.link(span, *faults)
        return len(faults)

    # -- channel sampling ---------------------------------------------------

    def wants_frame(self, message: Any) -> bool:
        """Whether the channel should open spans for this message."""
        if self.channel_frames == "all":
            return True
        if self.channel_frames == "off":
            return False
        return getattr(message, "trace_ctx", None) is not None

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def get(self, span_id: str) -> Optional[Span]:
        """Return the retained span with this id, if any."""
        return self._spans.get(span_id)

    def spans(self) -> List[Span]:
        """All retained spans in creation order."""
        return list(self._spans.values())

    def trace(self, trace_id: str) -> List[Span]:
        """All retained spans of one trace, in creation order."""
        return [s for s in self._spans.values() if s.trace_id == trace_id]

    def roots(self) -> List[Span]:
        """Retained spans with no parent (trace roots)."""
        return [s for s in self._spans.values() if s.parent_id is None]

    def find(self, name_prefix: str = "", subsystem: str = "") -> List[Span]:
        """Retained spans filtered by name prefix and/or subsystem."""
        return [
            s
            for s in self._spans.values()
            if s.name.startswith(name_prefix)
            and (not subsystem or s.subsystem == subsystem)
        ]

    def ancestry(self, span: Span) -> List[Span]:
        """The span's retained ancestors, nearest first."""
        chain: List[Span] = []
        seen = {span.span_id}
        current = span
        while current.parent_id is not None:
            parent = self._spans.get(current.parent_id)
            if parent is None or parent.span_id in seen:
                break
            chain.append(parent)
            seen.add(parent.span_id)
            current = parent
        return chain

    def explain(self, span: Span) -> List[Span]:
        """Walk a span back to its causes.

        Returns the span, its ancestors (nearest first), and every span
        linked from any of them (fault spans, typically) — the chain an
        E12-style post-mortem reads to answer "which fault broke this
        read".
        """
        chain = [span] + self.ancestry(span)
        seen = {s.span_id for s in chain}
        linked: List[Span] = []
        for member in chain:
            for target_id in member.links:
                if target_id in seen:
                    continue
                seen.add(target_id)
                target = self._spans.get(target_id)
                if target is not None:
                    linked.append(target)
        return chain + linked

    # -- rendering / export -------------------------------------------------

    def render_trace(self, trace_id: str) -> str:
        """Render one trace as an indented tree of spans."""
        members = self.trace(trace_id)
        if not members:
            return f"<empty trace {trace_id}>"
        by_parent: Dict[Optional[str], List[Span]] = {}
        ids = {s.span_id for s in members}
        for span in members:
            # A span whose parent was not retained renders as a root.
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)
        lines = [f"trace {trace_id}"]

        def _walk(parent: Optional[str], depth: int) -> None:
            for span in by_parent.get(parent, []):
                end = f"{span.end:.3f}" if span.end is not None else "…"
                attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
                links = f" ~> {','.join(span.links)}" if span.links else ""
                lines.append(
                    f"{'  ' * (depth + 1)}[{span.start:.3f} → {end}] "
                    f"{span.name} ({span.status})"
                    + (f" {attrs}" if attrs else "")
                    + links
                )
                for event in span.events:
                    event_attrs = " ".join(f"{k}={v}" for k, v in event.attrs.items())
                    lines.append(
                        f"{'  ' * (depth + 2)}@ {event.time:.3f} {event.name}"
                        + (f" {event_attrs}" if event_attrs else "")
                    )
                _walk(span.span_id, depth + 1)

        _walk(None, 0)
        return "\n".join(lines)

    def trace_summaries(self) -> List[Dict[str, Any]]:
        """One summary row per trace: root, span/status counts, duration."""
        grouped: Dict[str, List[Span]] = {}
        for span in self._spans.values():
            grouped.setdefault(span.trace_id, []).append(span)
        summaries: List[Dict[str, Any]] = []
        for trace_id, members in grouped.items():
            root = next((s for s in members if s.parent_id is None), members[0])
            statuses: Dict[str, int] = {}
            linked_faults = 0
            for span in members:
                statuses[span.status] = statuses.get(span.status, 0) + 1
                linked_faults += len(span.links)
            ends = [s.end for s in members if s.end is not None]
            summaries.append(
                {
                    "trace_id": trace_id,
                    "root": root.name,
                    "spans": len(members),
                    "statuses": statuses,
                    "start": min(s.start for s in members),
                    "end": max(ends) if ends else None,
                    "linked_faults": linked_faults,
                }
            )
        return summaries

    def export_jsonl(self, path: str) -> int:
        """Write every retained span as one JSON object per line."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(spans)


def trace_context_of(parent: ParentRef) -> Optional[TraceContext]:
    """Normalize a span or context tuple into a :data:`TraceContext`."""
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    return (parent[0], parent[1])


__all__: Sequence[str] = (
    "CHANNEL_FRAME_MODES",
    "Span",
    "SpanEvent",
    "TraceContext",
    "Tracer",
    "trace_context_of",
)
