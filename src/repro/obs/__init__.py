"""Observability: causal tracing, structured events, exporters, profiling.

The dependability story of the paper (Sec. V) needs more than aggregate
counters — it needs to *explain* a degraded run.  This package provides
the four tools the rest of the stack hooks into:

* :class:`Tracer` — causal spans in simulated time, with trace ids
  threaded through message metadata so one task's journey survives
  routing hops and handovers, and fault links so a stale read walks
  back to the partition that caused it;
* :class:`EventLog` — bounded structured event records with subsystem,
  severity and attributes, exportable as JSONL;
* exporters — Prometheus text format and a combined JSON run report;
* :class:`Profiler` — wall-clock cost per engine event label, strictly
  separated from deterministic sim time.

Everything is opt-in: a world without observability attached pays one
``is None`` check per hook, and a world *with* it attached produces
byte-identical seeded metrics, because no obs component ever touches
the engine queue, the RNG, or the metrics registry.

Attach via :meth:`repro.sim.world.World.enable_observability`::

    obs = world.enable_observability(profile=True)
    ...run...
    print(obs.tracer.render_trace(trace_id))
    obs.tracer.export_jsonl("trace.jsonl")
    print(prometheus_text(world.metrics))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .events import SEVERITIES, EventLog, EventRecord
from .exporters import (
    dag_ledger,
    json_report,
    prometheus_text,
    sanitize_metric_name,
    serving_ledger,
    write_json_report,
)
from .profiler import LabelProfile, Profiler
from .tracer import (
    CHANNEL_FRAME_MODES,
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    trace_context_of,
)


@dataclass
class Observability:
    """The bundle a world hands back from ``enable_observability``."""

    tracer: Optional[Tracer] = None
    events: Optional[EventLog] = None
    profiler: Optional[Profiler] = None


__all__ = [
    "CHANNEL_FRAME_MODES",
    "SEVERITIES",
    "EventLog",
    "EventRecord",
    "LabelProfile",
    "Observability",
    "Profiler",
    "Span",
    "SpanEvent",
    "TraceContext",
    "Tracer",
    "dag_ledger",
    "json_report",
    "prometheus_text",
    "sanitize_metric_name",
    "serving_ledger",
    "trace_context_of",
    "write_json_report",
]
