"""Wall-clock profiling of engine event labels.

A :class:`Profiler` aggregates *host* (wall-clock) time per event label.
It is deliberately the one observability component that measures real
time: the engine wraps every callback dispatch in ``perf_counter`` when
a profiler is attached, so after a run you can see which event family —
beacons, frame deliveries, anti-entropy sweeps — actually burned the
host's CPU.

Wall-clock readings never feed back into the simulation: the profiler
writes only its own tables, so seeded runs remain byte-identical with
profiling on or off (the timestamps differ run to run; the sim does
not).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple


@dataclass
class LabelProfile:
    """Aggregate wall-clock cost of one event label."""

    label: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean wall seconds per event (0 when never fired)."""
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable flat view of the profile."""
        return {
            "label": self.label,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


class Profiler:
    """Accumulates per-label wall-clock timings."""

    def __init__(self) -> None:
        self._profiles: Dict[str, LabelProfile] = {}

    def record(self, label: str, seconds: float) -> None:
        """Fold one timed interval into the label's aggregate."""
        profile = self._profiles.get(label)
        if profile is None:
            profile = LabelProfile(label=label)
            self._profiles[label] = profile
        profile.count += 1
        profile.total_s += seconds
        if seconds > profile.max_s:
            profile.max_s = seconds

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Time a block of host code under ``label``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(label, time.perf_counter() - started)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def profile(self, label: str) -> LabelProfile:
        """The aggregate for one label (zeroed if never recorded)."""
        return self._profiles.get(label, LabelProfile(label=label))

    def profiles(self) -> List[LabelProfile]:
        """All aggregates, heaviest total first (ties by label)."""
        return sorted(
            self._profiles.values(), key=lambda p: (-p.total_s, p.label)
        )

    @property
    def total_wall_s(self) -> float:
        """Total measured wall seconds across all labels."""
        return sum(p.total_s for p in self._profiles.values())

    @property
    def total_events(self) -> int:
        """Total measured intervals across all labels."""
        return sum(p.count for p in self._profiles.values())

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable report of every label's aggregate."""
        return {
            "total_wall_s": self.total_wall_s,
            "total_events": self.total_events,
            "labels": [p.as_dict() for p in self.profiles()],
        }

    def render(self, top: int = 15) -> str:
        """An aligned text table of the ``top`` heaviest labels."""
        rows: List[Tuple[str, ...]] = [("label", "count", "total (s)", "mean (µs)", "max (µs)")]
        for profile in self.profiles()[:top]:
            rows.append(
                (
                    profile.label,
                    str(profile.count),
                    f"{profile.total_s:.4f}",
                    f"{profile.mean_s * 1e6:.1f}",
                    f"{profile.max_s * 1e6:.1f}",
                )
            )
        widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
        lines = [" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows]
        lines.insert(1, "-+-".join("-" * w for w in widths))
        return "\n".join(lines)


__all__: Sequence[str] = ("LabelProfile", "Profiler")
