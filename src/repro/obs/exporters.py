"""Render run telemetry into standard formats.

Two exporters:

* :func:`prometheus_text` — the Prometheus text exposition format,
  rendered from a :class:`~repro.sim.metrics.MetricsRegistry`: counters
  and gauges as-is, sample series as summary quantiles with ``_count``
  and ``_sum``, timelines as gauges stamped with their last sim-time.
* :func:`json_report` / :func:`write_json_report` — one structured JSON
  document combining the metrics snapshot with trace summaries, event
  statistics and the wall-clock profile, i.e. everything a run produced.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEAD_RE = re.compile(r"^[^a-zA-Z_:]")

#: The quantiles rendered for every sample series.
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """Coerce a registry name into a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if _LEAD_RE.match(flat):
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(metrics: Any, namespace: str = "repro") -> str:
    """Render a metrics registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(metrics.counters):
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(metrics.counters[name])}")
    for name in sorted(metrics.gauges):
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(metrics.gauges[name])}")
    for name in sorted(metrics.series):
        summary = metrics.summary(name)
        if summary is None:
            continue
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} summary")
        stats = summary.as_dict()
        for quantile, key in SUMMARY_QUANTILES:
            lines.append(f'{flat}{{quantile="{quantile}"}} {repr(stats[key])}')
        lines.append(f"{flat}_sum {repr(summary.mean * summary.count)}")
        lines.append(f"{flat}_count {summary.count}")
    for name in sorted(metrics.timelines):
        points = metrics.timelines[name]
        if not points:
            continue
        flat = sanitize_metric_name(name, namespace) + "_last"
        last_time, last_value = points[-1]
        # Prometheus timestamps are integer milliseconds; sim seconds
        # map 1:1 onto them so relative spacing survives scraping.
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(last_value)} {int(last_time * 1000)}")
    return "\n".join(lines) + "\n"


def _as_sequence(value: Any) -> Sequence[Any]:
    if value is None:
        return ()
    if isinstance(value, (list, tuple)):
        return value
    return (value,)


def serving_ledger(gateway: Any) -> Dict[str, Any]:
    """One gateway's conservation accounting plus typed-reason ledgers.

    Everything a reporter needs to audit the serving path without
    holding the live gateway: the conservation counters from
    :meth:`~repro.serve.gateway.ServiceGateway.accounting`, the typed
    shed/rejection reasons, SLO and latency aggregates, and the
    hedging/batching counters.
    """
    stats = gateway.stats
    return {
        "name": gateway.name,
        "accounting": dict(gateway.accounting()),
        "shed_reasons": {k: stats.shed_reasons[k] for k in sorted(stats.shed_reasons)},
        "rejection_reasons": {
            k: stats.rejection_reasons[k] for k in sorted(stats.rejection_reasons)
        },
        "slo": {
            "hits": stats.slo_hits,
            "misses": stats.slo_misses,
            "miss_rate": stats.slo_miss_rate,
        },
        "latency_s": {
            "count": len(stats.latencies_s),
            "p99": stats.p99_latency_s(),
        },
        "hedges": {
            "launched": stats.hedges_launched,
            "won": stats.hedges_won,
            "cancelled": stats.hedges_cancelled,
        },
        "batching": {
            "batches_dispatched": stats.batches_dispatched,
            "batched_requests": stats.batched_requests,
        },
    }


def dag_ledger(scheduler: Any) -> Dict[str, Any]:
    """One DAG scheduler's conservation accounting plus failure ledger."""
    stats = scheduler.stats
    return {
        "name": scheduler.name,
        "accounting": dict(scheduler.accounting()),
        "failure_reasons": {
            k: stats.failure_reasons[k] for k in sorted(stats.failure_reasons)
        },
        "stages_completed": stats.stages_completed,
        "stages_reexecuted": stats.stages_reexecuted,
        "graph_restarts": stats.graph_restarts,
        "replicas_cancelled": stats.replicas_cancelled,
        "replicas_load_shed": stats.replicas_load_shed,
        "checkpoint_writes": stats.checkpoint_writes,
        "checkpoint_degraded": stats.checkpoint_degraded,
        "deadline_hits": stats.deadline_hits,
        "deadline_misses": stats.deadline_misses,
    }


def json_report(
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    events: Optional[Any] = None,
    profiler: Optional[Any] = None,
    meta: Optional[Mapping[str, Any]] = None,
    serving: Optional[Any] = None,
    dag: Optional[Any] = None,
) -> Dict[str, Any]:
    """Build one structured report from whatever telemetry exists.

    ``serving`` takes a :class:`~repro.serve.gateway.ServiceGateway`
    (or a sequence of them) and ``dag`` a
    :class:`~repro.dag.scheduler.DagScheduler` (or a sequence); their
    conservation accounting and typed-reason ledgers are embedded so a
    run bundle carries the full serving/DAG audit trail without callers
    stitching the ledgers in by hand.
    """
    report: Dict[str, Any] = {"meta": dict(meta) if meta else {}}
    if metrics is not None:
        report["metrics"] = {
            "counters": {k: metrics.counters[k] for k in sorted(metrics.counters)},
            "gauges": {k: metrics.gauges[k] for k in sorted(metrics.gauges)},
            "series": {
                name: summary.as_dict()
                for name in sorted(metrics.series)
                for summary in [metrics.summary(name)]
                if summary is not None
            },
            "timelines": {
                name: [list(point) for point in metrics.timelines[name]]
                for name in sorted(metrics.timelines)
            },
            "truncations": dict(getattr(metrics, "truncations", {})),
        }
    if tracer is not None:
        report["traces"] = {
            "spans": len(tracer),
            "dropped_spans": tracer.dropped_spans,
            "summaries": tracer.trace_summaries(),
        }
    if events is not None:
        report["events"] = {
            "records": len(events),
            "evicted": events.evicted,
            "suppressed": events.suppressed,
            "by_severity": events.count_by_severity(),
        }
    if profiler is not None:
        report["profile"] = profiler.as_dict()
    gateways = _as_sequence(serving)
    if gateways:
        report["serving"] = [serving_ledger(gateway) for gateway in gateways]
    schedulers = _as_sequence(dag)
    if schedulers:
        report["dag"] = [dag_ledger(scheduler) for scheduler in schedulers]
    return report


def write_json_report(
    path: str,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    events: Optional[Any] = None,
    profiler: Optional[Any] = None,
    meta: Optional[Mapping[str, Any]] = None,
    serving: Optional[Any] = None,
    dag: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write :func:`json_report` to ``path``; returns the report dict."""
    report = json_report(
        metrics=metrics,
        tracer=tracer,
        events=events,
        profiler=profiler,
        meta=meta,
        serving=serving,
        dag=dag,
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


__all__: Sequence[str] = (
    "SUMMARY_QUANTILES",
    "dag_ledger",
    "json_report",
    "prometheus_text",
    "sanitize_metric_name",
    "serving_ledger",
    "write_json_report",
)
