"""Bounded structured event telemetry.

An :class:`EventLog` is the narrative companion to the metrics registry:
where counters say *how many* crashes happened, event records say *which
vehicle*, *when*, and *inside which trace*.  Records are plain frozen
dataclasses with a subsystem, a severity, and free-form attributes, held
in a bounded ring (oldest evicted first, evictions counted explicitly)
and exportable as JSONL for offline analysis.

Like the tracer, the log never touches the engine, RNG, or metrics —
emitting events cannot perturb a seeded run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence

#: Severities in increasing order of gravity.
SEVERITIES = ("debug", "info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class EventRecord:
    """One structured telemetry event."""

    time: float
    subsystem: str
    name: str
    severity: str
    attrs: Mapping[str, Any]
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable flat view of the record."""
        return {
            "time": self.time,
            "subsystem": self.subsystem,
            "name": self.name,
            "severity": self.severity,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
        }


class EventLog:
    """A bounded, severity-filtered store of :class:`EventRecord`s."""

    def __init__(
        self,
        clock: Callable[[], float],
        max_events: int = 100_000,
        min_severity: str = "debug",
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        if min_severity not in _SEVERITY_RANK:
            raise ValueError(
                f"min_severity must be one of {SEVERITIES}, got {min_severity!r}"
            )
        self._clock = clock
        self.max_events = max_events
        self.min_severity = min_severity
        self._records: Deque[EventRecord] = deque()
        #: Records evicted by the ring bound (oldest-first eviction).
        self.evicted = 0
        #: Records filtered out below ``min_severity``.
        self.suppressed = 0

    def emit(
        self,
        subsystem: str,
        name: str,
        severity: str = "info",
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[EventRecord]:
        """Record one event; returns the record, or None when filtered."""
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}, expected one of {SEVERITIES}")
        if _SEVERITY_RANK[severity] < _SEVERITY_RANK[self.min_severity]:
            self.suppressed += 1
            return None
        record = EventRecord(
            time=self._clock(),
            subsystem=subsystem,
            name=name,
            severity=severity,
            attrs=attrs,
            trace_id=trace_id,
        )
        if len(self._records) >= self.max_events:
            self._records.popleft()
            self.evicted += 1
        self._records.append(record)
        return record

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[EventRecord]:
        """All retained records, oldest first."""
        return list(self._records)

    def query(
        self,
        subsystem: Optional[str] = None,
        severity: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[EventRecord]:
        """Retained records matching every given filter exactly."""
        return [
            r
            for r in self._records
            if (subsystem is None or r.subsystem == subsystem)
            and (severity is None or r.severity == severity)
            and (name is None or r.name == name)
        ]

    def count_by_severity(self) -> Dict[str, int]:
        """Retained record count per severity (only severities seen)."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.severity] = counts.get(record.severity, 0) + 1
        return counts

    # -- export -------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write every retained record as one JSON object per line."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(records)


__all__: Sequence[str] = ("SEVERITIES", "EventLog", "EventRecord")
