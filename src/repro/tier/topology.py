"""Execution tiers: the existing layers registered under one topology.

The paper's three architectures exist side by side in this repo —
dynamic/parking vehicular clouds (``repro.core``), RSU-anchored edge
clouds, and the conventional :class:`~repro.infra.central_cloud.CentralCloud`.
:class:`TierTopology` registers each as an *execution tier* at one of
three levels (``local`` / ``edge`` / ``cloud``) behind a uniform
dispatch contract, so the :class:`~repro.tier.offloader.TieredOffloader`
can speculate across them without knowing which concrete engine sits
underneath.

Two adapters cover every layer we have:

* :class:`VCloudTier` wraps a :class:`~repro.core.vcloud.VehicularCloud`
  — the local dynamic/parking micro-cloud, or an RSU-anchored edge
  cloud when placed behind a :class:`~repro.tier.backhaul.BackhaulLink`;
* :class:`CentralCloudTier` wraps the datacenter endpoint, always
  behind a backhaul link.

Each dispatch produces a :class:`TierAttempt` that moves through
uplink → execution → downlink and terminates with exactly one typed
reason (``completed``, ``speculation_cancelled``, ``backhaul_lost``,
``deadline``, ...), reported through a single ``on_finish`` callback.
Remote attempts build a *fresh replica task* after the uplink delivers,
with the deadline shrunk by the elapsed transit — the same
fresh-task-per-replica idiom the DAG scheduler and gateway hedging use,
so replica ids never collide and per-cloud conservation stays exact.

Cancellation mirrors the v-cloud contract: ``cancel`` returns False
when the attempt is already terminal or its result frame is in flight
back over the link (too late — the completion will arrive flagged
``cancelled`` and the offloader counts it as *late* rather than a
second winner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.capacity import BacklogEstimator
from ..core.tasks import Task, TaskRecord
from ..core.vcloud import VehicularCloud
from ..errors import ConfigurationError
from ..infra.central_cloud import CentralCloud, CloudResponse
from ..sim.world import World
from .backhaul import BackhaulLink

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import Span

#: Recognised tier levels, nearest to farthest.
TIER_LEVELS = ("local", "edge", "cloud")

#: Typed reason recorded when a losing speculative replica is cancelled.
SPECULATION_CANCELLED = "speculation_cancelled"
#: Typed reason when a request or its result dies on the WAN.
BACKHAUL_LOST = "backhaul_lost"

#: Callback fired exactly once per attempt with its terminal reason.
AttemptFinish = Callable[["TierAttempt", str], None]


@dataclass
class TierAttempt:
    """One speculative replica of a task on one tier."""

    tier_name: str
    level: str
    task: Task
    deadline_at: Optional[float]
    dispatched_at: float
    #: Set when the offloader asked for cancellation; a flagged attempt
    #: can still complete late if its result frame was already in flight.
    cancelled: bool = False
    terminal_reason: Optional[str] = None
    #: Sim time the terminal reason landed (None while live).
    finished_at: Optional[float] = None
    #: The local execution record (v-cloud tiers only, post-uplink).
    record: Optional[TaskRecord] = None
    span: Optional["Span"] = None
    meta: Dict[str, object] = field(default_factory=dict)
    _on_finish: Optional[AttemptFinish] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.terminal_reason is not None


class ExecutionTier:
    """Uniform dispatch contract one level of the hierarchy implements."""

    name: str
    level: str
    link: Optional[BackhaulLink]

    def reachable(self) -> bool:
        """Whether dispatches can reach the tier right now."""
        raise NotImplementedError

    def queue_delay_estimate(self, now: float) -> float:
        """Standing queueing delay a new dispatch would face."""
        raise NotImplementedError

    def estimated_runtime_s(self, work_mi: float) -> float:
        """Expected processing time once assigned (inf when no capacity)."""
        raise NotImplementedError

    def estimated_completion_s(self, task: Task, now: float) -> float:
        """End-to-end estimate: uplink + queue + run + downlink (no RNG)."""
        total = self.queue_delay_estimate(now) + self.estimated_runtime_s(task.work_mi)
        if self.link is not None:
            total += self.link.latency_estimate_s(task.input_bytes)
            total += self.link.latency_estimate_s(task.output_bytes)
        return total

    def dispatch(
        self,
        task: Task,
        deadline_at: Optional[float],
        on_finish: AttemptFinish,
        span: Optional["Span"] = None,
    ) -> TierAttempt:
        """Launch one replica; ``on_finish`` fires exactly once."""
        raise NotImplementedError

    def cancel(self, attempt: TierAttempt, reason: str = SPECULATION_CANCELLED) -> bool:
        """Cancel a live attempt; False when its result is already in flight."""
        raise NotImplementedError


class _LinkedTier(ExecutionTier):
    """Shared uplink/downlink plumbing for tiers behind a backhaul."""

    def __init__(
        self, world: World, name: str, level: str, link: Optional[BackhaulLink]
    ) -> None:
        if level not in TIER_LEVELS:
            raise ConfigurationError(
                f"unknown tier level {level!r}, expected one of {TIER_LEVELS}"
            )
        self.world = world
        self.name = name
        self.level = level
        self.link = link

    def reachable(self) -> bool:
        return self.link is None or self.link.available()

    def _new_attempt(
        self,
        task: Task,
        deadline_at: Optional[float],
        on_finish: AttemptFinish,
        span: Optional["Span"] = None,
    ) -> TierAttempt:
        return TierAttempt(
            tier_name=self.name,
            level=self.level,
            task=task,
            deadline_at=deadline_at,
            dispatched_at=self.world.now,
            span=span,
            _on_finish=on_finish,
        )

    # -- attempt termination -------------------------------------------------

    def _finish(self, attempt: TierAttempt, reason: str) -> None:
        """Terminate an attempt exactly once (later outcomes are dropped)."""
        if attempt.terminal:
            return
        attempt.terminal_reason = reason
        attempt.finished_at = self.world.now
        if attempt._on_finish is not None:
            attempt._on_finish(attempt, reason)

    def _send_up(self, attempt: TierAttempt, submit: Callable[[], None]) -> None:
        """Route the request over the link (if any) to ``submit``."""
        if self.link is None:
            submit()
            return

        def _deliver() -> None:
            if not attempt.terminal:
                submit()

        self.link.transmit(
            attempt.task.input_bytes,
            deliver=_deliver,
            on_lost=lambda _reason: self._finish(attempt, BACKHAUL_LOST),
        )

    def _send_down(self, attempt: TierAttempt) -> None:
        """Route a completed result back over the link (if any)."""
        if self.link is None:
            self._finish(attempt, "completed")
            return
        self.link.transmit(
            attempt.task.output_bytes,
            deliver=lambda: self._finish(attempt, "completed"),
            on_lost=lambda _reason: self._finish(attempt, BACKHAUL_LOST),
        )

    @staticmethod
    def _remaining_s(attempt: TierAttempt, now: float) -> Optional[float]:
        if attempt.deadline_at is None:
            return None
        return attempt.deadline_at - now

    @staticmethod
    def _replica_of(task: Task, deadline_s: Optional[float]) -> Task:
        """Fresh task (fresh id) carrying the residual deadline."""
        return Task(
            work_mi=task.work_mi,
            input_bytes=task.input_bytes,
            output_bytes=task.output_bytes,
            deadline_s=deadline_s,
            required_sensors=task.required_sensors,
            submitter=task.submitter,
        )


class VCloudTier(_LinkedTier):
    """A vehicular cloud (dynamic, parking, or RSU-anchored edge) as a tier."""

    def __init__(
        self,
        world: World,
        name: str,
        level: str,
        cloud: VehicularCloud,
        link: Optional[BackhaulLink] = None,
    ) -> None:
        super().__init__(world, name, level, link)
        self.cloud = cloud
        self.estimator = BacklogEstimator(cloud)
        #: Live attempts keyed by their replica task id.
        self._attempts: Dict[str, TierAttempt] = {}
        cloud.on_task_finished(self._on_cloud_finish)

    def reachable(self) -> bool:
        if not super().reachable():
            return False
        return len(self.estimator.worker_ids()) > 0

    def queue_delay_estimate(self, now: float) -> float:
        return self.estimator.queue_delay_s(now)

    def estimated_runtime_s(self, work_mi: float) -> float:
        workers = self.estimator.worker_ids()
        capacity = self.estimator.aggregate_capacity_mips()
        if not workers or capacity <= 0:
            return float("inf")
        return work_mi / (capacity / len(workers))

    def dispatch(
        self,
        task: Task,
        deadline_at: Optional[float],
        on_finish: AttemptFinish,
        span: Optional["Span"] = None,
    ) -> TierAttempt:
        attempt = self._new_attempt(task, deadline_at, on_finish, span)
        self._send_up(attempt, lambda: self._submit(attempt))
        return attempt

    def _submit(self, attempt: TierAttempt) -> None:
        remaining = self._remaining_s(attempt, self.world.now)
        if remaining is not None and remaining <= 0:
            self._finish(attempt, "deadline")
            return
        replica = self._replica_of(attempt.task, remaining)
        record = self.cloud.submit(replica, trace_parent=attempt.span)
        attempt.record = record
        self._attempts[replica.task_id] = attempt

    def _on_cloud_finish(self, record: TaskRecord, reason: str) -> None:
        attempt = self._attempts.pop(record.task.task_id, None)
        if attempt is None:
            return  # not one of ours (the cloud serves other submitters too)
        if reason == "completed":
            self._send_down(attempt)
        else:
            self._finish(attempt, reason)

    def cancel(self, attempt: TierAttempt, reason: str = SPECULATION_CANCELLED) -> bool:
        if attempt.terminal:
            return False
        attempt.cancelled = True
        if attempt.record is None:
            # Request still on the uplink; kill it before it lands.
            self._finish(attempt, reason)
            return True
        # Routes through the cloud's typed-cancel path; on success the
        # finish listener fires synchronously and terminates the attempt.
        return self.cloud.cancel(attempt.record, reason)


class CentralCloudTier(_LinkedTier):
    """The conventional datacenter endpoint as the ``cloud`` tier."""

    def __init__(
        self,
        world: World,
        name: str,
        cloud: CentralCloud,
        link: BackhaulLink,
        level: str = "cloud",
    ) -> None:
        super().__init__(world, name, level, link)
        self.cloud = cloud
        self._request_seq = 0

    def queue_delay_estimate(self, now: float) -> float:
        return self.cloud.queue_delay_estimate()

    def estimated_runtime_s(self, work_mi: float) -> float:
        return work_mi / self.cloud.compute_mips

    def dispatch(
        self,
        task: Task,
        deadline_at: Optional[float],
        on_finish: AttemptFinish,
        span: Optional["Span"] = None,
    ) -> TierAttempt:
        attempt = self._new_attempt(task, deadline_at, on_finish, span)
        self._request_seq += 1
        request_id = f"{self.name}:{task.task_id}:{self._request_seq}"
        attempt.meta["request_id"] = request_id
        self._send_up(attempt, lambda: self._submit(attempt, request_id))
        return attempt

    def _submit(self, attempt: TierAttempt, request_id: str) -> None:
        remaining = self._remaining_s(attempt, self.world.now)
        if remaining is not None and remaining <= 0:
            self._finish(attempt, "deadline")
            return
        attempt.meta["submitted"] = True

        def _on_complete(_response: CloudResponse) -> None:
            if not attempt.terminal:
                self._send_down(attempt)

        def _on_failure(reason: str) -> None:
            self._finish(attempt, reason)

        self.cloud.submit(
            request_id,
            attempt.task.work_mi,
            on_complete=_on_complete,
            on_failure=_on_failure,
        )

    def cancel(self, attempt: TierAttempt, reason: str = SPECULATION_CANCELLED) -> bool:
        if attempt.terminal:
            return False
        attempt.cancelled = True
        if not attempt.meta.get("submitted"):
            # Request still on the uplink; it is dropped on arrival.
            self._finish(attempt, reason)
            return True
        request_id = str(attempt.meta["request_id"])
        return self.cloud.cancel(request_id, reason)


class TierTopology:
    """Registry of execution tiers, one submit surface for the offloader."""

    def __init__(self) -> None:
        self._tiers: Dict[str, ExecutionTier] = {}
        self._order: List[str] = []

    def register(self, tier: ExecutionTier) -> ExecutionTier:
        """Add a tier; names must be unique, levels must be known."""
        if tier.level not in TIER_LEVELS:
            raise ConfigurationError(
                f"unknown tier level {tier.level!r}, expected one of {TIER_LEVELS}"
            )
        if tier.name in self._tiers:
            raise ConfigurationError(f"tier {tier.name!r} already registered")
        self._tiers[tier.name] = tier
        self._order.append(tier.name)
        return tier

    def tier(self, name: str) -> ExecutionTier:
        if name not in self._tiers:
            raise ConfigurationError(f"unknown tier {name!r}")
        return self._tiers[name]

    def tiers(self) -> List[ExecutionTier]:
        """All tiers in registration order."""
        return [self._tiers[name] for name in self._order]

    def local_tiers(self) -> List[ExecutionTier]:
        return [tier for tier in self.tiers() if tier.level == "local"]

    def remote_tiers(self) -> List[ExecutionTier]:
        """Edge and cloud tiers, nearest level first."""
        remote = [tier for tier in self.tiers() if tier.level != "local"]
        return sorted(remote, key=lambda t: TIER_LEVELS.index(t.level))

    def describe(self) -> str:
        """Stable one-line-per-tier rendering."""
        lines = []
        for tier in self.tiers():
            linked = f" via {tier.link.name}" if tier.link is not None else ""
            lines.append(f"{tier.level}: {tier.name}{linked}")
        return "\n".join(lines)
