"""Tiered offload with speculative execution and graceful failover.

One submit API over the whole hierarchy.  The offloader classifies each
task by its remaining slack and the caller's policy:

* ``local_only``   — the local v-cloud, nothing else;
* ``prefer_local`` — local when healthy, else fail over to the best
  healthy remote tier (a ``failover`` is ledgered);
* ``speculate``    — for deadline-critical tasks: launch replicas on
  the local tier **and** the best feasible remote tier simultaneously,
  first acceptable result wins, the loser is cancelled through the
  existing typed-cancel path (``speculation_cancelled``).

Speculation degrades instead of stalling.  When every remote tier is
demoted (backhaul outage, tripped breaker, no workers) the task
collapses to local execution and ``backhaul_degraded`` is ledgered;
when a remote exists but its end-to-end estimate (uplink + queue +
run + downlink, all read-only signals) cannot beat the deadline, the
task collapses without dispatching remotely and ``no_remote_slack`` is
ledgered.  Either way the local replica always runs, so a dying WAN
costs latency, never deadline safety — the local/remote speculation
argument of "Leveraging Cloud Computing to Make Autonomous Vehicles
Safer" (PAPERS.md).

Every task roots a ``tier.lifecycle`` span with one ``tier.attempt``
child per replica; the winner's span is causally linked from the
lifecycle so traces answer "which tier actually saved this deadline".
Accounting is conservation-grade: each speculated task resolves to
exactly one winner with every loser cancelled, failed, or flagged late
— the ``TierConservation`` chaos invariant audits exactly this via
:meth:`TieredOffloader.accounting` / :meth:`speculation_view`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.tasks import Task
from ..errors import ConfigurationError
from ..sim.world import World
from .health import TierHealthTracker
from .topology import (
    SPECULATION_CANCELLED,
    ExecutionTier,
    TierAttempt,
    TierTopology,
)

#: Submission policies, in escalating aggressiveness.
POLICIES = ("local_only", "prefer_local", "speculate")

#: Degradation reasons ledgered when ``speculate`` collapses to local.
BACKHAUL_DEGRADED = "backhaul_degraded"
NO_REMOTE_SLACK = "no_remote_slack"

#: Terminal reason when no tier at all could take the task.
NO_TIER_AVAILABLE = "no_tier_available"

#: Listener fired once per task with ``(spec, reason)``.
ResolveListener = Callable[["SpeculativeTask", str], None]


@dataclass
class SpeculativeTask:
    """One submitted task and the speculative attempts racing for it."""

    task: Task
    policy: str
    submitted_at: float
    deadline_at: Optional[float]
    attempts: List[TierAttempt] = field(default_factory=list)
    resolved: bool = False
    #: ``"completed"`` or a typed failure reason, once resolved.
    outcome: Optional[str] = None
    winner: Optional[TierAttempt] = None
    resolved_at: Optional[float] = None
    #: Degradation ledgered at submit (``backhaul_degraded`` / ``no_remote_slack``).
    degraded: Optional[str] = None
    span: Optional[object] = None
    _launching: bool = field(default=True, repr=False)


@dataclass
class TierStats:
    """Offloader counters, task-level and attempt-level."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    deadline_hits: int = 0
    deadline_misses: int = 0
    speculated: int = 0
    failovers: int = 0
    degraded: Dict[str, int] = field(default_factory=dict)
    wins_by_tier: Dict[str, int] = field(default_factory=dict)
    attempts_submitted: int = 0
    attempts_won: int = 0
    attempts_cancelled: int = 0
    attempts_failed: int = 0
    attempts_late: int = 0
    latency_sum_s: float = 0.0

    def mean_latency_s(self) -> float:
        return self.latency_sum_s / self.completed if self.completed else 0.0

    def deadline_hit_rate(self) -> float:
        judged = self.deadline_hits + self.deadline_misses
        return self.deadline_hits / judged if judged else 1.0


class TieredOffloader:
    """Submit tasks across the tier hierarchy, first acceptable result wins."""

    def __init__(
        self,
        world: World,
        topology: TierTopology,
        health: Optional[TierHealthTracker] = None,
        name: str = "tiered",
    ) -> None:
        if not topology.tiers():
            raise ConfigurationError("topology has no registered tiers")
        self.world = world
        self.topology = topology
        self.health = health if health is not None else TierHealthTracker(world)
        self.name = name
        self.stats = TierStats()
        self._specs: Dict[str, SpeculativeTask] = {}
        self._resolve_listeners: List[ResolveListener] = []

    # -- listener wiring -----------------------------------------------------

    def on_task_resolved(self, listener: ResolveListener) -> None:
        """Register a listener fired once per task at resolution.

        ``reason`` is ``"completed"`` when some attempt won, else the
        typed failure reason of the last replica standing.  The serving
        gateway uses this to settle its dispatch bookkeeping.
        """
        self._resolve_listeners.append(listener)

    # -- submission ----------------------------------------------------------

    def submit(self, task: Task, policy: str = "prefer_local") -> SpeculativeTask:
        """Submit one task under ``policy``; returns its live spec."""
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}, expected one of {POLICIES}"
            )
        now = self.world.now
        deadline_at = (
            now + task.deadline_s if task.deadline_s is not None else None
        )
        spec = SpeculativeTask(
            task=task, policy=policy, submitted_at=now, deadline_at=deadline_at
        )
        self._specs[task.task_id] = spec
        self.stats.submitted += 1
        self.world.metrics.increment(f"tier/{self.name}/submitted")
        tracer = self.world.tracer
        if tracer is not None:
            spec.span = tracer.start_span(
                "tier.lifecycle",
                subsystem="tier",
                attrs={
                    "task_id": task.task_id,
                    "policy": policy,
                    "deadline_s": task.deadline_s,
                },
            )
        try:
            for tier in self._plan(spec):
                self._launch(spec, tier)
        finally:
            spec._launching = False
        if not spec.resolved and (
            not spec.attempts or all(a.terminal for a in spec.attempts)
        ):
            self._fail(spec)
        return spec

    # -- tier selection ------------------------------------------------------

    def _best_local(self) -> Optional[ExecutionTier]:
        locals_ = self.topology.local_tiers()
        if not locals_:
            return None
        healthy = [tier for tier in locals_ if self.health.healthy(tier)]
        pool = healthy if healthy else locals_
        return min(pool, key=lambda t: t.queue_delay_estimate(self.world.now))

    def _best_remote(self, task: Task) -> Optional[ExecutionTier]:
        healthy = [
            tier
            for tier in self.topology.remote_tiers()
            if self.health.healthy(tier)
        ]
        if not healthy:
            return None
        return min(
            healthy, key=lambda t: t.estimated_completion_s(task, self.world.now)
        )

    def _plan(self, spec: SpeculativeTask) -> List[ExecutionTier]:
        local = self._best_local()
        if spec.policy == "local_only":
            return [local] if local is not None else []
        remote = self._best_remote(spec.task)
        if spec.policy == "prefer_local" or spec.deadline_at is None:
            # Speculation without a deadline has no slack to protect;
            # degrade to prefer_local semantics.
            if local is not None and self.health.healthy(local):
                return [local]
            if remote is not None:
                self.stats.failovers += 1
                self.world.metrics.increment(f"tier/{self.name}/failovers")
                self._emit(
                    "tier_failover", severity="warning",
                    task_id=spec.task.task_id, to_tier=remote.name,
                )
                return [remote]
            return [local] if local is not None else []
        # speculate, with a deadline
        if local is None:
            return [remote] if remote is not None else []
        if remote is None:
            self._degrade(spec, BACKHAUL_DEGRADED)
            return [local]
        estimate = remote.estimated_completion_s(spec.task, self.world.now)
        if self.world.now + estimate > spec.deadline_at:
            self._degrade(spec, NO_REMOTE_SLACK)
            return [local]
        self.stats.speculated += 1
        self.world.metrics.increment(f"tier/{self.name}/speculated")
        return [local, remote]

    def _degrade(self, spec: SpeculativeTask, reason: str) -> None:
        """Ledger a speculate collapse to local-only execution."""
        spec.degraded = reason
        self.stats.degraded[reason] = self.stats.degraded.get(reason, 0) + 1
        self.world.metrics.increment(f"tier/{self.name}/degraded/{reason}")
        self._emit(
            "speculation_degraded",
            severity="warning",
            task_id=spec.task.task_id,
            reason=reason,
        )
        tracer = self.world.tracer
        if tracer is not None and spec.span is not None:
            tracer.add_event(spec.span, "degraded", reason=reason)

    # -- attempt lifecycle ---------------------------------------------------

    def _launch(self, spec: SpeculativeTask, tier: ExecutionTier) -> None:
        span = None
        tracer = self.world.tracer
        if tracer is not None:
            span = tracer.start_span(
                "tier.attempt",
                subsystem="tier",
                parent=spec.span,
                attrs={"tier": tier.name, "level": tier.level},
            )
        self.health.note_dispatch(tier)
        self.stats.attempts_submitted += 1
        self.world.metrics.increment(f"tier/{self.name}/attempts/{tier.name}")
        attempt = tier.dispatch(
            spec.task,
            spec.deadline_at,
            lambda a, reason: self._on_attempt_finish(spec, a, reason),
            span=span,
        )
        if attempt not in spec.attempts:
            spec.attempts.append(attempt)

    def _on_attempt_finish(
        self, spec: SpeculativeTask, attempt: TierAttempt, reason: str
    ) -> None:
        if attempt not in spec.attempts:
            spec.attempts.append(attempt)  # terminated inside dispatch
        tier = self.topology.tier(attempt.tier_name)
        self.health.record_outcome(tier, reason)
        if reason == "completed":
            if attempt.cancelled or spec.resolved:
                self.stats.attempts_late += 1
                self.world.metrics.increment(f"tier/{self.name}/attempts_late")
                self._end_attempt_span(attempt, "ok", late=True)
            else:
                self.stats.attempts_won += 1
                self._end_attempt_span(attempt, "ok", winner=True)
                self._resolve(spec, attempt)
                return
        elif attempt.cancelled:
            self.stats.attempts_cancelled += 1
            self.world.metrics.increment(f"tier/{self.name}/attempts_cancelled")
            self._end_attempt_span(attempt, "cancelled", reason=reason)
        else:
            self.stats.attempts_failed += 1
            self.world.metrics.increment(
                f"tier/{self.name}/attempt_failures/{reason}"
            )
            self._end_attempt_span(attempt, "error", reason=reason)
        if (
            not spec.resolved
            and not spec._launching
            and spec.attempts
            and all(a.terminal for a in spec.attempts)
        ):
            self._fail(spec)

    def _resolve(self, spec: SpeculativeTask, winner: TierAttempt) -> None:
        now = self.world.now
        spec.resolved = True
        spec.outcome = "completed"
        spec.winner = winner
        spec.resolved_at = now
        self.stats.completed += 1
        self.stats.latency_sum_s += now - spec.submitted_at
        self.stats.wins_by_tier[winner.tier_name] = (
            self.stats.wins_by_tier.get(winner.tier_name, 0) + 1
        )
        self.world.metrics.increment(f"tier/{self.name}/completed")
        self.world.metrics.increment(f"tier/{self.name}/wins/{winner.tier_name}")
        if spec.deadline_at is not None:
            if now <= spec.deadline_at + 1e-9:
                self.stats.deadline_hits += 1
                self.world.metrics.increment(f"tier/{self.name}/deadline_hits")
            else:
                self.stats.deadline_misses += 1
                self.world.metrics.increment(f"tier/{self.name}/deadline_misses")
        # First acceptable result is in; cancel every loser still running.
        for other in list(spec.attempts):
            if other is winner or other.terminal:
                continue
            self.topology.tier(other.tier_name).cancel(other, SPECULATION_CANCELLED)
        tracer = self.world.tracer
        if tracer is not None and spec.span is not None:
            if winner.span is not None:
                tracer.link(spec.span, winner.span)
            tracer.end_span(
                spec.span,
                status="ok",
                attrs={"winner": winner.tier_name, "latency_s": now - spec.submitted_at},
            )
        self._emit(
            "task_resolved",
            task_id=spec.task.task_id,
            winner=winner.tier_name,
            latency_s=round(now - spec.submitted_at, 6),
        )
        for listener in self._resolve_listeners:
            listener(spec, "completed")

    def _fail(self, spec: SpeculativeTask) -> None:
        # The task's outcome is the reason of the *last replica standing*
        # (latest terminal time), skipping cancelled losers.
        failed = sorted(
            (
                a
                for a in spec.attempts
                if a.terminal_reason not in (None, SPECULATION_CANCELLED)
            ),
            key=lambda a: a.finished_at if a.finished_at is not None else 0.0,
        )
        reason = failed[-1].terminal_reason if failed else NO_TIER_AVAILABLE
        assert reason is not None
        spec.resolved = True
        spec.outcome = reason
        spec.resolved_at = self.world.now
        self.stats.failed += 1
        self.stats.failure_reasons[reason] = (
            self.stats.failure_reasons.get(reason, 0) + 1
        )
        self.world.metrics.increment(f"tier/{self.name}/task_failures/{reason}")
        if spec.deadline_at is not None:
            self.stats.deadline_misses += 1
            self.world.metrics.increment(f"tier/{self.name}/deadline_misses")
        tracer = self.world.tracer
        if tracer is not None and spec.span is not None:
            tracer.end_span(spec.span, status="error", attrs={"reason": reason})
        self._emit(
            "task_failed", severity="warning",
            task_id=spec.task.task_id, reason=reason,
        )
        for listener in self._resolve_listeners:
            listener(spec, reason)

    def _end_attempt_span(
        self, attempt: TierAttempt, status: str, **attrs: object
    ) -> None:
        tracer = self.world.tracer
        if tracer is not None and attempt.span is not None:
            tracer.end_span(attempt.span, status=status, attrs=attrs)

    def _emit(self, event: str, severity: str = "info", **attrs: object) -> None:
        events = self.world.events
        if events is not None:
            events.emit("tier", event, severity=severity, offloader=self.name, **attrs)

    # -- conservation surface ------------------------------------------------

    def accounting(self) -> Dict[str, int]:
        """Task- and attempt-stream conservation counters.

        At any sim instant ``submitted == completed + failed + live``
        and ``attempts_submitted == won + cancelled + failed + late +
        live`` must hold, and ``completed == attempts_won`` (exactly one
        winner per resolved task).  ``TierConservation`` checks these.
        """
        s = self.stats
        live = s.submitted - s.completed - s.failed
        attempts_live = (
            s.attempts_submitted
            - s.attempts_won
            - s.attempts_cancelled
            - s.attempts_failed
            - s.attempts_late
        )
        return {
            "submitted": s.submitted,
            "completed": s.completed,
            "failed": s.failed,
            "live": live,
            "attempts_submitted": s.attempts_submitted,
            "attempts_won": s.attempts_won,
            "attempts_cancelled": s.attempts_cancelled,
            "attempts_failed": s.attempts_failed,
            "attempts_late": s.attempts_late,
            "attempts_live": attempts_live,
        }

    def speculation_view(self) -> List[Dict[str, object]]:
        """Per-task winner/loser reconciliation for the invariant."""
        view: List[Dict[str, object]] = []
        for spec in self._specs.values():
            winners = sum(
                1
                for a in spec.attempts
                if a.terminal_reason == "completed" and not a.cancelled
            )
            unreconciled = (
                sum(1 for a in spec.attempts if not a.terminal and not a.cancelled)
                if spec.resolved
                else 0
            )
            view.append(
                {
                    "task_id": spec.task.task_id,
                    "policy": spec.policy,
                    "resolved": spec.resolved,
                    "outcome": spec.outcome,
                    "attempts": len(spec.attempts),
                    "winners": winners,
                    "unreconciled": unreconciled,
                }
            )
        return view

    def specs(self) -> List[SpeculativeTask]:
        """Every submitted task's spec, in submission order."""
        return list(self._specs.values())
