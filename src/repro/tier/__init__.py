"""Tiered edge↔cloud federation with speculative execution.

The paper's three architectures — dynamic v-clouds, parking-lot
micro-datacenters, RSU-anchored infrastructure clouds — plus the
conventional central cloud, composed into one hierarchy (ROADMAP
item 3):

* :mod:`.topology` — :class:`TierTopology` registers the existing
  layers as execution tiers (``local`` / ``edge`` / ``cloud``) behind a
  uniform dispatch/cancel contract;
* :mod:`.backhaul` — :class:`BackhaulLink`, the seeded WAN model
  (latency, jitter, loss, outage windows) in front of remote tiers,
  drivable from :class:`~repro.faults.plan.FaultPlan` specs via
  :class:`~repro.faults.backhaul.BackhaulFaultDriver`;
* :mod:`.health` — :class:`TierHealthTracker`, per-tier circuit
  breakers + backlog signals demoting unreachable tiers;
* :mod:`.offloader` — :class:`TieredOffloader`, one submit API with
  ``local_only`` / ``prefer_local`` / ``speculate`` policies;
  speculation runs local and remote replicas simultaneously,
  first-acceptable-result-wins, losers cancelled through the typed
  cancel path, collapsing to local (``backhaul_degraded`` /
  ``no_remote_slack``) when the WAN cannot help;
* :mod:`.smoke` — the CI scenario: speculation through a mid-run
  backhaul outage, 100% deadline hits, clean ``TierConservation``.

Benchmark E20 sweeps deadline-hit-rate against backhaul latency, loss
and outage fractions versus single-tier baselines.
"""

from .backhaul import BackhaulLink
from .health import TierHealthTracker
from .offloader import (
    BACKHAUL_DEGRADED,
    NO_REMOTE_SLACK,
    NO_TIER_AVAILABLE,
    POLICIES,
    SpeculativeTask,
    TieredOffloader,
    TierStats,
)
from .topology import (
    BACKHAUL_LOST,
    SPECULATION_CANCELLED,
    TIER_LEVELS,
    CentralCloudTier,
    ExecutionTier,
    TierAttempt,
    TierTopology,
    VCloudTier,
)

__all__ = [
    "BACKHAUL_DEGRADED",
    "BACKHAUL_LOST",
    "BackhaulLink",
    "CentralCloudTier",
    "ExecutionTier",
    "NO_REMOTE_SLACK",
    "NO_TIER_AVAILABLE",
    "POLICIES",
    "SPECULATION_CANCELLED",
    "SpeculativeTask",
    "TIER_LEVELS",
    "TierAttempt",
    "TierHealthTracker",
    "TierStats",
    "TierTopology",
    "TieredOffloader",
    "VCloudTier",
]
