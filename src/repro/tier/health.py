"""Per-tier health: demote unreachable or failing tiers before dispatch.

The offloader must never stall a deadline-critical task behind a dead
backhaul.  :class:`TierHealthTracker` keeps one serve-layer
:class:`~repro.serve.breaker.CircuitBreaker` per registered tier — the
same sliding-window failure-rate machinery that guards individual
workers, reused one level up — and combines three signals into a single
:meth:`healthy` gate:

* **reachability** — the tier's own view (backhaul outage, zero
  workers);
* **breaker state** — recent dispatch outcomes (``backhaul_lost``,
  ``deadline``, ``retries_exhausted`` count against the tier;
  cancellations of losing replicas do not);
* **backlog** — the tier's queue-delay estimate (the
  :class:`~repro.core.capacity.BacklogEstimator` signal for v-cloud
  tiers, :meth:`CentralCloud.queue_delay_estimate` for the datacenter),
  demoted above ``max_queue_delay_s`` when configured.

The default breaker tuning is deliberately more tolerant than the
per-worker serve-layer defaults (``failure_threshold=0.9`` over a
12-sample window vs ``0.5``/8): a tier aggregates many workers behind a
lossy WAN, and sporadic frame loss is precisely the failure mode
speculation exists to absorb — the racing local replica pays for it,
the task does not.  Tier demotion is therefore reserved for *sustained*
failure (a silently dead endpoint); hard unreachability (a backhaul
outage) already demotes instantly through ``reachable()`` without
touching the breaker, and recovers the moment the outage ends.

Breaker cooldowns draw jitter from per-tier RNG substreams
(``tier/health/<tier>``), so adding a tier never perturbs another
tier's probe schedule.  State transitions are countered under
``tier/health/<tier>/...`` and emitted on the event log.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..faults.recovery import BackoffPolicy
from ..errors import ConfigurationError
from ..serve.breaker import CircuitBreaker
from ..sim.world import World
from .topology import ExecutionTier, SPECULATION_CANCELLED


class TierHealthTracker:
    """Reachability + breaker + backlog gate for every registered tier."""

    def __init__(
        self,
        world: World,
        name: str = "tiers",
        window: int = 12,
        failure_threshold: float = 0.9,
        min_samples: int = 6,
        cooldown_s: float = 3.0,
        max_queue_delay_s: Optional[float] = None,
    ) -> None:
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")
        if max_queue_delay_s is not None and max_queue_delay_s <= 0:
            raise ConfigurationError("max_queue_delay_s must be positive when given")
        self.world = world
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self.max_queue_delay_s = max_queue_delay_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.demotions = 0

    def _breaker_for(self, tier: ExecutionTier) -> CircuitBreaker:
        breaker = self._breakers.get(tier.name)
        if breaker is None:
            breaker = CircuitBreaker(
                name=tier.name,
                clock=lambda: self.world.now,
                rng=self.world.rng.fork(f"tier/health/{tier.name}"),
                window=self.window,
                failure_threshold=self.failure_threshold,
                min_samples=self.min_samples,
                backoff=BackoffPolicy(
                    base_delay_s=self.cooldown_s,
                    max_delay_s=self.cooldown_s * 8,
                ),
            )
            self._breakers[tier.name] = breaker
        return breaker

    # -- the gate ------------------------------------------------------------

    def healthy(self, tier: ExecutionTier) -> bool:
        """Whether the tier should receive new dispatches right now."""
        if not tier.reachable():
            return False
        if not self._breaker_for(tier).allows():
            return False
        if self.max_queue_delay_s is not None:
            if tier.queue_delay_estimate(self.world.now) > self.max_queue_delay_s:
                return False
        return True

    # -- outcome feedback ----------------------------------------------------

    def note_dispatch(self, tier: ExecutionTier) -> None:
        """Report an attempt actually launched on the tier."""
        self._breaker_for(tier).note_dispatch()

    def record_outcome(self, tier: ExecutionTier, reason: str) -> None:
        """Feed one attempt's terminal reason into the tier's breaker.

        ``completed`` is a success; cancelled losing replicas are
        neutral (the tier did nothing wrong — it merely lost the race);
        every other typed failure counts against the tier.
        """
        breaker = self._breaker_for(tier)
        if reason == "completed":
            breaker.record_success()
            return
        if reason == SPECULATION_CANCELLED or reason.endswith("_cancelled"):
            # Inconclusive: the replica lost a race, the tier did not
            # fail.  Release a HALF_OPEN probe slot so the next dispatch
            # can still test the tier.
            breaker.release_probe()
            return
        before = breaker.state
        breaker.record_failure()
        if breaker.state is not before:
            self.demotions += 1
            self.world.metrics.increment(
                f"tier/health/{tier.name}/demotions"
            )
            events = self.world.events
            if events is not None:
                events.emit(
                    "tier",
                    "tier_demoted",
                    severity="warning",
                    tier=tier.name,
                    reason=reason,
                    cooldown_s=round(breaker.cooldown_remaining_s, 6),
                )

    def breaker_state(self, tier: ExecutionTier) -> str:
        """The tier's breaker state name (for reports and tests)."""
        return self._breaker_for(tier).state.name
