"""CI tier smoke: speculation through a backhaul outage, fails loud.

Run as ``python -m repro.tier.smoke``.  Builds a two-tier hierarchy —
a parked local v-cloud and a fast central cloud behind a
:class:`~repro.tier.backhaul.BackhaulLink` — submits a steady stream of
deadline-critical tasks under the ``speculate`` policy, cuts the
backhaul mid-run with a :class:`~repro.faults.plan.FaultPlan` partition
driven through :class:`~repro.faults.backhaul.BackhaulFaultDriver`,
and asserts:

* every task resolved (none stuck) with **100% deadline hits** — the
  outage costs latency, never deadline safety;
* the :class:`~repro.chaos.invariants.TierConservation` and
  :class:`~repro.chaos.invariants.TaskConservation` verdicts are clean
  at every periodic check;
* speculation actually engaged (remote wins + losers cancelled) and
  actually degraded during the outage (``backhaul_degraded`` ledgered),
  so the smoke exercised both halves of the mechanism.
"""

from __future__ import annotations

import sys

from ..chaos.invariants import InvariantSuite, TaskConservation, TierConservation
from ..core import ResourceOffer, VehicularCloud
from ..core.tasks import Task
from ..faults.backhaul import BackhaulFaultDriver
from ..faults.plan import FaultPlan
from ..geometry import Vec2
from ..infra.central_cloud import CentralCloud
from ..mobility import StationaryModel
from ..sim import ScenarioConfig, World
from .backhaul import BackhaulLink
from .health import TierHealthTracker
from .offloader import TieredOffloader
from .topology import CentralCloudTier, TierTopology, VCloudTier

SEED = 2024
MEMBERS = 6
TASKS = 20
TASK_INTERVAL_S = 2.0
DEADLINE_S = 10.0
WORK_MI = 600.0
OUTAGE_AT_S = 15.0
OUTAGE_S = 10.0
HORIZON_S = 80.0


def build(seed: int = SEED):
    """Stand up the smoke scenario; returns (world, offloader, suite, driver)."""
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 30.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(world, "tier-smoke-local")
    for vehicle in vehicles:
        cloud.admit(
            vehicle,
            offer=ResourceOffer(vehicle.vehicle_id, 200.0, 10**9, 1e6),
        )

    central = CentralCloud(world, compute_mips=50_000.0, wan_delay_s=0.04)
    link = BackhaulLink(
        world, "smoke-wan", base_latency_s=0.05, jitter_s=0.01, loss_probability=0.02
    )
    topology = TierTopology()
    topology.register(VCloudTier(world, "local-vc", "local", cloud))
    topology.register(CentralCloudTier(world, "central", central, link))
    offloader = TieredOffloader(
        world, topology, health=TierHealthTracker(world), name="smoke"
    )

    for index in range(TASKS):
        world.engine.schedule_at(
            index * TASK_INTERVAL_S,
            lambda: offloader.submit(
                Task(work_mi=WORK_MI, deadline_s=DEADLINE_S, submitter="smoke"),
                policy="speculate",
            ),
            label="tier-smoke-submit",
        )

    plan = FaultPlan(seed).partition(OUTAGE_AT_S, duration_s=OUTAGE_S)
    driver = BackhaulFaultDriver(world.engine, link, plan)
    driver.arm()

    suite = InvariantSuite(
        [TaskConservation(cloud), TierConservation(offloader)],
        metrics=world.metrics,
    )
    suite.attach(world, check_interval_s=0.5)
    return world, offloader, suite, driver


def main() -> int:
    world, offloader, suite, driver = build()
    world.run_until(HORIZON_S)

    failures = 0
    stats = offloader.stats
    acc = offloader.accounting()
    print(f"accounting: {acc}")
    print(
        f"deadline hits: {stats.deadline_hits}/{TASKS} "
        f"(misses {stats.deadline_misses})"
    )
    print(f"wins by tier: {stats.wins_by_tier}")
    print(
        f"speculated={stats.speculated} degraded={stats.degraded} "
        f"cancelled={stats.attempts_cancelled} late={stats.attempts_late}"
    )
    print(f"backhaul ledger: {driver.ledger}")
    print(f"invariant checks: {suite.checks_run}, violations: {len(suite.violations)}")

    if acc["submitted"] != TASKS:
        failures += 1
        print(f"!! expected {TASKS} tasks submitted, saw {acc['submitted']}")
    if acc["live"] != 0:
        failures += 1
        print(f"!! {acc['live']} task(s) never resolved")
    if stats.deadline_hits != TASKS or stats.deadline_misses != 0:
        failures += 1
        print(
            f"!! deadline safety broken: {stats.deadline_hits} hits, "
            f"{stats.deadline_misses} misses (need {TASKS}/0)"
        )
    if suite.violations:
        failures += 1
        for violation in suite.violations[:5]:
            print(f"!! {violation.describe()}")
    if not driver.ledger:
        failures += 1
        print("!! backhaul outage never fired (smoke exercised nothing)")
    if stats.degraded.get("backhaul_degraded", 0) == 0:
        failures += 1
        print("!! no backhaul_degraded collapse during the outage window")
    if stats.speculated == 0 or stats.attempts_cancelled == 0:
        failures += 1
        print("!! speculation never engaged (no races, no cancelled losers)")

    if failures:
        print(f"TIER SMOKE FAILED ({failures} problem(s))")
        return 1
    print("tier smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
