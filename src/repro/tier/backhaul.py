"""The WAN backhaul in front of remote execution tiers.

A :class:`BackhaulLink` is the lossy, jittery wide-area hop between a
local vehicular cloud and its remote tiers (RSU-anchored edge cloud,
central datacenter).  It models:

* base propagation latency plus a throughput term per payload byte;
* seeded uniform jitter, optionally elevated inside a jitter window;
* Bernoulli frame loss, optionally elevated inside a loss window;
* outage windows, during which *new* transmissions are refused —
  frames already in flight still arrive (the photons left before the
  cut), which is what lets a remote result win through an outage that
  opened after dispatch.

Loss/outage are sampled at *send* time from the link's own RNG
substream, so a seeded run replays byte-identically.  Every outcome is
countered (``sent``/``delivered``/``lost`` plus per-reason breakdowns)
and mirrored into the metrics registry under ``tier/backhaul/<name>/``.

Fault windows are normally driven by a
:class:`~repro.faults.backhaul.BackhaulFaultDriver` mapping
:class:`~repro.faults.plan.FaultPlan` specs onto the link (partition →
outage, loss burst → loss window, jitter spike → jitter window), so
the same seeded plans that batter the radio stack batter the WAN.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..sim.world import World

#: Typed reasons a transmission can be refused or dropped.
LOSS_REASONS = ("outage", "loss")


class BackhaulLink:
    """One bidirectional WAN link with seeded latency/jitter/loss/outages."""

    def __init__(
        self,
        world: World,
        name: str = "backhaul",
        base_latency_s: float = 0.05,
        throughput_bps: float = 80_000_000.0,
        jitter_s: float = 0.0,
        loss_probability: float = 0.0,
    ) -> None:
        if base_latency_s < 0 or jitter_s < 0:
            raise ConfigurationError("latency and jitter must be non-negative")
        if throughput_bps <= 0:
            raise ConfigurationError("throughput_bps must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1)")
        self.world = world
        self.name = name
        self.base_latency_s = base_latency_s
        self.throughput_bps = throughput_bps
        self.jitter_s = jitter_s
        self.loss_probability = loss_probability
        self.rng = world.rng.fork(f"tier/backhaul/{name}")
        self._outage_until: Optional[float] = None  # None = no outage
        self._loss_until = 0.0
        self._loss_window_probability = 0.0
        self._jitter_until = 0.0
        self._jitter_window_extra_s = 0.0
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.loss_reasons: Dict[str, int] = {}
        self.outages = 0

    # -- fault windows -------------------------------------------------------

    def start_outage(self, duration_s: Optional[float] = None) -> None:
        """Cut the link; ``None`` means until :meth:`end_outage`."""
        if duration_s is not None and duration_s <= 0:
            raise ConfigurationError("outage duration_s must be positive")
        self._outage_until = (
            float("inf") if duration_s is None else self.world.now + duration_s
        )
        self.outages += 1
        self.world.metrics.increment(f"tier/backhaul/{self.name}/outages")
        self._emit("backhaul_outage", severity="warning", duration_s=duration_s)

    def end_outage(self) -> None:
        """Restore the link immediately."""
        if self._outage_until is not None:
            self._outage_until = None
            self._emit("backhaul_restored")

    def add_loss_window(self, duration_s: float, probability: float) -> None:
        """Elevate loss to ``probability`` for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        self._loss_until = self.world.now + duration_s
        self._loss_window_probability = probability
        self._emit(
            "backhaul_loss_window", severity="warning",
            duration_s=duration_s, probability=probability,
        )

    def add_jitter_window(self, duration_s: float, extra_s: float) -> None:
        """Add up to ``extra_s`` of jitter for ``duration_s`` seconds."""
        if duration_s <= 0 or extra_s <= 0:
            raise ConfigurationError("duration_s and extra_s must be positive")
        self._jitter_until = self.world.now + duration_s
        self._jitter_window_extra_s = extra_s
        self._emit(
            "backhaul_jitter_window", severity="warning",
            duration_s=duration_s, extra_s=extra_s,
        )

    # -- state ---------------------------------------------------------------

    def available(self) -> bool:
        """Whether the link accepts new transmissions right now."""
        if self._outage_until is None:
            return True  # no outage ever started
        return self.world.now >= self._outage_until

    def effective_loss_probability(self) -> float:
        """The loss probability a frame sent now faces."""
        if self.world.now < self._loss_until:
            return max(self.loss_probability, self._loss_window_probability)
        return self.loss_probability

    def max_jitter_s(self) -> float:
        """The worst-case jitter a frame sent now could draw."""
        extra = (
            self._jitter_window_extra_s if self.world.now < self._jitter_until else 0.0
        )
        return self.jitter_s + extra

    def latency_estimate_s(self, payload_bytes: int) -> float:
        """Pessimistic one-way latency for feasibility checks (no RNG)."""
        return (
            self.base_latency_s
            + payload_bytes * 8.0 / self.throughput_bps
            + self.max_jitter_s()
        )

    # -- the data plane ------------------------------------------------------

    def transmit(
        self,
        payload_bytes: int,
        deliver: Callable[[], None],
        on_lost: Optional[Callable[[str], None]] = None,
        label: str = "backhaul-transit",
    ) -> bool:
        """Send one frame; ``deliver`` fires after transit on success.

        Loss and outage are decided *now*, at send time; a frame that
        makes it onto the wire is immune to windows that open later.
        Returns True when the frame was sent (delivery scheduled).  On
        refusal/loss ``on_lost`` fires synchronously with a typed reason
        from :data:`LOSS_REASONS`.
        """
        self.sent += 1
        self.world.metrics.increment(f"tier/backhaul/{self.name}/sent")
        if not self.available():
            self._lose("outage", on_lost)
            return False
        probability = self.effective_loss_probability()
        if probability > 0.0 and self.rng.chance(probability):
            self._lose("loss", on_lost)
            return False
        transit = (
            self.base_latency_s + payload_bytes * 8.0 / self.throughput_bps
        )
        jitter_bound = self.max_jitter_s()
        if jitter_bound > 0.0:
            transit += self.rng.uniform(0.0, jitter_bound)

        def _arrive() -> None:
            self.delivered += 1
            self.world.metrics.increment(f"tier/backhaul/{self.name}/delivered")
            deliver()

        self.world.engine.schedule(transit, _arrive, label=label)
        return True

    def _lose(self, reason: str, on_lost: Optional[Callable[[str], None]]) -> None:
        self.lost += 1
        self.loss_reasons[reason] = self.loss_reasons.get(reason, 0) + 1
        self.world.metrics.increment(f"tier/backhaul/{self.name}/lost/{reason}")
        if on_lost is not None:
            on_lost(reason)

    # -- observability -------------------------------------------------------

    def _emit(self, event: str, severity: str = "info", **attrs: object) -> None:
        events = self.world.events
        if events is not None:
            events.emit("tier", event, severity=severity, link=self.name, **attrs)

    def accounting(self) -> Dict[str, int]:
        """Frame conservation counters (``sent == delivered + lost + in flight``)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "in_flight": self.world.engine.pending_labeled("backhaul-transit"),
        }
