"""Small 2-D geometry helpers used across mobility and networking.

The simulator lives on a flat plane measured in metres.  A light-weight,
immutable :class:`Vec2` avoids pulling numpy into hot per-event code paths
while staying explicit and easy to test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Vec2:
    """An immutable 2-D vector (or point) in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        if scalar == 0:
            raise ZeroDivisionError("cannot divide Vec2 by zero")
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Return the Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Return a unit-length copy; the zero vector normalizes to itself."""
        length = self.norm()
        if length == 0:
            return Vec2(0.0, 0.0)
        return self / length

    def heading(self) -> float:
        """Return the direction angle in radians in ``[-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """Return the vector rotated counter-clockwise by ``angle`` radians."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Vec2(self.x * cos_a - self.y * sin_a, self.x * sin_a + self.y * cos_a)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates ``(radius, angle)``."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))


ORIGIN = Vec2(0.0, 0.0)


def heading_difference(a: float, b: float) -> float:
    """Return the absolute angular difference between two headings.

    The result is wrapped into ``[0, pi]`` so opposite directions differ
    by ``pi`` and identical directions by ``0`` regardless of branch cuts.
    """
    diff = (a - b) % (2.0 * math.pi)
    if diff > math.pi:
        diff = 2.0 * math.pi - diff
    return diff


def centroid(points: Iterable[Vec2]) -> Vec2:
    """Return the centroid of a non-empty iterable of points."""
    total_x = 0.0
    total_y = 0.0
    count = 0
    for point in points:
        total_x += point.x
        total_y += point.y
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return Vec2(total_x / count, total_y / count)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"invalid clamp interval [{low}, {high}]")
    return max(low, min(high, value))
