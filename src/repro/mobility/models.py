"""Mobility models driving vehicle kinematics.

Three synthetic generators cover the regimes of the paper's three
architectures (Fig. 4):

* :class:`HighwayModel` — free-flow highway traffic with speed jitter;
  the habitat of *dynamic* v-clouds.
* :class:`ManhattanModel` — urban grid with random turns; the habitat of
  *infrastructure-based* v-clouds anchored at RSUs.
* :class:`ParkingLotModel` — parked vehicles with a Poisson departure /
  arrival process; the habitat of *stationary* v-clouds (Arif et al.'s
  airport datacenter).

Each model owns its vehicles and is stepped periodically by the engine.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..geometry import Vec2, clamp
from ..sim.config import MobilityConfig
from ..sim.rng import SeededRng
from ..sim.world import World
from .equipment import AutomationLevel, OnboardEquipment
from .road import Highway, ManhattanGrid, ParkingLot
from .vehicle import Vehicle


class MobilityModel:
    """Base class: owns a vehicle population and steps their kinematics."""

    def __init__(self, world: World, config: Optional[MobilityConfig] = None) -> None:
        self.world = world
        self.config = config if config is not None else world.config.mobility
        self.rng: SeededRng = world.rng.fork(f"mobility/{type(self).__name__}")
        self.vehicles: List[Vehicle] = []
        self._task = None
        self._listeners: List[Callable[[Vehicle], None]] = []

    # -- population -------------------------------------------------------

    def add_vehicle(self, vehicle: Vehicle) -> Vehicle:
        """Register a vehicle with the model and the world."""
        self.vehicles.append(vehicle)
        self.world.register(vehicle.vehicle_id, vehicle)
        return vehicle

    def populate(self, count: int) -> List[Vehicle]:
        """Create and place ``count`` vehicles (model-specific placement)."""
        created = [self._spawn_vehicle() for _ in range(count)]
        for vehicle in created:
            self.add_vehicle(vehicle)
        return created

    def _spawn_vehicle(self) -> Vehicle:
        raise NotImplementedError

    def _draw_speed(self) -> float:
        cfg = self.config
        speed = self.rng.gauss(cfg.mean_speed_mps, cfg.speed_std_mps)
        return clamp(speed, cfg.min_speed_mps, cfg.max_speed_mps)

    def _draw_automation_level(self) -> AutomationLevel:
        # A mixed fleet skewed toward higher automation, per the paper's
        # autonomous-vehicle setting.
        levels = [
            AutomationLevel.PARTIAL_AUTOMATION,
            AutomationLevel.CONDITIONAL_AUTOMATION,
            AutomationLevel.HIGH_AUTOMATION,
            AutomationLevel.FULL_AUTOMATION,
        ]
        weights = [0.15, 0.25, 0.40, 0.20]
        return self.rng.weighted_choice(levels, weights)

    # -- stepping ------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic kinematic updates on the engine."""
        if self._task is not None:
            return
        self._task = self.world.engine.call_every(
            self.config.update_interval_s, self._step, label="mobility-step"
        )

    def stop(self) -> None:
        """Stop periodic updates."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def on_departure(self, listener: Callable[[Vehicle], None]) -> None:
        """Register a callback fired when a vehicle leaves the scenario."""
        self._listeners.append(listener)

    def _notify_departure(self, vehicle: Vehicle) -> None:
        for listener in self._listeners:
            listener(vehicle)

    def _step(self) -> None:
        dt = self.config.update_interval_s
        for vehicle in self.vehicles:
            self._move_vehicle(vehicle, dt)

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        raise NotImplementedError


class HighwayModel(MobilityModel):
    """Free-flow highway traffic on a ring highway.

    Vehicles hold a lane, jitter their speed with an Ornstein-Uhlenbeck
    style pull toward the fleet mean, and wrap around the highway ends so
    density stays constant over a run.
    """

    def __init__(
        self,
        world: World,
        highway: Optional[Highway] = None,
        config: Optional[MobilityConfig] = None,
    ) -> None:
        super().__init__(world, config)
        self.highway = highway if highway is not None else Highway()
        self._lane_of: Dict[str, int] = {}

    def _spawn_vehicle(self) -> Vehicle:
        lane = self.rng.randint(0, self.highway.total_lanes - 1)
        x = self.rng.uniform(0.0, self.highway.length_m)
        level = self._draw_automation_level()
        vehicle = Vehicle(
            position=Vec2(x, self.highway.lane_y(lane)),
            speed_mps=self._draw_speed(),
            heading_rad=self.highway.lane_heading(lane),
            automation_level=level,
            equipment=OnboardEquipment.for_level(level),
        )
        self._lane_of[vehicle.vehicle_id] = lane
        return vehicle

    def lane_of(self, vehicle: Vehicle) -> int:
        """Return the lane index a vehicle is travelling in."""
        return self._lane_of[vehicle.vehicle_id]

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        cfg = self.config
        # Mean-reverting speed jitter keeps speeds plausible without a
        # full car-following model.
        pull = 0.1 * (cfg.mean_speed_mps - vehicle.speed_mps)
        noise = self.rng.gauss(0.0, cfg.speed_std_mps * 0.2)
        vehicle.speed_mps = clamp(
            vehicle.speed_mps + (pull + noise) * dt,
            cfg.min_speed_mps,
            cfg.max_speed_mps,
        )
        vehicle.advance(dt)
        vehicle.position = Vec2(
            self.highway.wrap_x(vehicle.position.x), vehicle.position.y
        )


class ManhattanModel(MobilityModel):
    """Urban grid mobility with probabilistic turns at intersections."""

    def __init__(
        self,
        world: World,
        grid: Optional[ManhattanGrid] = None,
        config: Optional[MobilityConfig] = None,
    ) -> None:
        super().__init__(world, config)
        self.grid = grid if grid is not None else ManhattanGrid()
        self._next_corner: Dict[str, Vec2] = {}

    def _spawn_vehicle(self) -> Vehicle:
        corners = self.grid.intersections()
        start = self.rng.choice(corners)
        level = self._draw_automation_level()
        vehicle = Vehicle(
            position=start,
            speed_mps=self._draw_speed() * 0.6,  # urban speeds
            heading_rad=0.0,
            automation_level=level,
            equipment=OnboardEquipment.for_level(level, cellular=True),
        )
        self._choose_heading(vehicle)
        return vehicle

    def _choose_heading(self, vehicle: Vehicle) -> None:
        corner = self.grid.nearest_intersection(vehicle.position)
        options = self.grid.allowed_headings(corner)
        if not options:
            raise ConfigurationError("grid produced an intersection with no exits")
        # Prefer continuing straight; turn with configured probability.
        straight = [h for h in options if abs(h - vehicle.heading_rad) < 1e-9]
        if straight and not self.rng.chance(self.config.turn_probability):
            heading = straight[0]
        else:
            heading = self.rng.choice(options)
        vehicle.heading_rad = heading
        step = Vec2.from_polar(self.grid.block_size_m, heading)
        self._next_corner[vehicle.vehicle_id] = self.grid.clamp(corner + step)

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        target = self._next_corner[vehicle.vehicle_id]
        remaining = vehicle.position.distance_to(target)
        travel = vehicle.speed_mps * dt
        if travel >= remaining:
            vehicle.position = target
            self._choose_heading(vehicle)
        else:
            vehicle.advance(dt)


class ParkingLotModel(MobilityModel):
    """Parked vehicles with Poisson departures and arrivals.

    Departures remove resources from the stationary cloud; arrivals
    refill empty spots.  ``occupancy`` tracks the live fraction so the
    replication experiments can sweep departure pressure.
    """

    def __init__(
        self,
        world: World,
        lot: Optional[ParkingLot] = None,
        config: Optional[MobilityConfig] = None,
        departure_rate_per_hour: Optional[float] = None,
        arrivals_enabled: bool = True,
    ) -> None:
        super().__init__(world, config)
        self.lot = lot if lot is not None else ParkingLot()
        rate = (
            departure_rate_per_hour
            if departure_rate_per_hour is not None
            else self.config.parking_departure_rate_per_hour
        )
        if rate < 0:
            raise ConfigurationError("departure rate must be non-negative")
        self.departure_rate_per_s = rate / 3600.0
        self.arrivals_enabled = arrivals_enabled
        self.departed: List[Vehicle] = []
        self._spot_of: Dict[str, int] = {}
        self._free_spots: List[int] = []
        self._next_fresh_spot = 0

    def _spawn_vehicle(self) -> Vehicle:
        if self._free_spots:
            index = self._free_spots.pop()
        else:
            index = self._next_fresh_spot
            if index >= self.lot.capacity:
                raise ConfigurationError("parking lot is full")
            self._next_fresh_spot += 1
        level = self._draw_automation_level()
        vehicle = Vehicle(
            position=self.lot.spot_position(index),
            speed_mps=0.0,
            heading_rad=0.0,
            automation_level=level,
            equipment=OnboardEquipment.for_level(level, cellular=True),
        )
        vehicle.park()
        self._spot_of[vehicle.vehicle_id] = index
        return vehicle

    @property
    def occupancy(self) -> float:
        """Fraction of populated spots currently occupied."""
        total = len(self.vehicles) + len(self.departed)
        if total == 0:
            return 0.0
        return len(self.vehicles) / total

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        # Parked vehicles do not move; churn is handled in _step.
        pass

    def _step(self) -> None:
        dt = self.config.update_interval_s
        per_vehicle_leave = 1.0 - math.exp(-self.departure_rate_per_s * dt)
        leaving = [v for v in self.vehicles if self.rng.chance(per_vehicle_leave)]
        for vehicle in leaving:
            self._depart(vehicle)
        if self.arrivals_enabled:
            # Arrivals balance departures in expectation, keeping the lot
            # near its initial occupancy.
            expected = self.departure_rate_per_s * dt * len(self.departed)
            arrivals = self.rng.poisson(min(expected, 5.0))
            for _ in range(arrivals):
                if self._free_spots and self.departed:
                    self.departed.pop(0)
                    self.add_vehicle(self._spawn_vehicle())

    def _depart(self, vehicle: Vehicle) -> None:
        self.vehicles.remove(vehicle)
        self.departed.append(vehicle)
        spot = self._spot_of.pop(vehicle.vehicle_id)
        self._free_spots.append(spot)
        self.world.unregister(vehicle.vehicle_id)
        self._notify_departure(vehicle)


class StationaryModel(MobilityModel):
    """Vehicles frozen at their spawn positions (useful in unit tests)."""

    def __init__(
        self,
        world: World,
        positions: Optional[Sequence[Vec2]] = None,
        config: Optional[MobilityConfig] = None,
    ) -> None:
        super().__init__(world, config)
        self._positions = list(positions) if positions is not None else []
        self._next_index = 0

    def _spawn_vehicle(self) -> Vehicle:
        if self._next_index < len(self._positions):
            position = self._positions[self._next_index]
        else:
            width, height = self.world.config.area_m
            position = Vec2(
                self.rng.uniform(0.0, width), self.rng.uniform(0.0, height)
            )
        self._next_index += 1
        level = self._draw_automation_level()
        return Vehicle(
            position=position,
            speed_mps=0.0,
            heading_rad=0.0,
            automation_level=level,
            equipment=OnboardEquipment.for_level(level),
        )

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        pass
