"""Vehicle state: identity, kinematics and equipment.

A :class:`Vehicle` is pure state plus kinematic helpers; movement is
driven by a mobility model (``repro.mobility.models``), communication by
the network node wrapper (``repro.net.node``).  Keeping those concerns
separate lets tests exercise kinematics without a network and vice versa.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from ..geometry import Vec2, heading_difference
from .equipment import AutomationLevel, OnboardEquipment

_vehicle_counter = itertools.count(1)


def next_vehicle_id() -> str:
    """Return a fresh process-unique vehicle id (e.g. ``"veh-7"``)."""
    return f"veh-{next(_vehicle_counter)}"


def reset_vehicle_ids() -> None:
    """Rewind the process-global vehicle id counter to ``veh-1``.

    Vehicle ids seed per-node RNG forks and sorted member orders, so
    byte-identical cross-run replay must rewind this counter before each
    fresh world.  Never call it while an existing world's vehicles are
    still in use.
    """
    global _vehicle_counter
    _vehicle_counter = itertools.count(1)


@dataclass
class Vehicle:
    """A single vehicle's physical state.

    Attributes
    ----------
    vehicle_id:
        Stable simulation identifier.  This is *not* the identity used on
        the air — the security layer maps it to pseudonyms.
    position:
        Current location in metres.
    speed_mps:
        Scalar speed along ``heading_rad``.
    heading_rad:
        Direction of travel in radians.
    """

    vehicle_id: str = field(default_factory=next_vehicle_id)
    position: Vec2 = field(default_factory=lambda: Vec2(0.0, 0.0))
    speed_mps: float = 0.0
    heading_rad: float = 0.0
    automation_level: AutomationLevel = AutomationLevel.HIGH_AUTOMATION
    equipment: OnboardEquipment = field(default_factory=OnboardEquipment)
    parked: bool = False

    @property
    def velocity(self) -> Vec2:
        """Velocity vector in metres per second."""
        return Vec2.from_polar(self.speed_mps, self.heading_rad)

    def advance(self, dt: float) -> None:
        """Move the vehicle along its heading for ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if self.parked or self.speed_mps == 0.0:
            return
        self.position = self.position + self.velocity * dt

    def distance_to(self, other: "Vehicle") -> float:
        """Return the Euclidean distance to another vehicle."""
        return self.position.distance_to(other.position)

    def relative_speed(self, other: "Vehicle") -> float:
        """Return the magnitude of the velocity difference with ``other``."""
        return (self.velocity - other.velocity).norm()

    def heading_alignment(self, other: "Vehicle") -> float:
        """Return alignment of travel directions in ``[0, 1]``.

        1 means identical headings, 0 means opposite directions.  Used by
        mobility-aware clustering to group vehicles moving together.
        """
        diff = heading_difference(self.heading_rad, other.heading_rad)
        return 1.0 - diff / math.pi

    def time_to_closest_approach(self, other: "Vehicle") -> Optional[float]:
        """Return the time at which the two vehicles are closest.

        None means the relative velocity is zero (the gap never changes).
        A negative result is clamped to 0 (they are already separating).
        """
        rel_pos = other.position - self.position
        rel_vel = other.velocity - self.velocity
        speed_sq = rel_vel.dot(rel_vel)
        if speed_sq == 0.0:
            return None
        t_star = -rel_pos.dot(rel_vel) / speed_sq
        return max(0.0, t_star)

    def park(self) -> None:
        """Mark the vehicle parked (stationary, engine off)."""
        self.parked = True
        self.speed_mps = 0.0

    def unpark(self, speed_mps: float, heading_rad: float) -> None:
        """Resume driving with the given kinematics."""
        self.parked = False
        self.speed_mps = speed_mps
        self.heading_rad = heading_rad
