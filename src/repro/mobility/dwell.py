"""Dwell-time estimation.

The paper (§III.A) singles out *estimating the duration of stay* of a
vehicle in a group as the key difficulty of v-cloud task allocation:
under-estimation wastes resources, over-estimation strands tasks.  This
module provides the geometric ground-truth calculations and a noisy
estimator so schedulers can be evaluated under controlled estimation
error (experiment E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..errors import ConfigurationError
from ..geometry import Vec2
from ..sim.rng import SeededRng
from .vehicle import Vehicle


def link_lifetime(a: Vehicle, b: Vehicle, range_m: float) -> float:
    """Return how long two vehicles remain within radio range.

    Solves ``|p + v t| = range`` for the relative motion; returns 0 if
    they are already out of range and ``inf`` if the relative velocity
    keeps them in range forever (e.g. a platoon).
    """
    if range_m <= 0:
        raise ConfigurationError("range_m must be positive")
    rel_pos = b.position - a.position
    rel_vel = b.velocity - a.velocity
    dist_sq = rel_pos.dot(rel_pos)
    if dist_sq > range_m * range_m:
        return 0.0
    speed_sq = rel_vel.dot(rel_vel)
    if speed_sq == 0.0:
        return math.inf
    # Quadratic: speed_sq t^2 + 2 (p.v) t + (|p|^2 - r^2) = 0
    b_coef = 2.0 * rel_pos.dot(rel_vel)
    c_coef = dist_sq - range_m * range_m
    discriminant = b_coef * b_coef - 4.0 * speed_sq * c_coef
    if discriminant < 0:
        # Numerically impossible while inside range; treat as immediate exit.
        return 0.0
    root = (-b_coef + math.sqrt(discriminant)) / (2.0 * speed_sq)
    return max(0.0, root)


def zone_residence_time(vehicle: Vehicle, center: Vec2, radius_m: float) -> float:
    """Return how long a vehicle stays inside a fixed circular zone.

    Used for RSU coverage dwell and for cluster regions pinned to a
    geographic anchor.  Returns ``inf`` for a vehicle at rest inside.
    """
    if radius_m <= 0:
        raise ConfigurationError("radius_m must be positive")
    rel_pos = vehicle.position - center
    if rel_pos.norm() > radius_m:
        return 0.0
    velocity = vehicle.velocity
    speed_sq = velocity.dot(velocity)
    if speed_sq == 0.0:
        return math.inf
    b_coef = 2.0 * rel_pos.dot(velocity)
    c_coef = rel_pos.dot(rel_pos) - radius_m * radius_m
    discriminant = b_coef * b_coef - 4.0 * speed_sq * c_coef
    if discriminant < 0:
        return 0.0
    return max(0.0, (-b_coef + math.sqrt(discriminant)) / (2.0 * speed_sq))


@dataclass(frozen=True)
class DwellEstimate:
    """An estimate of remaining co-travel time, with its ground truth."""

    estimated_s: float
    true_s: float

    @property
    def error_s(self) -> float:
        """Signed estimation error (positive = over-estimate)."""
        if math.isinf(self.true_s) and math.isinf(self.estimated_s):
            return 0.0
        return self.estimated_s - self.true_s


class DwellEstimator:
    """Noisy dwell estimator with controllable bias and spread.

    ``bias`` scales the truth (1.0 = unbiased, 1.5 = chronic
    over-estimation); ``noise_std_fraction`` adds relative Gaussian
    noise.  Experiment E8 sweeps these to reproduce the paper's
    under/over-estimation trade-off.
    """

    #: Cap used when the true dwell is infinite (stable platoon).
    HORIZON_S = 600.0

    def __init__(
        self,
        rng: SeededRng,
        bias: float = 1.0,
        noise_std_fraction: float = 0.15,
    ) -> None:
        if bias <= 0:
            raise ConfigurationError("bias must be positive")
        if noise_std_fraction < 0:
            raise ConfigurationError("noise_std_fraction must be non-negative")
        self.rng = rng
        self.bias = bias
        self.noise_std_fraction = noise_std_fraction

    def estimate_link(self, a: Vehicle, b: Vehicle, range_m: float) -> DwellEstimate:
        """Estimate how long vehicles ``a`` and ``b`` stay connected."""
        truth = link_lifetime(a, b, range_m)
        return self._estimate(truth)

    def estimate_zone(
        self, vehicle: Vehicle, center: Vec2, radius_m: float
    ) -> DwellEstimate:
        """Estimate how long a vehicle stays inside a circular zone."""
        truth = zone_residence_time(vehicle, center, radius_m)
        return self._estimate(truth)

    def _estimate(self, truth: float) -> DwellEstimate:
        capped = min(truth, self.HORIZON_S)
        noise = 1.0 + self.rng.gauss(0.0, self.noise_std_fraction)
        estimate = max(0.0, capped * self.bias * noise)
        return DwellEstimate(estimated_s=estimate, true_s=truth)
