"""Mobility substrate: vehicles, roads, traffic models, sensors, dwell."""

from .dwell import DwellEstimate, DwellEstimator, link_lifetime, zone_residence_time
from .equipment import AutomationLevel, OnboardEquipment, RadioKind, SensorKind
from .models import (
    HighwayModel,
    ManhattanModel,
    MobilityModel,
    ParkingLotModel,
    StationaryModel,
)
from .road import Highway, ManhattanGrid, ParkingLot
from .sensors import GpsSensor, Radar, RadarContact, SensorReading, SensorSuite, Speedometer
from .trace import MobilityTrace, TracePoint, TraceRecorder, TraceReplayModel
from .vehicle import Vehicle, next_vehicle_id

__all__ = [
    "AutomationLevel",
    "DwellEstimate",
    "DwellEstimator",
    "GpsSensor",
    "Highway",
    "HighwayModel",
    "ManhattanGrid",
    "ManhattanModel",
    "MobilityModel",
    "MobilityTrace",
    "OnboardEquipment",
    "ParkingLot",
    "ParkingLotModel",
    "Radar",
    "RadarContact",
    "RadioKind",
    "SensorKind",
    "SensorReading",
    "SensorSuite",
    "Speedometer",
    "StationaryModel",
    "TracePoint",
    "TraceRecorder",
    "TraceReplayModel",
    "Vehicle",
    "link_lifetime",
    "next_vehicle_id",
    "zone_residence_time",
]
