"""Road geometries: highway segments, Manhattan grids, parking lots.

These are deliberately simple — straight multi-lane highways, rectangular
grids with intersections, and rectangular parking lots — because the
survey's arguments depend on contact-time and density regimes, not on
road curvature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..geometry import Vec2


@dataclass(frozen=True)
class Highway:
    """A straight multi-lane bidirectional highway along the x axis."""

    length_m: float = 5000.0
    lanes_per_direction: int = 2
    lane_width_m: float = 3.7

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ConfigurationError("length_m must be positive")
        if self.lanes_per_direction < 1:
            raise ConfigurationError("lanes_per_direction must be >= 1")

    @property
    def total_lanes(self) -> int:
        """Number of lanes counting both directions."""
        return 2 * self.lanes_per_direction

    def lane_y(self, lane_index: int) -> float:
        """Return the y coordinate of a lane centreline.

        Lanes ``0 .. lanes_per_direction-1`` travel east (+x) below the
        median; the remaining lanes travel west (-x) above it.
        """
        if not 0 <= lane_index < self.total_lanes:
            raise ConfigurationError(
                f"lane_index {lane_index} out of range 0..{self.total_lanes - 1}"
            )
        if lane_index < self.lanes_per_direction:
            return -(lane_index + 0.5) * self.lane_width_m
        return (lane_index - self.lanes_per_direction + 0.5) * self.lane_width_m

    def lane_heading(self, lane_index: int) -> float:
        """Return the travel heading (radians) of a lane."""
        if lane_index < self.lanes_per_direction:
            return 0.0
        return math.pi

    def wrap_x(self, x: float) -> float:
        """Wrap an x coordinate into ``[0, length_m)`` (ring highway)."""
        return x % self.length_m

    def contains(self, point: Vec2) -> bool:
        """Return True if the point lies on the carriageway."""
        half_width = self.lanes_per_direction * self.lane_width_m
        return 0.0 <= point.x <= self.length_m and -half_width <= point.y <= half_width


@dataclass(frozen=True)
class ManhattanGrid:
    """A rectangular street grid with uniformly spaced intersections."""

    blocks_x: int = 5
    blocks_y: int = 5
    block_size_m: float = 400.0

    def __post_init__(self) -> None:
        if self.blocks_x < 1 or self.blocks_y < 1:
            raise ConfigurationError("grid must have at least one block per axis")
        if self.block_size_m <= 0:
            raise ConfigurationError("block_size_m must be positive")

    @property
    def width_m(self) -> float:
        """Total east-west extent."""
        return self.blocks_x * self.block_size_m

    @property
    def height_m(self) -> float:
        """Total north-south extent."""
        return self.blocks_y * self.block_size_m

    def intersections(self) -> List[Vec2]:
        """Return all intersection points of the grid."""
        return [
            Vec2(i * self.block_size_m, j * self.block_size_m)
            for i in range(self.blocks_x + 1)
            for j in range(self.blocks_y + 1)
        ]

    def nearest_intersection(self, point: Vec2) -> Vec2:
        """Return the intersection closest to ``point``."""
        grid_x = round(point.x / self.block_size_m)
        grid_y = round(point.y / self.block_size_m)
        grid_x = max(0, min(self.blocks_x, grid_x))
        grid_y = max(0, min(self.blocks_y, grid_y))
        return Vec2(grid_x * self.block_size_m, grid_y * self.block_size_m)

    def is_intersection(self, point: Vec2, tolerance_m: float = 1.0) -> bool:
        """Return True if the point is within ``tolerance_m`` of a corner."""
        nearest = self.nearest_intersection(point)
        return point.distance_to(nearest) <= tolerance_m

    def clamp(self, point: Vec2) -> Vec2:
        """Clamp a point into the grid's bounding box."""
        return Vec2(
            max(0.0, min(self.width_m, point.x)),
            max(0.0, min(self.height_m, point.y)),
        )

    def allowed_headings(self, point: Vec2) -> List[float]:
        """Return the headings a vehicle may take from an intersection.

        Edges of the grid exclude headings that would leave the map.
        """
        headings: List[float] = []
        if point.x < self.width_m:
            headings.append(0.0)  # east
        if point.x > 0.0:
            headings.append(math.pi)  # west
        if point.y < self.height_m:
            headings.append(math.pi / 2.0)  # north
        if point.y > 0.0:
            headings.append(-math.pi / 2.0)  # south
        return headings


@dataclass(frozen=True)
class ParkingLot:
    """A rectangular parking lot with a fixed grid of parking spots."""

    rows: int = 10
    columns: int = 20
    spot_spacing_m: float = 6.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ConfigurationError("parking lot must have at least one spot")
        if self.spot_spacing_m <= 0:
            raise ConfigurationError("spot_spacing_m must be positive")

    @property
    def capacity(self) -> int:
        """Total number of parking spots."""
        return self.rows * self.columns

    def spot_position(self, index: int) -> Vec2:
        """Return the location of spot ``index`` (row-major order)."""
        if not 0 <= index < self.capacity:
            raise ConfigurationError(f"spot index {index} out of range 0..{self.capacity - 1}")
        row, col = divmod(index, self.columns)
        return Vec2(col * self.spot_spacing_m, row * self.spot_spacing_m)

    def bounds(self) -> Tuple[float, float]:
        """Return the (width, height) of the lot in metres."""
        return ((self.columns - 1) * self.spot_spacing_m, (self.rows - 1) * self.spot_spacing_m)
