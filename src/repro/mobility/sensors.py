"""Sensor models with configurable noise.

Sensing is one of the four pooled resource kinds the paper names.  These
models produce noisy readings of ground truth so the trust layer has
something realistic to validate: an honest vehicle's speed claim differs
from truth by sensor noise, while a malicious vehicle's claim differs by
an injected offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..sim.rng import SeededRng
from .equipment import SensorKind
from .vehicle import Vehicle


@dataclass(frozen=True)
class SensorReading:
    """One timestamped reading taken by a vehicle's sensor."""

    sensor: SensorKind
    vehicle_id: str
    time: float
    value: object

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("reading time must be non-negative")


class GpsSensor:
    """GPS position sensor with isotropic Gaussian error."""

    def __init__(self, rng: SeededRng, error_std_m: float = 2.5) -> None:
        if error_std_m < 0:
            raise ConfigurationError("error_std_m must be non-negative")
        self.rng = rng
        self.error_std_m = error_std_m

    def read(self, vehicle: Vehicle, time: float) -> SensorReading:
        """Return a noisy position fix for ``vehicle``."""
        noisy = Vec2(
            vehicle.position.x + self.rng.gauss(0.0, self.error_std_m),
            vehicle.position.y + self.rng.gauss(0.0, self.error_std_m),
        )
        return SensorReading(SensorKind.GPS, vehicle.vehicle_id, time, noisy)


class Speedometer:
    """Speed sensor with multiplicative Gaussian error."""

    def __init__(self, rng: SeededRng, relative_error_std: float = 0.02) -> None:
        if relative_error_std < 0:
            raise ConfigurationError("relative_error_std must be non-negative")
        self.rng = rng
        self.relative_error_std = relative_error_std

    def read(self, vehicle: Vehicle, time: float) -> SensorReading:
        """Return a noisy speed reading for ``vehicle``."""
        factor = 1.0 + self.rng.gauss(0.0, self.relative_error_std)
        return SensorReading(
            SensorKind.SPEEDOMETER, vehicle.vehicle_id, time, vehicle.speed_mps * factor
        )


@dataclass(frozen=True)
class RadarContact:
    """A single target detected by a radar sweep."""

    target_id: str
    range_m: float
    bearing_rad: float


class Radar:
    """Range-limited neighbor detector with range noise and misses."""

    def __init__(
        self,
        rng: SeededRng,
        max_range_m: float = 150.0,
        range_error_std_m: float = 1.0,
        detection_probability: float = 0.97,
    ) -> None:
        if max_range_m <= 0:
            raise ConfigurationError("max_range_m must be positive")
        if not 0.0 <= detection_probability <= 1.0:
            raise ConfigurationError("detection_probability must be in [0, 1]")
        self.rng = rng
        self.max_range_m = max_range_m
        self.range_error_std_m = range_error_std_m
        self.detection_probability = detection_probability

    def sweep(
        self, vehicle: Vehicle, others: Sequence[Vehicle], time: float
    ) -> SensorReading:
        """Return detected contacts among ``others`` within range."""
        contacts: List[RadarContact] = []
        for other in others:
            if other.vehicle_id == vehicle.vehicle_id:
                continue
            true_range = vehicle.distance_to(other)
            if true_range > self.max_range_m:
                continue
            if not self.rng.chance(self.detection_probability):
                continue
            offset = other.position - vehicle.position
            contacts.append(
                RadarContact(
                    target_id=other.vehicle_id,
                    range_m=max(0.0, true_range + self.rng.gauss(0.0, self.range_error_std_m)),
                    bearing_rad=offset.heading(),
                )
            )
        return SensorReading(SensorKind.RADAR, vehicle.vehicle_id, time, contacts)


class SensorSuite:
    """Bundle of the sensors a vehicle actually carries.

    Reading a sensor the vehicle does not carry returns ``None``, which
    mirrors how task allocation must check equipment before assignment
    (paper §V.A: "what kind of sensors this vehicle has").
    """

    def __init__(self, vehicle: Vehicle, rng: SeededRng) -> None:
        self.vehicle = vehicle
        stream = rng.fork(f"sensors/{vehicle.vehicle_id}")
        self._gps = GpsSensor(stream.fork("gps"))
        self._speedometer = Speedometer(stream.fork("speed"))
        self._radar = Radar(stream.fork("radar"))

    def read_gps(self, time: float) -> Optional[SensorReading]:
        """Return a GPS fix, or None if no GPS is carried."""
        if not self.vehicle.equipment.has_sensor(SensorKind.GPS):
            return None
        return self._gps.read(self.vehicle, time)

    def read_speed(self, time: float) -> Optional[SensorReading]:
        """Return a speed reading, or None if no speedometer is carried."""
        if not self.vehicle.equipment.has_sensor(SensorKind.SPEEDOMETER):
            return None
        return self._speedometer.read(self.vehicle, time)

    def radar_sweep(
        self, others: Sequence[Vehicle], time: float
    ) -> Optional[SensorReading]:
        """Return radar contacts, or None if no radar is carried."""
        if not self.vehicle.equipment.has_sensor(SensorKind.RADAR):
            return None
        return self._radar.sweep(self.vehicle, others, time)
