"""On-board equipment of autonomous vehicles (paper Fig. 1).

The paper enumerates three equipment groups — embedded sensors, on-board
units (storage, computing) and wireless network interfaces — and ties the
SAE automation level to equipment richness.  This module models both so
task allocation and access-control decisions can depend on what a vehicle
actually carries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet

from ..errors import ConfigurationError


class AutomationLevel(enum.IntEnum):
    """SAE J3016 driving automation levels (paper §II.A)."""

    NO_AUTOMATION = 0
    DRIVER_ASSISTANCE = 1
    PARTIAL_AUTOMATION = 2
    CONDITIONAL_AUTOMATION = 3
    HIGH_AUTOMATION = 4
    FULL_AUTOMATION = 5

    @property
    def is_autonomous(self) -> bool:
        """True for conditional automation and above."""
        return self >= AutomationLevel.CONDITIONAL_AUTOMATION


class SensorKind(enum.Enum):
    """Embedded sensor families named by the paper (Fig. 1)."""

    OPTICAL = "optical"
    INFRARED = "infrared"
    RADAR = "radar"
    LIDAR = "lidar"
    CAMERA = "camera"
    GPS = "gps"
    SPEEDOMETER = "speedometer"


class RadioKind(enum.Enum):
    """Wireless interfaces a vehicle may carry."""

    DSRC = "dsrc"  # V2V / V2I short range
    CELLULAR = "cellular"  # wide-area uplink


#: Sensor sets that plausibly accompany each automation level.
_LEVEL_SENSORS = {
    AutomationLevel.NO_AUTOMATION: {SensorKind.GPS, SensorKind.SPEEDOMETER},
    AutomationLevel.DRIVER_ASSISTANCE: {
        SensorKind.GPS,
        SensorKind.SPEEDOMETER,
        SensorKind.RADAR,
    },
    AutomationLevel.PARTIAL_AUTOMATION: {
        SensorKind.GPS,
        SensorKind.SPEEDOMETER,
        SensorKind.RADAR,
        SensorKind.CAMERA,
    },
    AutomationLevel.CONDITIONAL_AUTOMATION: {
        SensorKind.GPS,
        SensorKind.SPEEDOMETER,
        SensorKind.RADAR,
        SensorKind.CAMERA,
        SensorKind.OPTICAL,
    },
    AutomationLevel.HIGH_AUTOMATION: {
        SensorKind.GPS,
        SensorKind.SPEEDOMETER,
        SensorKind.RADAR,
        SensorKind.CAMERA,
        SensorKind.OPTICAL,
        SensorKind.LIDAR,
    },
    AutomationLevel.FULL_AUTOMATION: set(SensorKind),
}


@dataclass(frozen=True)
class OnboardEquipment:
    """The resources a single vehicle contributes to a v-cloud.

    ``compute_mips`` is an abstract work rate (million instructions per
    simulated second); ``storage_bytes`` and ``bandwidth_bps`` bound what
    the vehicle can lend to the resource pool.
    """

    compute_mips: float = 2000.0
    storage_bytes: int = 64 * 1024**3
    bandwidth_bps: float = 6_000_000.0
    sensors: FrozenSet[SensorKind] = field(
        default_factory=lambda: frozenset(_LEVEL_SENSORS[AutomationLevel.HIGH_AUTOMATION])
    )
    radios: FrozenSet[RadioKind] = field(
        default_factory=lambda: frozenset({RadioKind.DSRC})
    )
    tamper_proof_device: bool = True
    plugged_in: bool = False

    def __post_init__(self) -> None:
        if self.compute_mips <= 0:
            raise ConfigurationError("compute_mips must be positive")
        if self.storage_bytes < 0:
            raise ConfigurationError("storage_bytes must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")

    def has_sensor(self, kind: SensorKind) -> bool:
        """Return True if the vehicle carries the given sensor family."""
        return kind in self.sensors

    def has_radio(self, kind: RadioKind) -> bool:
        """Return True if the vehicle carries the given radio."""
        return kind in self.radios

    @staticmethod
    def for_level(
        level: AutomationLevel,
        cellular: bool = False,
        compute_mips: float = 2000.0,
        storage_bytes: int = 64 * 1024**3,
    ) -> "OnboardEquipment":
        """Build a plausible equipment loadout for an automation level.

        Higher levels carry richer sensors and proportionally larger
        compute (Fig. 1: higher automation implies more on-board power).
        """
        radios = {RadioKind.DSRC}
        if cellular:
            radios.add(RadioKind.CELLULAR)
        scale = 0.5 + 0.25 * int(level)
        return OnboardEquipment(
            compute_mips=compute_mips * scale,
            storage_bytes=storage_bytes,
            sensors=frozenset(_LEVEL_SENSORS[level]),
            radios=frozenset(radios),
        )
