"""Mobility trace recording and replay.

Recording positions lets experiments (and the privacy adversary of
experiment E3) analyse movement after the fact; replay makes a mobility
pattern repeatable across protocol variants so comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..sim.world import World
from .models import MobilityModel
from .vehicle import Vehicle


@dataclass(frozen=True)
class TracePoint:
    """One vehicle's state at one instant."""

    time: float
    vehicle_id: str
    position: Vec2
    speed_mps: float
    heading_rad: float


@dataclass
class MobilityTrace:
    """A time-ordered collection of :class:`TracePoint` records."""

    points: List[TracePoint] = field(default_factory=list)

    def record(self, time: float, vehicle: Vehicle) -> None:
        """Append the vehicle's current state at ``time``."""
        self.points.append(
            TracePoint(
                time=time,
                vehicle_id=vehicle.vehicle_id,
                position=vehicle.position,
                speed_mps=vehicle.speed_mps,
                heading_rad=vehicle.heading_rad,
            )
        )

    def vehicle_ids(self) -> List[str]:
        """Return the distinct vehicle ids in first-seen order."""
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.vehicle_id, None)
        return list(seen)

    def for_vehicle(self, vehicle_id: str) -> List[TracePoint]:
        """Return this vehicle's points in time order."""
        return [p for p in self.points if p.vehicle_id == vehicle_id]

    def position_at(self, vehicle_id: str, time: float) -> Optional[Vec2]:
        """Linearly interpolate the vehicle's position at ``time``.

        Returns None if the vehicle has no points bracketing ``time``.
        """
        track = self.for_vehicle(vehicle_id)
        if not track:
            return None
        if time <= track[0].time:
            return track[0].position
        if time >= track[-1].time:
            return track[-1].position
        for earlier, later in zip(track, track[1:]):
            if earlier.time <= time <= later.time:
                span = later.time - earlier.time
                if span == 0:
                    return earlier.position
                alpha = (time - earlier.time) / span
                return earlier.position + (later.position - earlier.position) * alpha
        return None

    def duration(self) -> float:
        """Return the time span covered by the trace."""
        if not self.points:
            return 0.0
        return self.points[-1].time - self.points[0].time


class TraceRecorder:
    """Periodically samples a mobility model's population into a trace."""

    def __init__(
        self, world: World, model: MobilityModel, interval_s: float = 1.0
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self.world = world
        self.model = model
        self.interval_s = interval_s
        self.trace = MobilityTrace()
        self._task = None

    def start(self) -> None:
        """Begin sampling."""
        if self._task is None:
            self._task = self.world.engine.call_every(
                self.interval_s, self._sample, label="trace-sample"
            )

    def stop(self) -> None:
        """Stop sampling."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _sample(self) -> None:
        now = self.world.now
        for vehicle in self.model.vehicles:
            self.trace.record(now, vehicle)


class TraceReplayModel(MobilityModel):
    """A mobility model that replays a recorded trace.

    Vehicles follow the recorded positions exactly; vehicles absent from
    the trace at the current time hold their last known position.
    """

    def __init__(self, world: World, trace: MobilityTrace) -> None:
        super().__init__(world)
        if not trace.points:
            raise ConfigurationError("cannot replay an empty trace")
        self.trace = trace
        self._start_time = trace.points[0].time

    def populate_from_trace(self) -> List[Vehicle]:
        """Create one vehicle per distinct id in the trace."""
        created: List[Vehicle] = []
        for vehicle_id in self.trace.vehicle_ids():
            first = self.trace.for_vehicle(vehicle_id)[0]
            vehicle = Vehicle(
                vehicle_id=f"replay-{vehicle_id}",
                position=first.position,
                speed_mps=first.speed_mps,
                heading_rad=first.heading_rad,
            )
            self.add_vehicle(vehicle)
            created.append(vehicle)
        return created

    def _spawn_vehicle(self) -> Vehicle:
        raise ConfigurationError("TraceReplayModel populates from its trace")

    def _move_vehicle(self, vehicle: Vehicle, dt: float) -> None:
        source_id = vehicle.vehicle_id.replace("replay-", "", 1)
        position = self.trace.position_at(
            source_id, self._start_time + self.world.now
        )
        if position is not None:
            vehicle.position = position
