"""vcloud-repro: a vehicular cloud simulation framework.

Reproduction of "From Autonomous Vehicles to Vehicular Clouds:
Challenges of Management, Security and Dependability" (Kang, Lin,
Bertino, Tonguz — ICDCS 2019), built as the system the paper envisions:

* a discrete-event mobility + VANET substrate (``repro.sim``,
  ``repro.mobility``, ``repro.net``, ``repro.infra``);
* the three v-cloud architectures with membership, election, dwell-aware
  task allocation, handover, replication and operating modes
  (``repro.core``);
* the four security pillars — architecture, privacy-preserving
  authentication, privacy-preserving access control, real-time
  trustworthiness evaluation (``repro.security``, ``repro.trust``);
* the paper's threat catalogue as runnable attacks (``repro.attacks``).

Quickstart::

    from repro import World, ScenarioConfig
    from repro.mobility import HighwayModel
    from repro.core import DynamicVCloud, Task

    world = World(ScenarioConfig(seed=7, vehicle_count=40))
    model = HighwayModel(world)
    model.populate(40)
    model.start()
    vc = DynamicVCloud(world, model)
    vc.start()
    record = vc.cloud.submit(Task(work_mi=5000, deadline_s=30))
    world.run_for(60)
    print(record.state, record.completion_latency_s)
"""

from .errors import (
    AuthenticationError,
    AuthorizationError,
    ConfigurationError,
    CryptoError,
    MembershipError,
    NetworkError,
    ResourceError,
    RevocationError,
    RoutingError,
    SecurityError,
    SimulationError,
    TaskError,
    TrustError,
    VCloudError,
)
from .geometry import Vec2
from .obs import (
    EventLog,
    Observability,
    Profiler,
    Tracer,
    json_report,
    prometheus_text,
    write_json_report,
)
from .sim import (
    ChannelConfig,
    CloudConfig,
    Engine,
    MetricsRegistry,
    MobilityConfig,
    ScenarioConfig,
    SecurityConfig,
    SeededRng,
    World,
)

__version__ = "1.0.0"

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "ChannelConfig",
    "CloudConfig",
    "ConfigurationError",
    "CryptoError",
    "Engine",
    "EventLog",
    "MembershipError",
    "MetricsRegistry",
    "MobilityConfig",
    "NetworkError",
    "Observability",
    "Profiler",
    "ResourceError",
    "RevocationError",
    "RoutingError",
    "ScenarioConfig",
    "SecurityConfig",
    "SecurityError",
    "SeededRng",
    "SimulationError",
    "TaskError",
    "Tracer",
    "TrustError",
    "VCloudError",
    "Vec2",
    "World",
    "__version__",
    "json_report",
    "prometheus_text",
    "write_json_report",
]
