"""Secure v-cloud initialization (§V.A "V-cloud initialization").

"When vehicles first log into a VANET, vehicles should be able to
exchange hello messages with neighboring vehicles, register themselves
with cluster head / RSUs / TA and obtain necessary information such as
pseudonyms, key pairs, random seeds."

:class:`SecureBootstrap` composes that pipeline for one vehicle:

1. TA enrollment through the configured auth protocol (one-time);
2. mutual authentication with the cloud coordinator;
3. service-access token issuance for the cloud's services
   (Park et al. [29]);
4. admission into the cloud's membership and resource pool.

Each stage's latency and infrastructure cost is recorded, so experiments
can price the *initialization phase* separately from steady state — the
distinction the infrastructure-light protocols exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SecurityError
from ..mobility.vehicle import Vehicle
from ..security.tokens import ServiceAccessToken, TokenService
from ..sim.world import World
from .vcloud import VehicularCloud


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of one vehicle's initialization pipeline."""

    vehicle_id: str
    admitted: bool
    total_latency_s: float
    infra_messages: int
    stage_latencies_s: Dict[str, float]
    token: Optional[ServiceAccessToken] = None
    failure_stage: Optional[str] = None

    @property
    def failed(self) -> bool:
        """True if any stage failed."""
        return not self.admitted


@dataclass
class BootstrapStats:
    """Aggregate outcomes across a fleet's initialization."""

    attempts: int = 0
    admitted: int = 0
    rejects_by_stage: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)

    @property
    def admission_rate(self) -> float:
        """Fraction of attempts that fully joined."""
        if self.attempts == 0:
            return 0.0
        return self.admitted / self.attempts

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end initialization latency of admitted vehicles."""
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)


class SecureBootstrap:
    """Runs the enrollment -> authenticate -> token -> admit pipeline."""

    def __init__(
        self,
        world: World,
        cloud: VehicularCloud,
        auth_protocol,
        token_service: Optional[TokenService] = None,
        service_name: str = "vcloud",
    ) -> None:
        self.world = world
        self.cloud = cloud
        self.auth_protocol = auth_protocol
        self.token_service = token_service
        self.service_name = service_name
        self.stats = BootstrapStats()

    def initialize(
        self, vehicle: Vehicle, infra_available: bool = True
    ) -> BootstrapResult:
        """Run the full initialization pipeline for one vehicle."""
        self.stats.attempts += 1
        vehicle_id = vehicle.vehicle_id
        stages: Dict[str, float] = {}
        infra_messages = 0

        # Stage 1: one-time TA enrollment (needs infrastructure).
        if not self.auth_protocol.is_enrolled(vehicle_id):
            if not infra_available:
                return self._reject(vehicle_id, stages, infra_messages, "enroll")
            receipt = self.auth_protocol.enroll(vehicle_id, now=self.world.now)
            stages["enroll"] = receipt.latency_s
            infra_messages += receipt.infra_messages
        else:
            stages["enroll"] = 0.0

        # Stage 2: mutual authentication with the coordinator.
        coordinator = self.cloud.head_id
        if coordinator is not None and coordinator != vehicle_id:
            result = self.auth_protocol.mutual_authenticate(
                vehicle_id, coordinator, now=self.world.now, infra_available=infra_available
            )
            stages["authenticate"] = result.latency_s
            infra_messages += result.infra_messages
            if not result.success:
                return self._reject(vehicle_id, stages, infra_messages, "authenticate")
        else:
            stages["authenticate"] = 0.0

        # Stage 3: service-access token (optional, needs the TA once).
        token = None
        if self.token_service is not None:
            if not infra_available:
                return self._reject(vehicle_id, stages, infra_messages, "token")
            pseudonym_id = self.auth_protocol.on_air_identity(vehicle_id, self.world.now)
            try:
                token = self.token_service.issue(
                    pseudonym_id, self.service_name, now=self.world.now
                )
                stages["token"] = 0.050  # one infra round trip
                infra_messages += 2
            except SecurityError:
                return self._reject(vehicle_id, stages, infra_messages, "token")
        else:
            stages["token"] = 0.0

        # Stage 4: membership + resource pooling. The handshake already
        # ran above, so admit without a second one.
        saved_protocol = self.cloud.auth_protocol
        self.cloud.auth_protocol = None
        try:
            admitted = self.cloud.admit(vehicle)
        finally:
            self.cloud.auth_protocol = saved_protocol
        stages["admit"] = 0.004  # membership registration message
        if not admitted:
            return self._reject(vehicle_id, stages, infra_messages, "admit")

        total = sum(stages.values())
        self.stats.admitted += 1
        self.stats.latencies_s.append(total)
        return BootstrapResult(
            vehicle_id=vehicle_id,
            admitted=True,
            total_latency_s=total,
            infra_messages=infra_messages,
            stage_latencies_s=stages,
            token=token,
        )

    def _reject(
        self,
        vehicle_id: str,
        stages: Dict[str, float],
        infra_messages: int,
        stage: str,
    ) -> BootstrapResult:
        self.stats.rejects_by_stage[stage] = (
            self.stats.rejects_by_stage.get(stage, 0) + 1
        )
        return BootstrapResult(
            vehicle_id=vehicle_id,
            admitted=False,
            total_latency_s=sum(stages.values()),
            infra_messages=infra_messages,
            stage_latencies_s=stages,
            failure_stage=stage,
        )
