"""Resource pooling (§II.C: sensing, storage, computing, networking).

Members publish a :class:`ResourceOffer` describing what they lend; a
:class:`ResourcePool` aggregates offers and tracks reservations so task
allocation can reason about *free* capacity, not nameplate capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..errors import ResourceError
from ..mobility.equipment import OnboardEquipment, SensorKind


class ResourceKind(enum.Enum):
    """The four pooled resource classes the paper names."""

    COMPUTE = "compute"
    STORAGE = "storage"
    BANDWIDTH = "bandwidth"
    SENSING = "sensing"


@dataclass(frozen=True)
class ResourceOffer:
    """What one member lends to the cloud."""

    vehicle_id: str
    compute_mips: float
    storage_bytes: int
    bandwidth_bps: float
    sensors: FrozenSet[SensorKind] = frozenset()

    @staticmethod
    def from_equipment(
        vehicle_id: str,
        equipment: OnboardEquipment,
        lend_fraction: float = 0.8,
    ) -> "ResourceOffer":
        """Derive an offer from on-board equipment.

        ``lend_fraction`` keeps some capacity for the vehicle's own
        safety-critical workloads.
        """
        if not 0.0 < lend_fraction <= 1.0:
            raise ResourceError("lend_fraction must be in (0, 1]")
        return ResourceOffer(
            vehicle_id=vehicle_id,
            compute_mips=equipment.compute_mips * lend_fraction,
            storage_bytes=int(equipment.storage_bytes * lend_fraction),
            bandwidth_bps=equipment.bandwidth_bps * lend_fraction,
            sensors=frozenset(equipment.sensors),
        )


@dataclass
class _MemberState:
    offer: ResourceOffer
    reserved_mips: float = 0.0
    reserved_storage: int = 0

    @property
    def free_mips(self) -> float:
        return self.offer.compute_mips - self.reserved_mips

    @property
    def free_storage(self) -> int:
        return self.offer.storage_bytes - self.reserved_storage


@dataclass(frozen=True)
class Reservation:
    """A granted slice of a member's resources."""

    vehicle_id: str
    mips: float
    storage_bytes: int


class ResourcePool:
    """Aggregated, reservation-aware view of member resources."""

    def __init__(self) -> None:
        self._members: Dict[str, _MemberState] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, vehicle_id: str) -> bool:
        return vehicle_id in self._members

    # -- membership -----------------------------------------------------------

    def add_offer(self, offer: ResourceOffer) -> None:
        """Add (or replace) a member's offer."""
        self._members[offer.vehicle_id] = _MemberState(offer=offer)

    def remove_member(self, vehicle_id: str) -> Optional[ResourceOffer]:
        """Withdraw a member's offer (departure); returns the old offer."""
        state = self._members.pop(vehicle_id, None)
        return state.offer if state is not None else None

    def member_ids(self) -> List[str]:
        """All contributing members."""
        return list(self._members)

    def offer_of(self, vehicle_id: str) -> ResourceOffer:
        """Return a member's offer."""
        state = self._members.get(vehicle_id)
        if state is None:
            raise ResourceError(f"no offer from {vehicle_id!r}")
        return state.offer

    # -- capacity queries --------------------------------------------------------

    def total_mips(self) -> float:
        """Nameplate compute across members."""
        return sum(s.offer.compute_mips for s in self._members.values())

    def free_mips(self, vehicle_id: str) -> float:
        """Unreserved compute of one member."""
        state = self._members.get(vehicle_id)
        if state is None:
            raise ResourceError(f"no offer from {vehicle_id!r}")
        return state.free_mips

    def total_free_mips(self) -> float:
        """Unreserved compute across members."""
        return sum(s.free_mips for s in self._members.values())

    def total_storage(self) -> int:
        """Nameplate storage across members."""
        return sum(s.offer.storage_bytes for s in self._members.values())

    def members_with_sensor(self, sensor: SensorKind) -> List[str]:
        """Members carrying a given sensor family."""
        return [
            vid for vid, s in self._members.items() if sensor in s.offer.sensors
        ]

    def utilization(self) -> float:
        """Reserved fraction of total compute (0 when empty)."""
        total = self.total_mips()
        if total == 0:
            return 0.0
        reserved = sum(s.reserved_mips for s in self._members.values())
        return reserved / total

    # -- reservations ----------------------------------------------------------------

    def reserve(
        self, vehicle_id: str, mips: float, storage_bytes: int = 0
    ) -> Reservation:
        """Reserve capacity on one member; raises if insufficient."""
        state = self._members.get(vehicle_id)
        if state is None:
            raise ResourceError(f"no offer from {vehicle_id!r}")
        if mips < 0 or storage_bytes < 0:
            raise ResourceError("reservation amounts must be non-negative")
        if state.free_mips < mips:
            raise ResourceError(
                f"{vehicle_id!r} has {state.free_mips:.0f} free MIPS, need {mips:.0f}"
            )
        if state.free_storage < storage_bytes:
            raise ResourceError(
                f"{vehicle_id!r} has {state.free_storage} free bytes, need {storage_bytes}"
            )
        state.reserved_mips += mips
        state.reserved_storage += storage_bytes
        return Reservation(vehicle_id=vehicle_id, mips=mips, storage_bytes=storage_bytes)

    def release(self, reservation: Reservation) -> None:
        """Release a previously granted reservation.

        Releasing after the member departed is a no-op (its resources
        left with it).
        """
        state = self._members.get(reservation.vehicle_id)
        if state is None:
            return
        state.reserved_mips = max(0.0, state.reserved_mips - reservation.mips)
        state.reserved_storage = max(0, state.reserved_storage - reservation.storage_bytes)
