"""Task model for vehicular cloud computing.

A :class:`Task` is a unit of offloadable work with a deadline, input and
output transfer sizes, and optional sensor requirements ("what kind of
sensors this vehicle has", §V.A).  A :class:`TaskRecord` tracks one
task's life cycle, including the checkpoint fraction used by handover —
the paper's alternative to "simply dropping unfinished tasks".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..errors import TaskError
from ..mobility.equipment import SensorKind

_task_counter = itertools.count(1)


def next_task_id() -> str:
    """Return a fresh process-unique task id."""
    return f"task-{next(_task_counter)}"


def reset_task_ids() -> None:
    """Rewind the process-global task id counter to ``task-1``.

    Task ids feed sorted orders and RNG fork names, so byte-identical
    cross-run replay (chaos reproducers, seeded benchmarks) must rewind
    this counter before building each fresh world.  Never call it while
    a world that already holds tasks is still in use.
    """
    global _task_counter
    _task_counter = itertools.count(1)


class TaskState(enum.Enum):
    """Life-cycle states of a cloud task."""

    PENDING = "pending"
    ASSIGNED = "assigned"
    RUNNING = "running"
    COMPLETED = "completed"
    HANDED_OVER = "handed_over"
    DROPPED = "dropped"
    FAILED = "failed"


@dataclass(frozen=True)
class Task:
    """An offloadable computation."""

    work_mi: float  # million instructions
    input_bytes: int = 10_000
    output_bytes: int = 2_000
    deadline_s: Optional[float] = None  # relative to submission
    required_sensors: FrozenSet[SensorKind] = frozenset()
    submitter: str = ""
    task_id: str = field(default_factory=next_task_id)

    def __post_init__(self) -> None:
        if self.work_mi <= 0:
            raise TaskError("work_mi must be positive")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise TaskError("transfer sizes must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise TaskError("deadline_s must be positive when given")

    def runtime_on(self, mips: float) -> float:
        """Pure compute time on a worker with the given rate."""
        if mips <= 0:
            raise TaskError("mips must be positive")
        return self.work_mi / mips


@dataclass
class TaskRecord:
    """Mutable execution bookkeeping for one task."""

    task: Task
    submitted_at: float
    state: TaskState = TaskState.PENDING
    worker_id: Optional[str] = None
    assigned_at: Optional[float] = None
    completed_at: Optional[float] = None
    progress: float = 0.0  # completed fraction, preserved across handover
    handovers: int = 0
    reassignments: int = 0
    wasted_work_mi: float = 0.0  # progress discarded by drops
    workers_history: List[str] = field(default_factory=list)

    @property
    def remaining_work_mi(self) -> float:
        """Work still to do given the preserved progress.

        Clamped at zero: float rounding near full progress (e.g. a
        checkpoint at ``1.0 - 1e-17``) must never surface as negative
        remaining work, which would corrupt downstream runtime math.
        """
        return max(0.0, self.task.work_mi * (1.0 - self.progress))

    @property
    def completion_latency_s(self) -> Optional[float]:
        """Submission-to-completion delay, None until completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def met_deadline(self) -> Optional[bool]:
        """Whether the deadline held; None if no deadline or unfinished."""
        if self.task.deadline_s is None or self.completed_at is None:
            return None
        return self.completion_latency_s <= self.task.deadline_s

    # -- transitions ---------------------------------------------------------

    def assign(self, worker_id: str, now: float) -> None:
        """Bind the task to a worker."""
        if self.state not in (TaskState.PENDING, TaskState.HANDED_OVER, TaskState.DROPPED):
            raise TaskError(f"cannot assign task in state {self.state}")
        if self.state is not TaskState.PENDING:
            self.reassignments += 1
        self.state = TaskState.ASSIGNED
        self.worker_id = worker_id
        self.assigned_at = now
        self.workers_history.append(worker_id)

    def start(self) -> None:
        """Worker begins executing."""
        if self.state is not TaskState.ASSIGNED:
            raise TaskError(f"cannot start task in state {self.state}")
        self.state = TaskState.RUNNING

    def checkpoint(self, progress: float) -> None:
        """Record completed fraction (monotone non-decreasing)."""
        if not 0.0 <= progress <= 1.0:
            raise TaskError("progress must be in [0, 1]")
        if progress < self.progress:
            raise TaskError("progress cannot go backwards")
        self.progress = progress

    def complete(self, now: float) -> None:
        """Mark the task finished."""
        if self.state is not TaskState.RUNNING:
            raise TaskError(f"cannot complete task in state {self.state}")
        self.state = TaskState.COMPLETED
        self.progress = 1.0
        self.completed_at = now

    def hand_over(self) -> None:
        """Preserve progress and detach from the departing worker."""
        if self.state not in (TaskState.ASSIGNED, TaskState.RUNNING):
            raise TaskError(f"cannot hand over task in state {self.state}")
        self.state = TaskState.HANDED_OVER
        self.handovers += 1
        self.worker_id = None

    def drop(self) -> None:
        """Discard progress (the conventional-cloud behaviour)."""
        if self.state not in (TaskState.ASSIGNED, TaskState.RUNNING):
            raise TaskError(f"cannot drop task in state {self.state}")
        self.wasted_work_mi += self.task.work_mi * self.progress
        self.progress = 0.0
        self.state = TaskState.DROPPED
        self.worker_id = None

    def fail(self) -> None:
        """Terminal failure (deadline blown, no eligible worker, ...)."""
        self.state = TaskState.FAILED
        self.worker_id = None
