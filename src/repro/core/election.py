"""Broker / captain election (§IV.A.2).

"An efficient architecture for dynamic v-clouds is based on election
protocols by which vehicles are selected in order to serve as the cloud
brokers."  The electorate scores candidates on resources, expected dwell
and centrality; the deterministic tie-break makes elections reproducible
and lets every member compute the same winner locally (no extra rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..errors import MembershipError
from ..geometry import Vec2, centroid


@dataclass(frozen=True)
class BrokerCandidate:
    """One member standing for election."""

    vehicle_id: str
    compute_mips: float
    estimated_dwell_s: float
    position: Vec2


@dataclass(frozen=True)
class ElectionResult:
    """Winner plus the full ranking for diagnostics."""

    winner_id: str
    scores: Dict[str, float]
    electorate_size: int


class BrokerElection:
    """Score-based captain election with deterministic tie-breaks."""

    def __init__(
        self,
        resource_weight: float = 0.35,
        dwell_weight: float = 0.35,
        centrality_weight: float = 0.30,
        dwell_horizon_s: float = 300.0,
    ) -> None:
        total = resource_weight + dwell_weight + centrality_weight
        if total <= 0:
            raise MembershipError("election weights must sum to a positive value")
        self.resource_weight = resource_weight / total
        self.dwell_weight = dwell_weight / total
        self.centrality_weight = centrality_weight / total
        self.dwell_horizon_s = dwell_horizon_s

    def score(
        self,
        candidate: BrokerCandidate,
        max_mips: float,
        center: Vec2,
        max_distance: float,
    ) -> float:
        """Composite suitability score in [0, 1]."""
        resource_term = candidate.compute_mips / max_mips if max_mips > 0 else 0.0
        dwell_term = min(1.0, candidate.estimated_dwell_s / self.dwell_horizon_s)
        if max_distance > 0:
            centrality_term = 1.0 - candidate.position.distance_to(center) / max_distance
        else:
            centrality_term = 1.0
        return (
            self.resource_weight * resource_term
            + self.dwell_weight * dwell_term
            + self.centrality_weight * max(0.0, centrality_term)
        )

    def elect(self, candidates: Sequence[BrokerCandidate]) -> ElectionResult:
        """Run one election; raises on an empty electorate."""
        if not candidates:
            raise MembershipError("cannot elect a broker from an empty electorate")
        center = centroid(c.position for c in candidates)
        max_mips = max(c.compute_mips for c in candidates)
        max_distance = max(c.position.distance_to(center) for c in candidates) or 1.0
        scores = {
            c.vehicle_id: self.score(c, max_mips, center, max_distance)
            for c in candidates
        }
        winner = max(candidates, key=lambda c: (scores[c.vehicle_id], c.vehicle_id))
        return ElectionResult(
            winner_id=winner.vehicle_id, scores=scores, electorate_size=len(candidates)
        )

    def should_reelect(
        self,
        current_head: Optional[str],
        candidates: Sequence[BrokerCandidate],
        hysteresis: float = 0.15,
    ) -> bool:
        """Whether to replace the head (with hysteresis to avoid flapping).

        The incumbent is kept unless it departed or a challenger beats
        its score by more than ``hysteresis``.
        """
        if current_head is None:
            return True
        if all(c.vehicle_id != current_head for c in candidates):
            return True
        result = self.elect(candidates)
        if result.winner_id == current_head:
            return False
        return result.scores[result.winner_id] > result.scores[current_head] + hysteresis
