"""Task handover policies (§III.A).

"Simply dropping unfinished tasks will waste lots of computing resources
and cause high network overhead ... a more interesting problem would be
how the vehicle hand over the unfinished, encrypted task to some other
vehicles."  Two policies make the trade-off measurable:

* :class:`DropPolicy` — the conventional-cloud behaviour: progress is
  discarded and the task re-runs from zero;
* :class:`CheckpointHandoverPolicy` — progress survives; the cost is a
  checkpoint transfer (state bytes over the V2V link) plus, when an auth
  protocol is configured, a re-authentication handshake with the new
  worker — the "encrypted task" aspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import TaskError
from .tasks import TaskRecord


@dataclass(frozen=True)
class HandoverOutcome:
    """What departing-worker handling decided and cost."""

    preserved_progress: float
    overhead_s: float
    overhead_bytes: int
    requeue: bool  # True = task goes back to the allocator
    #: Checkpoint version carried by this transfer (0 = no checkpoint).
    version: int = 0


class HandoverPolicy:
    """Strategy applied when a task's worker departs."""

    name = "base"

    def on_worker_departed(self, record: TaskRecord, now: float) -> HandoverOutcome:
        """Transition the record and return the cost of the transition."""
        raise NotImplementedError


class DropPolicy(HandoverPolicy):
    """Discard progress; requeue from zero (wastes completed work)."""

    name = "drop"

    def on_worker_departed(self, record: TaskRecord, now: float) -> HandoverOutcome:
        record.drop()
        return HandoverOutcome(
            preserved_progress=0.0,
            overhead_s=0.0,
            overhead_bytes=0,
            requeue=True,
        )


class CheckpointHandoverPolicy(HandoverPolicy):
    """Preserve progress; pay checkpoint-transfer and re-auth costs.

    ``state_bytes_per_mi`` sizes the checkpoint proportionally to work
    completed; ``transfer_bps`` is the effective V2V transfer rate;
    ``reauth_latency_s`` models the security handshake with the next
    worker (0 when no auth protocol is in force).

    Each successful handover mints a new checkpoint *version* per task,
    and :meth:`accept_checkpoint` rejects checkpoints older than the
    newest already transferred — the storage-layer versioning argument
    applied to task state: a stale copy surfacing after churn (a slow
    worker replaying an old transfer) must not roll progress back.
    """

    name = "checkpoint-handover"

    def __init__(
        self,
        state_bytes_per_mi: float = 50.0,
        transfer_bps: float = 750_000.0 * 8,
        reauth_latency_s: float = 0.0,
        min_progress_to_handover: float = 0.02,
    ) -> None:
        if state_bytes_per_mi < 0:
            raise TaskError("state_bytes_per_mi must be non-negative")
        if transfer_bps <= 0:
            raise TaskError("transfer_bps must be positive")
        self.state_bytes_per_mi = state_bytes_per_mi
        self.transfer_bps = transfer_bps
        self.reauth_latency_s = reauth_latency_s
        self.min_progress_to_handover = min_progress_to_handover
        self._versions: Dict[str, int] = {}  # task_id -> newest version
        self._progress_seen: Dict[str, float] = {}
        self.stale_checkpoints_rejected = 0

    def checkpoint_bytes(self, record: TaskRecord) -> int:
        """Size of the serialized partial state."""
        completed_mi = record.task.work_mi * record.progress
        return int(self.state_bytes_per_mi * completed_mi) + record.task.input_bytes

    def checkpoint_version(self, task_id: str) -> int:
        """Newest checkpoint version minted for one task (0 = none)."""
        return self._versions.get(task_id, 0)

    def accept_checkpoint(self, task_id: str, version: int, progress: float) -> bool:
        """Whether an arriving checkpoint copy may be applied.

        A copy older than the newest transferred version is stale and
        rejected (counted in :attr:`stale_checkpoints_rejected`); the
        current version is accepted only if it does not regress the
        progress recorded at transfer time.
        """
        newest = self._versions.get(task_id, 0)
        if version < newest or (
            version == newest and progress < self._progress_seen.get(task_id, 0.0)
        ):
            self.stale_checkpoints_rejected += 1
            return False
        return True

    def on_worker_departed(self, record: TaskRecord, now: float) -> HandoverOutcome:
        if record.progress < self.min_progress_to_handover:
            # Nothing worth carrying; cheaper to restart.
            record.drop()
            return HandoverOutcome(0.0, 0.0, 0, requeue=True)
        preserved = record.progress
        overhead_bytes = self.checkpoint_bytes(record)
        overhead_s = overhead_bytes * 8 / self.transfer_bps + self.reauth_latency_s
        record.hand_over()
        task_id = record.task.task_id
        version = self._versions.get(task_id, 0) + 1
        self._versions[task_id] = version
        self._progress_seen[task_id] = preserved
        return HandoverOutcome(
            preserved_progress=preserved,
            overhead_s=overhead_s,
            overhead_bytes=overhead_bytes,
            requeue=True,
            version=version,
        )
