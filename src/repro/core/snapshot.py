"""Topology snapshots and attacker forensics (§V.A "V-cloud management").

"For the security purpose, the authority should be able to reveal
vehicles' real identities, recover the snapshot of the topology in an
area so as to identify the attackers ... the more management data
recorded, the more possible that the user privacy will be violated."

A :class:`TopologyRecorder` samples (pseudonymous) positions and link
state at a configurable cadence; :meth:`ForensicService.investigate`
joins a snapshot window with the audit log and the TA's escrow to name
suspects — and reports how many *innocent* vehicles' movements the
investigation had to expose, making the paper's privacy-vs-
accountability tension a measurable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..security.access.audit import AuditLog
from ..security.pki import TrustedAuthority
from ..sim.world import World


@dataclass(frozen=True)
class TopologySnapshot:
    """One instant's view: pseudonym -> position, plus live links."""

    time: float
    positions: Dict[str, Vec2]
    links: Tuple[Tuple[str, str], ...]
    #: Monotone sequence number assigned by the recorder (0 = unversioned).
    version: int = 0

    def nodes_in_area(self, center: Vec2, radius_m: float) -> List[str]:
        """Pseudonyms observed inside a circular area."""
        return sorted(
            identity
            for identity, position in self.positions.items()
            if position.distance_to(center) <= radius_m
        )


class TopologyRecorder:
    """Periodically samples the fleet's pseudonymous topology."""

    def __init__(
        self,
        world: World,
        identity_of,  # Callable[[Vehicle], str]: the *on-air* identity
        vehicles,  # Sequence[Vehicle], live list
        link_range_m: float = 300.0,
        interval_s: float = 5.0,
        retention: int = 500,
    ) -> None:
        if interval_s <= 0 or retention < 1:
            raise ConfigurationError("interval_s > 0 and retention >= 1 required")
        self.world = world
        self.identity_of = identity_of
        self.vehicles = vehicles
        self.link_range_m = link_range_m
        self.interval_s = interval_s
        self.retention = retention
        self.snapshots: List[TopologySnapshot] = []
        self._version = 0
        self._task = None

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._task is None:
            self._task = self.world.engine.call_every(
                self.interval_s, self.sample, label="topology-sample"
            )

    def stop(self) -> None:
        """Stop sampling."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample(self) -> TopologySnapshot:
        """Take one snapshot now."""
        positions: Dict[str, Vec2] = {}
        for vehicle in self.vehicles:
            identity = self.identity_of(vehicle)
            positions[identity] = vehicle.position
        identities = sorted(positions)
        links = tuple(
            (a, b)
            for index, a in enumerate(identities)
            for b in identities[index + 1 :]
            if positions[a].distance_to(positions[b]) <= self.link_range_m
        )
        self._version += 1
        snapshot = TopologySnapshot(
            time=self.world.now, positions=positions, links=links, version=self._version
        )
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.retention:
            self.snapshots.pop(0)
        return snapshot

    def window(self, start: float, end: float) -> List[TopologySnapshot]:
        """Snapshots within a half-open time window [start, end)."""
        return [s for s in self.snapshots if start <= s.time < end]

    @property
    def latest_version(self) -> int:
        """Version of the newest snapshot taken (0 = none yet)."""
        return self._version

    def delta_since(self, version: int) -> List[TopologySnapshot]:
        """Retained snapshots newer than ``version``, oldest first.

        This is the versioned-state-transfer primitive: a recorder
        migrating to a new coordinator ships only the suffix the
        receiver has not seen, not the whole retention buffer.
        """
        return [s for s in self.snapshots if s.version > version]

    def ingest(self, snapshots: List[TopologySnapshot]) -> int:
        """Merge transferred snapshots; returns how many were applied.

        Duplicates and versions at or below what this recorder already
        holds are discarded, so replaying the same delta is idempotent —
        the same newest-wins rule the replicated file store applies.
        """
        applied = 0
        for snapshot in sorted(snapshots, key=lambda s: s.version):
            if snapshot.version <= self._version:
                continue
            self.snapshots.append(snapshot)
            self._version = snapshot.version
            applied += 1
        while len(self.snapshots) > self.retention:
            self.snapshots.pop(0)
        return applied

    @property
    def storage_records(self) -> int:
        """Total retained (identity, position) records — the privacy cost."""
        return sum(len(s.positions) for s in self.snapshots)


@dataclass(frozen=True)
class InvestigationReport:
    """Outcome of one forensic investigation."""

    suspects: Tuple[str, ...]  # real identities named by the TA
    suspect_pseudonyms: Tuple[str, ...]
    snapshots_examined: int
    innocents_exposed: int  # real identities revealed but not suspected

    @property
    def privacy_cost(self) -> int:
        """Total identities de-anonymized during the investigation."""
        return len(self.suspects) + self.innocents_exposed


class ForensicService:
    """The authority-side join of audit logs, snapshots and escrow."""

    def __init__(self, authority: TrustedAuthority, recorder: TopologyRecorder) -> None:
        self.authority = authority
        self.recorder = recorder
        self.investigations = 0

    def investigate(
        self,
        audit_log: AuditLog,
        area_center: Vec2,
        area_radius_m: float,
        window: Tuple[float, float],
        min_denials: int = 2,
    ) -> InvestigationReport:
        """Name attackers active in an area during a time window.

        Suspicion requires *both* signals: repeated denials in the audit
        log and physical presence in the area per the topology record.
        The report also counts how many innocent vehicles had to be
        de-anonymized to rule them out.
        """
        self.investigations += 1
        start, end = window
        snapshots = self.recorder.window(start, end)
        present: set = set()
        for snapshot in snapshots:
            present.update(snapshot.nodes_in_area(area_center, area_radius_m))
        flagged = set(audit_log.suspicious_requesters(min_denials=min_denials))
        suspect_pseudonyms = sorted(present & flagged)

        suspects = []
        innocents = 0
        # Ruling candidates in or out de-anonymizes everyone present.
        for pseudonym in sorted(present):
            real_id = self.authority.reveal(pseudonym)
            if real_id is None:
                continue
            if pseudonym in suspect_pseudonyms:
                suspects.append(real_id)
            else:
                innocents += 1
        return InvestigationReport(
            suspects=tuple(sorted(set(suspects))),
            suspect_pseudonyms=tuple(suspect_pseudonyms),
            snapshots_examined=len(snapshots),
            innocents_exposed=innocents,
        )
