"""The three v-cloud architectures of Fig. 4.

* :class:`StationaryVCloud` — parked vehicles (airport-datacenter style,
  Arif et al. [4]); members are static but battery-limited and churn via
  the parking lot's departure process.
* :class:`InfrastructureVCloud` — RSU-anchored (Yu et al. [45]):
  membership is bounded by radio coverage, coordination transits the RSU
  and dies with it.
* :class:`DynamicVCloud` — self-organized by V2V (Arkian [5], Azizian
  [6]): an elected captain coordinates, dwell estimates gate allocation,
  and the cloud survives with zero infrastructure.

All three expose the same surface — ``cloud`` (the orchestrator),
``start()`` (periodic maintenance) — so experiment E2 can swap them
under an identical task stream.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..infra.rsu import Rsu
from ..mobility.dwell import DwellEstimator, link_lifetime, zone_residence_time
from ..mobility.models import MobilityModel, ParkingLotModel
from ..mobility.vehicle import Vehicle
from ..sim.world import World
from .election import BrokerCandidate, BrokerElection
from .handover import CheckpointHandoverPolicy
from .scheduler import DwellAwareAllocator, GreedyResourceAllocator
from .vcloud import RsuCoordination, V2VCoordination, VehicularCloud


class StationaryVCloud:
    """A v-cloud formed from parked vehicles.

    Parked-and-off vehicles run on battery, so they lend a reduced
    fraction of their compute (Hou et al. [9]: "the computing power and
    the time length of providing services must be limited") unless
    plugged in.  Dwell is the expected parking residence time.
    """

    def __init__(
        self,
        world: World,
        lot_model: ParkingLotModel,
        cloud_id: str = "stationary-vc",
        battery_lend_fraction: float = 0.3,
        auth_protocol=None,
    ) -> None:
        if not 0.0 < battery_lend_fraction <= 1.0:
            raise ConfigurationError("battery_lend_fraction must be in (0, 1]")
        self.world = world
        self.lot_model = lot_model
        self.battery_lend_fraction = battery_lend_fraction
        rate = lot_model.departure_rate_per_s
        expected_dwell = (1.0 / rate) if rate > 0 else 1e9
        self.cloud = VehicularCloud(
            world,
            cloud_id,
            allocator=GreedyResourceAllocator(),
            handover_policy=CheckpointHandoverPolicy(),
            coordination=V2VCoordination(),
            auth_protocol=auth_protocol,
            dwell_lookup=lambda _vid: expected_dwell,
        )
        lot_model.on_departure(self._vehicle_departed)

    def start(self) -> None:
        """Admit every currently parked vehicle."""
        for vehicle in self.lot_model.vehicles:
            lend = 1.0 if vehicle.equipment.plugged_in else self.battery_lend_fraction
            self.cloud.admit(vehicle, lend_fraction=lend)

    def _vehicle_departed(self, vehicle: Vehicle) -> None:
        if vehicle.vehicle_id in self.cloud.membership:
            self.cloud.member_leave(vehicle.vehicle_id)


class InfrastructureVCloud:
    """An RSU-anchored v-cloud: coverage-bounded, backhaul-coordinated."""

    def __init__(
        self,
        world: World,
        rsu: Rsu,
        mobility: MobilityModel,
        cloud_id: Optional[str] = None,
        refresh_interval_s: float = 1.0,
        auth_protocol=None,
    ) -> None:
        self.world = world
        self.rsu = rsu
        self.mobility = mobility
        self.refresh_interval_s = refresh_interval_s
        self.cloud = VehicularCloud(
            world,
            cloud_id if cloud_id is not None else f"infra-vc-{rsu.node_id}",
            allocator=DwellAwareAllocator(),
            handover_policy=CheckpointHandoverPolicy(),
            coordination=RsuCoordination(rsu),
            auth_protocol=auth_protocol,
            dwell_lookup=self._dwell_of,
            head_id=rsu.node_id,
        )
        # The RSU coordinates but contributes no vehicle resources; seed
        # the head explicitly so members authenticate against it.
        self._task = None

    def _dwell_of(self, vehicle_id: str) -> float:
        vehicle = self._find_vehicle(vehicle_id)
        if vehicle is None:
            return 0.0
        return zone_residence_time(vehicle, self.rsu.position, self.rsu.radio_range_m)

    def _find_vehicle(self, vehicle_id: str) -> Optional[Vehicle]:
        for vehicle in self.mobility.vehicles:
            if vehicle.vehicle_id == vehicle_id:
                return vehicle
        return None

    def start(self) -> None:
        """Begin periodic coverage-based membership refresh."""
        self.refresh()
        if self._task is None:
            self._task = self.world.engine.call_every(
                self.refresh_interval_s, self.refresh, label="infra-vc-refresh"
            )

    def stop(self) -> None:
        """Stop maintenance."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def refresh(self) -> None:
        """Evict members out of coverage; admit covered newcomers.

        While the RSU is damaged the cloud cannot admit or coordinate —
        the availability cliff of this architecture.
        """
        if self.rsu.damaged or not self.rsu.online:
            for vehicle_id in self.cloud.membership.member_ids():
                self.cloud.member_leave(vehicle_id)
            return
        for vehicle in self.mobility.vehicles:
            in_coverage = self.rsu.covers(vehicle.position)
            is_member = vehicle.vehicle_id in self.cloud.membership
            if in_coverage and not is_member and len(self.cloud.membership) < self.cloud.membership.max_members:
                self.cloud.admit(vehicle)
            elif not in_coverage and is_member:
                self.cloud.member_leave(vehicle.vehicle_id)
            elif is_member:
                self.cloud.membership.update_position(vehicle.vehicle_id, vehicle.position)


class DynamicVCloud:
    """A self-organized v-cloud: elected captain, pure V2V coordination."""

    def __init__(
        self,
        world: World,
        mobility: MobilityModel,
        cloud_id: str = "dynamic-vc",
        coordination_range_m: Optional[float] = None,
        refresh_interval_s: float = 1.0,
        reelection_interval_s: float = 10.0,
        auth_protocol=None,
        dwell_estimator: Optional[DwellEstimator] = None,
    ) -> None:
        self.world = world
        self.mobility = mobility
        self.coordination_range_m = (
            coordination_range_m
            if coordination_range_m is not None
            else world.config.channel.v2v_range_m
        )
        self.refresh_interval_s = refresh_interval_s
        self.reelection_interval_s = reelection_interval_s
        self.election = BrokerElection()
        self.dwell_estimator = (
            dwell_estimator
            if dwell_estimator is not None
            else DwellEstimator(world.rng.fork("dynamic-vc-dwell"))
        )
        self.cloud = VehicularCloud(
            world,
            cloud_id,
            allocator=DwellAwareAllocator(),
            handover_policy=CheckpointHandoverPolicy(),
            coordination=V2VCoordination(),
            auth_protocol=auth_protocol,
            dwell_lookup=self._dwell_of,
        )
        self.elections_held = 0
        self._refresh_task = None
        self._election_task = None
        mobility.on_departure(self._vehicle_departed)

    # -- dwell ---------------------------------------------------------------

    def _head_vehicle(self) -> Optional[Vehicle]:
        head_id = self.cloud.head_id
        if head_id is None:
            return None
        return self._find_vehicle(head_id)

    def _find_vehicle(self, vehicle_id: str) -> Optional[Vehicle]:
        for vehicle in self.mobility.vehicles:
            if vehicle.vehicle_id == vehicle_id:
                return vehicle
        return None

    def _dwell_of(self, vehicle_id: str) -> float:
        head = self._head_vehicle()
        vehicle = self._find_vehicle(vehicle_id)
        if head is None or vehicle is None:
            return 0.0
        if head.vehicle_id == vehicle_id:
            return 1e9
        estimate = self.dwell_estimator.estimate_link(
            head, vehicle, self.coordination_range_m
        )
        return estimate.estimated_s

    # -- lifecycle ------------------------------------------------------------

    def start(self, seed_vehicle: Optional[Vehicle] = None) -> None:
        """Form the cloud around a seed vehicle and begin maintenance."""
        seed = seed_vehicle
        if seed is None:
            if not self.mobility.vehicles:
                raise ConfigurationError("no vehicles available to seed the cloud")
            seed = self.mobility.vehicles[0]
        if seed.vehicle_id not in self.cloud.membership:
            self.cloud.admit(seed)
        self.refresh()
        self.hold_election()
        if self._refresh_task is None:
            self._refresh_task = self.world.engine.call_every(
                self.refresh_interval_s, self.refresh, label="dynamic-vc-refresh"
            )
        if self._election_task is None:
            self._election_task = self.world.engine.call_every(
                self.reelection_interval_s, self.hold_election, label="dynamic-vc-election"
            )

    def stop(self) -> None:
        """Stop maintenance tasks."""
        for task in (self._refresh_task, self._election_task):
            if task is not None:
                task.stop()
        self._refresh_task = None
        self._election_task = None

    def refresh(self) -> None:
        """Admit in-range vehicles; evict members that drifted away."""
        head = self._head_vehicle()
        if head is None:
            remaining = self.cloud.membership.member_ids()
            if not remaining and self.mobility.vehicles:
                self.cloud.admit(self.mobility.vehicles[0])
                head = self._head_vehicle()
            if head is None:
                return
        for vehicle in self.mobility.vehicles:
            distance = vehicle.position.distance_to(head.position)
            is_member = vehicle.vehicle_id in self.cloud.membership
            if (
                distance <= self.coordination_range_m
                and not is_member
                and len(self.cloud.membership) < self.cloud.membership.max_members
            ):
                self.cloud.admit(vehicle)
            elif is_member:
                self.cloud.membership.update_position(vehicle.vehicle_id, vehicle.position)
        self.cloud.membership.evict_out_of_range(head.position, self.coordination_range_m)

    def hold_election(self) -> None:
        """Run captain (re-)election with hysteresis."""
        candidates: List[BrokerCandidate] = []
        for vehicle_id in self.cloud.membership.member_ids():
            vehicle = self._find_vehicle(vehicle_id)
            if vehicle is None:
                continue
            head = self._head_vehicle()
            if head is not None and head.vehicle_id != vehicle_id:
                dwell = link_lifetime(head, vehicle, self.coordination_range_m)
            else:
                dwell = 300.0
            candidates.append(
                BrokerCandidate(
                    vehicle_id=vehicle_id,
                    compute_mips=vehicle.equipment.compute_mips,
                    estimated_dwell_s=min(dwell, 600.0),
                    position=vehicle.position,
                )
            )
        if not candidates:
            return
        # The first election always runs (the seed vehicle is only a
        # provisional captain); later ones apply hysteresis.
        if self.elections_held == 0 or self.election.should_reelect(
            self.cloud.head_id, candidates
        ):
            result = self.election.elect(candidates)
            self.cloud.head_id = result.winner_id
            self.elections_held += 1

    def _vehicle_departed(self, vehicle: Vehicle) -> None:
        if vehicle.vehicle_id in self.cloud.membership:
            self.cloud.member_leave(vehicle.vehicle_id)
