"""Task allocation strategies (§III.A, §V.A).

The paper frames allocation as a dwell-estimation problem: "If under
estimated, the computing resources will be under-utilized.  If over
estimated, the vehicle may not be able to finish the task before leaving
the group."  Three allocators bracket the design space:

* :class:`RandomAllocator` — the naive baseline;
* :class:`GreedyResourceAllocator` — fastest free worker, mobility-blind;
* :class:`DwellAwareAllocator` — requires the worker's estimated
  remaining dwell to cover the task's estimated runtime (with a safety
  factor), which is the survey's prescribed fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import TaskError
from ..sim.rng import SeededRng
from .resources import ResourcePool
from .tasks import Task


@dataclass(frozen=True)
class WorkerCandidate:
    """One member considered for an assignment."""

    vehicle_id: str
    free_mips: float
    estimated_dwell_s: float  # estimated remaining time in the cloud
    has_required_sensors: bool = True


@dataclass(frozen=True)
class AllocationChoice:
    """The allocator's pick, with its reasoning surface."""

    vehicle_id: str
    expected_runtime_s: float
    estimated_dwell_s: float

    @property
    def dwell_margin_s(self) -> float:
        """Estimated slack between dwell and runtime."""
        return self.estimated_dwell_s - self.expected_runtime_s


class Allocator:
    """Base allocation strategy."""

    name = "base"

    def choose(
        self, task: Task, candidates: Sequence[WorkerCandidate]
    ) -> Optional[AllocationChoice]:
        """Pick a worker, or None if no candidate is acceptable."""
        raise NotImplementedError

    @staticmethod
    def _eligible(task: Task, candidates: Sequence[WorkerCandidate]) -> List[WorkerCandidate]:
        return [
            c
            for c in candidates
            if c.free_mips > 0 and c.has_required_sensors
        ]

    @staticmethod
    def _choice(task: Task, candidate: WorkerCandidate) -> AllocationChoice:
        return AllocationChoice(
            vehicle_id=candidate.vehicle_id,
            expected_runtime_s=task.runtime_on(candidate.free_mips),
            estimated_dwell_s=candidate.estimated_dwell_s,
        )


class RandomAllocator(Allocator):
    """Uniformly random eligible worker."""

    name = "random"

    def __init__(self, rng: SeededRng) -> None:
        self.rng = rng

    def choose(
        self, task: Task, candidates: Sequence[WorkerCandidate]
    ) -> Optional[AllocationChoice]:
        eligible = self._eligible(task, candidates)
        if not eligible:
            return None
        return self._choice(task, self.rng.choice(eligible))


class GreedyResourceAllocator(Allocator):
    """Most free compute wins; mobility is ignored."""

    name = "greedy-resource"

    def choose(
        self, task: Task, candidates: Sequence[WorkerCandidate]
    ) -> Optional[AllocationChoice]:
        eligible = self._eligible(task, candidates)
        if not eligible:
            return None
        best = max(eligible, key=lambda c: (c.free_mips, c.vehicle_id))
        return self._choice(task, best)


class DwellAwareAllocator(Allocator):
    """Only workers whose dwell covers the runtime; prefer best margin.

    ``safety_factor`` scales the required dwell (1.5 means the worker
    must be expected to stay 50% longer than the task needs).  When no
    candidate passes the dwell gate, behaviour depends on
    ``fallback_to_fastest``: fall back to the greedy pick (optimistic) or
    refuse the assignment (conservative).
    """

    name = "dwell-aware"

    def __init__(self, safety_factor: float = 1.5, fallback_to_fastest: bool = True) -> None:
        if safety_factor <= 0:
            raise TaskError("safety_factor must be positive")
        self.safety_factor = safety_factor
        self.fallback_to_fastest = fallback_to_fastest

    def choose(
        self, task: Task, candidates: Sequence[WorkerCandidate]
    ) -> Optional[AllocationChoice]:
        eligible = self._eligible(task, candidates)
        if not eligible:
            return None
        safe = [
            c
            for c in eligible
            if c.estimated_dwell_s >= task.runtime_on(c.free_mips) * self.safety_factor
        ]
        if safe:
            # Among safe workers prefer the fastest (shortest runtime).
            best = min(
                safe, key=lambda c: (task.runtime_on(c.free_mips), c.vehicle_id)
            )
            return self._choice(task, best)
        if not self.fallback_to_fastest:
            return None
        best = max(eligible, key=lambda c: (c.free_mips, c.vehicle_id))
        return self._choice(task, best)


class GatedAllocator(Allocator):
    """Wraps an allocator, filtering candidates through a predicate gate.

    The gate receives ``(task, candidate)`` and returns whether the
    candidate may be considered for this assignment.  This is how
    serving-layer policies (circuit breakers, hedge anti-affinity)
    constrain dispatch without re-implementing allocation: the inner
    allocator still ranks whatever survives the gate.
    """

    name = "gated"

    def __init__(
        self,
        inner: Allocator,
        gate: Callable[[Task, WorkerCandidate], bool],
    ) -> None:
        self.inner = inner
        self.gate = gate

    def choose(
        self, task: Task, candidates: Sequence[WorkerCandidate]
    ) -> Optional[AllocationChoice]:
        admitted = [c for c in candidates if self.gate(task, c)]
        if not admitted:
            return None
        return self.inner.choose(task, admitted)


def candidates_from_pool(
    pool: ResourcePool,
    task: Task,
    dwell_lookup,
) -> List[WorkerCandidate]:
    """Build candidates from a resource pool and a dwell estimator.

    ``dwell_lookup`` maps a vehicle id to its estimated remaining dwell
    in seconds.
    """
    candidates = []
    for vehicle_id in pool.member_ids():
        offer = pool.offer_of(vehicle_id)
        has_sensors = task.required_sensors.issubset(offer.sensors)
        candidates.append(
            WorkerCandidate(
                vehicle_id=vehicle_id,
                free_mips=pool.free_mips(vehicle_id),
                estimated_dwell_s=dwell_lookup(vehicle_id),
                has_required_sensors=has_sensors,
            )
        )
    return candidates
