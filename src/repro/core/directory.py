"""Resource discovery (after Meneguette & Boukerche's Servites [26]).

A search-and-allocation directory over member resource offers: clients
query by minimum compute, storage, bandwidth and required sensors; the
directory returns ranked matches.  In a dynamic v-cloud the directory
lives on the captain and is rebuilt from offers as membership churns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..errors import ResourceError
from ..mobility.equipment import SensorKind
from .resources import ResourceOffer


@dataclass(frozen=True)
class ResourceQuery:
    """Minimum requirements a requester asks the directory for."""

    min_compute_mips: float = 0.0
    min_storage_bytes: int = 0
    min_bandwidth_bps: float = 0.0
    required_sensors: FrozenSet[SensorKind] = frozenset()
    limit: int = 5

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ResourceError("limit must be >= 1")

    def matches(self, offer: ResourceOffer) -> bool:
        """Whether an offer satisfies every minimum."""
        return (
            offer.compute_mips >= self.min_compute_mips
            and offer.storage_bytes >= self.min_storage_bytes
            and offer.bandwidth_bps >= self.min_bandwidth_bps
            and self.required_sensors.issubset(offer.sensors)
        )


@dataclass
class ResourceDirectory:
    """Searchable registry of member resource offers."""

    offers: List[ResourceOffer] = field(default_factory=list)
    queries_served: int = 0

    def register(self, offer: ResourceOffer) -> None:
        """Add or replace a member's offer."""
        self.offers = [o for o in self.offers if o.vehicle_id != offer.vehicle_id]
        self.offers.append(offer)

    def deregister(self, vehicle_id: str) -> None:
        """Remove a departed member's offer."""
        self.offers = [o for o in self.offers if o.vehicle_id != vehicle_id]

    def __len__(self) -> int:
        return len(self.offers)

    def search(self, query: ResourceQuery) -> List[ResourceOffer]:
        """Return up to ``query.limit`` matches, best-provisioned first."""
        self.queries_served += 1
        matches = [o for o in self.offers if query.matches(o)]
        matches.sort(key=lambda o: (-o.compute_mips, -o.bandwidth_bps, o.vehicle_id))
        return matches[: query.limit]

    def best_match(self, query: ResourceQuery) -> Optional[ResourceOffer]:
        """Return the single best match, or None."""
        results = self.search(query)
        return results[0] if results else None

    def total_capacity(self) -> ResourceOffer:
        """Aggregate nameplate capacity of the directory."""
        sensors: set = set()
        for offer in self.offers:
            sensors |= set(offer.sensors)
        return ResourceOffer(
            vehicle_id="__aggregate__",
            compute_mips=sum(o.compute_mips for o in self.offers),
            storage_bytes=sum(o.storage_bytes for o in self.offers),
            bandwidth_bps=sum(o.bandwidth_bps for o in self.offers),
            sensors=frozenset(sensors),
        )
