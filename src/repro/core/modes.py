"""Operating modes and mode propagation (§V.A "V-cloud management").

The authority can switch a region between NORMAL, EVENT (planned large
gatherings: uploaded schedules, tuned parameters) and EMERGENCY
(disasters: "the vehicles could minimise the use of the RSUs").  A mode
change propagates through the cloud as a signed control flood; the time
until the last member applies it is E10's propagation-latency metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..net.messages import Message, MessageKind
from ..net.node import NetworkNode
from ..security.access.context import OperatingMode
from ..sim.world import World


@dataclass(frozen=True)
class ModePolicy:
    """Behavioural knobs attached to an operating mode."""

    mode: OperatingMode
    minimize_rsu_use: bool = False
    beacon_interval_scale: float = 1.0
    emergency_resource_priority: bool = False


DEFAULT_POLICIES: Dict[OperatingMode, ModePolicy] = {
    OperatingMode.NORMAL: ModePolicy(OperatingMode.NORMAL),
    OperatingMode.EVENT: ModePolicy(
        OperatingMode.EVENT, beacon_interval_scale=0.5
    ),
    OperatingMode.EMERGENCY: ModePolicy(
        OperatingMode.EMERGENCY,
        minimize_rsu_use=True,
        beacon_interval_scale=0.5,
        emergency_resource_priority=True,
    ),
}


class ModeManager:
    """Tracks one node's operating mode and applies change orders."""

    def __init__(
        self,
        node_id: str,
        policies: Optional[Dict[OperatingMode, ModePolicy]] = None,
    ) -> None:
        self.node_id = node_id
        self.policies = policies if policies is not None else dict(DEFAULT_POLICIES)
        self.mode = OperatingMode.NORMAL
        self.last_change_at: Optional[float] = None
        self._listeners: List[Callable[[OperatingMode], None]] = []
        self._applied_orders: Dict[str, None] = {}

    @property
    def policy(self) -> ModePolicy:
        """The behaviour policy for the current mode."""
        return self.policies[self.mode]

    def on_change(self, listener: Callable[[OperatingMode], None]) -> None:
        """Register a mode-change listener."""
        self._listeners.append(listener)

    def apply_order(self, order_id: str, mode: OperatingMode, now: float) -> bool:
        """Apply a mode-change order once; duplicates are ignored.

        Returns True if the order changed state.
        """
        if order_id in self._applied_orders:
            return False
        self._applied_orders[order_id] = None
        if mode == self.mode:
            return False
        self.mode = mode
        self.last_change_at = now
        for listener in self._listeners:
            listener(mode)
        return True


class ModePropagation:
    """Floods mode-change orders through the vehicle population.

    The authority injects the order at one node (an RSU, or any vehicle
    in an infrastructure-less emergency); every receiver applies it and
    re-broadcasts once.  ``propagation_latency`` reports how long the
    region took to converge.
    """

    def __init__(
        self,
        world: World,
        nodes: List[NetworkNode],
        repeats: int = 3,
        repeat_interval_s: float = 1.0,
    ) -> None:
        """``repeats`` extra re-advertisements per adopted node let the
        order heal across partitions as vehicles move — mode orders ride
        the periodic beacon cadence in a deployed system."""
        if not nodes:
            raise ConfigurationError("mode propagation needs at least one node")
        if repeats < 0 or repeat_interval_s <= 0:
            raise ConfigurationError("repeats >= 0 and repeat_interval_s > 0 required")
        self.world = world
        self.nodes = list(nodes)
        self.repeats = repeats
        self.repeat_interval_s = repeat_interval_s
        self.managers: Dict[str, ModeManager] = {
            node.node_id: ModeManager(node.node_id) for node in nodes
        }
        self._order_counter = 0
        self._issue_times: Dict[str, float] = {}
        for node in nodes:
            node.on(MessageKind.MODE, self._make_handler(node))

    def _advertise(self, node: NetworkNode, message: Message, remaining: int) -> None:
        node.broadcast(message)
        if remaining > 0:
            self.world.engine.schedule(
                self.repeat_interval_s,
                lambda: self._advertise(node, message, remaining - 1),
                label="mode-readvertise",
            )

    def _make_handler(self, node: NetworkNode):
        def _handle(message: Message, from_id: str) -> None:
            order_id = message.payload["order_id"]
            mode = OperatingMode(message.payload["mode"])
            manager = self.managers[node.node_id]
            fresh = order_id not in manager._applied_orders
            manager.apply_order(order_id, mode, self.world.now)
            if fresh:
                # Controlled flood: rebroadcast now, then re-advertise a
                # few beacon intervals to heal partitions.
                self._advertise(node, message, self.repeats)

        return _handle

    def issue_order(self, origin_node: NetworkNode, mode: OperatingMode) -> str:
        """Inject a mode-change order at ``origin_node``; returns order id."""
        self._order_counter += 1
        order_id = f"mode-order-{self._order_counter}"
        self._issue_times[order_id] = self.world.now
        message = Message(
            kind=MessageKind.MODE,
            src=origin_node.node_id,
            dst="*",
            payload={"order_id": order_id, "mode": mode.value},
            size_bytes=96,
            created_at=self.world.now,
            ttl_hops=0,
        )
        manager = self.managers.get(origin_node.node_id)
        if manager is not None:
            manager.apply_order(order_id, mode, self.world.now)
        self._advertise(origin_node, message, self.repeats)
        return order_id

    def adoption_fraction(self, mode: OperatingMode) -> float:
        """Fraction of nodes currently in ``mode``."""
        if not self.managers:
            return 0.0
        adopted = sum(1 for m in self.managers.values() if m.mode is mode)
        return adopted / len(self.managers)

    def propagation_latency(self, order_id: str, mode: OperatingMode) -> Optional[float]:
        """Issue-to-last-adoption latency; None until everyone adopted."""
        issued = self._issue_times.get(order_id)
        if issued is None:
            return None
        change_times = [
            m.last_change_at
            for m in self.managers.values()
            if m.mode is mode and m.last_change_at is not None
        ]
        if len(change_times) < len(self.managers):
            return None
        return max(change_times) - issued
