"""Cloud membership: join, leave, merge, split (§V.A "V-cloud operations").

A :class:`MembershipManager` owns the authoritative member list of one
cloud, fires callbacks on churn, and implements the geometric refresh
rule — members drifting out of coordination range of the head are
evicted, which is the dominant churn source in dynamic v-clouds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import MembershipError
from ..geometry import Vec2

MemberCallback = Callable[[str], None]


@dataclass
class MemberInfo:
    """Live membership record for one vehicle."""

    vehicle_id: str
    joined_at: float
    position: Optional[Vec2] = None

    def tenure(self, now: float) -> float:
        """Seconds of membership so far."""
        return now - self.joined_at


class MembershipManager:
    """Authoritative member registry with churn callbacks."""

    def __init__(self, cloud_id: str, max_members: int = 64) -> None:
        if max_members < 1:
            raise MembershipError("max_members must be >= 1")
        self.cloud_id = cloud_id
        self.max_members = max_members
        self._members: Dict[str, MemberInfo] = {}
        self._join_listeners: List[MemberCallback] = []
        self._leave_listeners: List[MemberCallback] = []
        self.joins = 0
        self.leaves = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, vehicle_id: str) -> bool:
        return vehicle_id in self._members

    def member_ids(self) -> List[str]:
        """Current member ids."""
        return list(self._members)

    def info(self, vehicle_id: str) -> MemberInfo:
        """Return the membership record for one member."""
        info = self._members.get(vehicle_id)
        if info is None:
            raise MembershipError(f"{vehicle_id!r} is not a member of {self.cloud_id}")
        return info

    # -- callbacks -----------------------------------------------------------

    def on_join(self, callback: MemberCallback) -> None:
        """Register a join listener."""
        self._join_listeners.append(callback)

    def on_leave(self, callback: MemberCallback) -> None:
        """Register a leave listener."""
        self._leave_listeners.append(callback)

    # -- churn operations --------------------------------------------------------

    def join(self, vehicle_id: str, now: float, position: Optional[Vec2] = None) -> MemberInfo:
        """Admit a vehicle; raises when full or already a member."""
        if vehicle_id in self._members:
            raise MembershipError(f"{vehicle_id!r} is already a member")
        if len(self._members) >= self.max_members:
            raise MembershipError(f"cloud {self.cloud_id} is full")
        info = MemberInfo(vehicle_id=vehicle_id, joined_at=now, position=position)
        self._members[vehicle_id] = info
        self.joins += 1
        for listener in self._join_listeners:
            listener(vehicle_id)
        return info

    def leave(self, vehicle_id: str) -> None:
        """Remove a member (voluntary leave or eviction)."""
        if vehicle_id not in self._members:
            raise MembershipError(f"{vehicle_id!r} is not a member")
        del self._members[vehicle_id]
        self.leaves += 1
        for listener in self._leave_listeners:
            listener(vehicle_id)

    def update_position(self, vehicle_id: str, position: Vec2) -> None:
        """Refresh a member's last-known position."""
        self.info(vehicle_id).position = position

    def evict_out_of_range(self, anchor: Vec2, range_m: float) -> List[str]:
        """Evict members beyond ``range_m`` of the anchor (head/RSU).

        Members with no known position are kept (benefit of the doubt
        until the next beacon).  Returns the evicted ids.
        """
        if range_m <= 0:
            raise MembershipError("range_m must be positive")
        evicted = [
            vid
            for vid, info in self._members.items()
            if info.position is not None and info.position.distance_to(anchor) > range_m
        ]
        for vehicle_id in evicted:
            self.leave(vehicle_id)
        return evicted

    # -- merge / split -------------------------------------------------------------

    def absorb(self, other: "MembershipManager", now: float) -> List[str]:
        """Merge another cloud's members into this one (cloud merge).

        Members that would exceed capacity are left behind; returns the
        ids actually absorbed.
        """
        absorbed = []
        for vehicle_id in other.member_ids():
            if len(self._members) >= self.max_members:
                break
            info = other.info(vehicle_id)
            other.leave(vehicle_id)
            self.join(vehicle_id, now, info.position)
            absorbed.append(vehicle_id)
        return absorbed

    def split(self, member_ids: List[str], new_cloud_id: str, now: float) -> "MembershipManager":
        """Split the given members off into a new cloud."""
        for vehicle_id in member_ids:
            if vehicle_id not in self._members:
                raise MembershipError(f"{vehicle_id!r} is not a member; cannot split")
        spawned = MembershipManager(new_cloud_id, self.max_members)
        for vehicle_id in member_ids:
            info = self.info(vehicle_id)
            self.leave(vehicle_id)
            spawned.join(vehicle_id, now, info.position)
        return spawned
