"""The vehicular cloud orchestrator.

Ties membership, resource pooling, allocation, execution and handover
together on the simulation engine.  The three architecture variants of
Fig. 4 are this class configured with different coordination adapters
and dwell models (see ``repro.core.architectures``).

Execution model: assignment transfers the task input to the worker,
execution takes ``remaining_work / worker_mips`` virtual seconds, and
completion returns the output.  When a worker departs mid-task the
configured :class:`~repro.core.handover.HandoverPolicy` decides whether
its progress survives.  When an auth protocol is configured, admission
requires a successful mutual handshake with the coordinator and its
latency is charged to the join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..errors import QuorumUnreachableError, ResourceError
from ..faults.recovery import BackoffPolicy, WorkerLeases
from ..mobility.vehicle import Vehicle
from ..sim.engine import EventHandle, PeriodicTask
from ..sim.world import World
from .handover import CheckpointHandoverPolicy, HandoverPolicy
from .membership import MembershipManager
from .replication import (
    FileStore,
    QuorumConfig,
    ReadResult,
    ReplicationManager,
    StoredFile,
    WriteResult,
)
from .resources import Reservation, ResourceOffer, ResourcePool
from .scheduler import (
    Allocator,
    GreedyResourceAllocator,
    candidates_from_pool,
)
from .tasks import Task, TaskRecord, TaskState

if TYPE_CHECKING:
    from ..obs import Span


class CoordinationAdapter:
    """How assignments and results move between coordinator and workers."""

    name = "v2v"
    #: Infrastructure messages per (assignment, result) pair.
    infra_messages_per_task = 0

    def available(self) -> bool:
        """Whether coordination is currently possible."""
        return True

    def coordination_latency_s(self, payload_bytes: int) -> float:
        """One-way coordinator<->worker latency for a payload."""
        return 0.004 + payload_bytes / 750_000.0

    def latency_for(
        self, head_id: Optional[str], worker_id: Optional[str], payload_bytes: int
    ) -> float:
        """Pair-aware latency; the default ignores the endpoints."""
        return self.coordination_latency_s(payload_bytes)


class V2VCoordination(CoordinationAdapter):
    """Pure vehicle-to-vehicle coordination (dynamic v-cloud)."""

    name = "v2v"
    infra_messages_per_task = 0


class GeometryCoordination(V2VCoordination):
    """V2V coordination priced by the live radio geometry.

    Transfer latency between the captain and a worker uses the channel's
    latency model at their *actual* distance and the captain's current
    contention level, so a worker at the zone edge really is slower to
    feed than one driving alongside — and a DoS flood near the captain
    slows every assignment.
    """

    name = "v2v-geometry"

    def __init__(self, channel) -> None:
        self.channel = channel

    def latency_for(
        self, head_id: Optional[str], worker_id: Optional[str], payload_bytes: int
    ) -> float:
        if (
            head_id is None
            or worker_id is None
            or not self.channel.is_attached(head_id)
            or not self.channel.is_attached(worker_id)
        ):
            return self.coordination_latency_s(payload_bytes)
        head = self.channel.node(head_id)
        worker = self.channel.node(worker_id)
        distance = head.position.distance_to(worker.position)
        contention = self.channel.neighbor_count(head_id)
        return self.channel.latency(distance, payload_bytes, contention)


class RsuCoordination(CoordinationAdapter):
    """Coordination relayed through a road-side unit.

    Each task costs infrastructure messages, pays the wired-backhaul
    delay, and fails outright while the RSU is damaged/offline — the
    availability cliff of infrastructure-based v-clouds.
    """

    name = "rsu"
    infra_messages_per_task = 4  # assign up/down + result up/down

    def __init__(self, rsu) -> None:
        self.rsu = rsu

    def available(self) -> bool:
        return self.rsu.online and not self.rsu.damaged

    def coordination_latency_s(self, payload_bytes: int) -> float:
        return (
            0.004
            + payload_bytes / 750_000.0
            + self.rsu.backhaul_delay_s
        )


@dataclass
class CloudStats:
    """Aggregate outcomes of one cloud's task stream."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Terminal failures broken down by typed reason (deadline,
    #: retries_exhausted, cancelled, hedge_cancelled, ...).
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    handovers: int = 0
    drops: int = 0
    infra_messages: int = 0
    auth_failures: int = 0
    wasted_work_mi: float = 0.0
    completion_latencies_s: List[float] = field(default_factory=list)
    deadline_hits: int = 0
    deadline_misses: int = 0
    worker_crashes: int = 0
    worker_stalls: int = 0
    worker_reboots: int = 0
    lease_evictions: int = 0
    storage_reads: int = 0
    storage_writes: int = 0
    storage_degraded: int = 0

    @property
    def completion_rate(self) -> float:
        """Completed over submitted (0 when nothing submitted)."""
        if self.submitted == 0:
            return 0.0
        return self.completed / self.submitted

    @property
    def mean_latency_s(self) -> float:
        """Mean completion latency (0 when nothing completed)."""
        if not self.completion_latencies_s:
            return 0.0
        return sum(self.completion_latencies_s) / len(self.completion_latencies_s)

    @property
    def deadline_hit_rate(self) -> float:
        """Deadline hits over deadline-carrying completions."""
        total = self.deadline_hits + self.deadline_misses
        if total == 0:
            return 0.0
        return self.deadline_hits / total


@dataclass
class _Execution:
    record: TaskRecord
    reservation: Reservation
    started_at: float
    runtime_s: float
    completion_handle: EventHandle
    crashed_at: Optional[float] = None
    span: Optional["Span"] = None


class VehicularCloud:
    """One vehicular cloud: members, pooled resources, task stream."""

    RETRY_INTERVAL_S = 1.0

    def __init__(
        self,
        world: World,
        cloud_id: str,
        allocator: Optional[Allocator] = None,
        handover_policy: Optional[HandoverPolicy] = None,
        coordination: Optional[CoordinationAdapter] = None,
        auth_protocol=None,
        dwell_lookup: Optional[Callable[[str], float]] = None,
        head_id: Optional[str] = None,
        max_members: int = 64,
        max_assignment_retries: int = 120,
        retry_backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        # Retries model queueing while workers are busy or coordination is
        # down; deadline-carrying tasks fail via their deadline first, so
        # the retry budget is a backstop for deadline-free tasks.
        # ``retry_backoff`` replaces the fixed RETRY_INTERVAL_S with
        # exponential backoff + jitter; None keeps the legacy fixed timer.
        self.world = world
        self.cloud_id = cloud_id
        self.allocator = allocator if allocator is not None else GreedyResourceAllocator()
        self.handover_policy = (
            handover_policy if handover_policy is not None else CheckpointHandoverPolicy()
        )
        self.coordination = coordination if coordination is not None else V2VCoordination()
        self.auth_protocol = auth_protocol
        self.dwell_lookup = dwell_lookup if dwell_lookup is not None else (lambda _vid: 1e9)
        self.head_id = head_id
        self.max_assignment_retries = max_assignment_retries
        self.membership = MembershipManager(cloud_id, max_members)
        self.pool = ResourcePool()
        self.stats = CloudStats()
        self.records: List[TaskRecord] = []
        self._executions: Dict[str, _Execution] = {}  # task_id -> execution
        self._retries: Dict[str, int] = {}
        self.retry_backoff = retry_backoff
        self._retry_rng = world.rng.fork(f"{cloud_id}/retry")
        self.leases: Optional[WorkerLeases] = None
        self._lease_task: Optional[PeriodicTask] = None
        self._crashed: set = set()
        self.storage: Optional[ReplicationManager] = None
        self._storage_capacity_bytes = 0
        #: task_id -> root span of the task's causal trace (traced runs).
        self._task_spans: Dict[str, "Span"] = {}
        self._finish_listeners: List[Callable[[TaskRecord, str], None]] = []
        self._lease_eviction_listeners: List[Callable[[str], None]] = []
        self.membership.on_leave(self._on_member_left)

    # -- lifecycle hooks -----------------------------------------------------------

    def on_task_finished(self, listener: Callable[[TaskRecord, str], None]) -> None:
        """Register a listener fired at every terminal task outcome.

        The listener receives ``(record, reason)`` where ``reason`` is
        ``"completed"`` for successes and a typed failure reason
        (``"deadline"``, ``"retries_exhausted"``, ``"cancelled"``, ...)
        otherwise.  Serving layers use this to free dispatch slots and
        feed circuit breakers without polling record states.
        """
        self._finish_listeners.append(listener)

    def on_lease_eviction(self, listener: Callable[[str], None]) -> None:
        """Register a listener fired when a worker's lease lapses.

        Fires before the eviction drives the member-departure path, so
        listeners (e.g. circuit breakers) see the worker id while its
        executions are still attributable to it.
        """
        self._lease_eviction_listeners.append(listener)

    def _notify_finished(self, record: TaskRecord, reason: str) -> None:
        for listener in self._finish_listeners:
            listener(record, reason)

    def _fail_record(
        self, record: TaskRecord, reason: str, link_faults: bool = True
    ) -> None:
        """Terminally fail a task with a typed, ledgered reason.

        Every failure path funnels through here so no task can fail
        silently: the reason lands in ``stats.failure_reasons``, the
        metrics registry (``<cloud>/task_failures/<reason>``), the
        structured event log, the task's trace span, and the finish
        listeners.
        """
        record.fail()
        self.stats.failed += 1
        self.stats.failure_reasons[reason] = self.stats.failure_reasons.get(reason, 0) + 1
        self.world.metrics.increment(f"{self.cloud_id}/task_failures/{reason}")
        self._end_task_span(record, "failed", link_faults=link_faults, reason=reason)
        self._emit(
            "task_failed", severity="warning",
            task_id=record.task.task_id, reason=reason,
        )
        self._notify_finished(record, reason)

    # -- observability hooks -------------------------------------------------------

    def _emit(self, name: str, severity: str = "info", **attrs: Any) -> None:
        """Emit a structured event for this cloud (no-op when untelemetered)."""
        events = self.world.events
        if events is not None:
            events.emit("vcloud", name, severity=severity, cloud=self.cloud_id, **attrs)

    def task_span(self, task_id: str) -> Optional["Span"]:
        """The root span of a task's trace, when the run is traced."""
        return self._task_spans.get(task_id)

    def _end_task_span(
        self, record: TaskRecord, status: str, link_faults: bool = False, **attrs: Any
    ) -> None:
        tracer = self.world.tracer
        span = self._task_spans.pop(record.task.task_id, None)
        if tracer is None or span is None:
            return
        if link_faults:
            tracer.link_active_faults(span)
        tracer.end_span(span, status, attrs)

    # -- membership ------------------------------------------------------------

    def admit(
        self,
        vehicle: Vehicle,
        offer: Optional[ResourceOffer] = None,
        lend_fraction: float = 0.8,
    ) -> bool:
        """Admit a vehicle as a member.

        With an auth protocol configured, the vehicle must mutually
        authenticate with the coordinator first; a failed handshake is a
        rejected join.  Returns True when admitted.
        """
        vehicle_id = vehicle.vehicle_id
        if self.auth_protocol is not None and self.head_id is not None:
            if vehicle_id != self.head_id:
                result = self.auth_protocol.mutual_authenticate(
                    vehicle_id,
                    self.head_id,
                    self.world.now,
                    infra_available=self.coordination.available(),
                )
                self.world.metrics.observe(
                    f"{self.cloud_id}/auth_latency_s", result.latency_s
                )
                self.stats.infra_messages += result.infra_messages
                if not result.success:
                    self.stats.auth_failures += 1
                    return False
        self.membership.join(vehicle_id, self.world.now, vehicle.position)
        self._crashed.discard(vehicle_id)
        if self.leases is not None:
            self.leases.grant(vehicle_id, self.world.now)
        resolved_offer = (
            offer
            if offer is not None
            else ResourceOffer.from_equipment(vehicle_id, vehicle.equipment, lend_fraction)
        )
        self.pool.add_offer(resolved_offer)
        if self.storage is not None and vehicle_id not in self.storage.member_ids():
            self.storage.add_store(FileStore(vehicle_id, self._storage_capacity_bytes))
        if self.head_id is None:
            self.head_id = vehicle_id
        return True

    def member_leave(self, vehicle_id: str) -> None:
        """Explicitly remove a member (drives the on-leave path)."""
        self.membership.leave(vehicle_id)

    def _on_member_left(self, vehicle_id: str) -> None:
        self.pool.remove_member(vehicle_id)
        if self.leases is not None:
            self.leases.revoke(vehicle_id)
        if self.storage is not None:
            self.storage.remove_store(vehicle_id)
        if vehicle_id == self.head_id:
            remaining = self.membership.member_ids()
            self.head_id = remaining[0] if remaining else None
        # Tasks running on the departed worker go through handover.
        affected = [
            execution
            for execution in self._executions.values()
            if execution.record.worker_id == vehicle_id
        ]
        for execution in affected:
            self._handle_worker_departure(execution)

    # -- task lifecycle ------------------------------------------------------------

    def submit(self, task: Task, trace_parent: Optional["Span"] = None) -> TaskRecord:
        """Submit a task for execution in this cloud.

        On a traced run the submission roots a new causal trace; every
        assignment, retry, handover and fault the task meets hangs off
        this span, so ``tracer.render_trace`` replays its whole journey.
        ``trace_parent`` nests the lifecycle under a caller-owned span
        instead (the DAG scheduler parents each replica's lifecycle
        under its ``dag.stage`` span).
        """
        record = TaskRecord(task=task, submitted_at=self.world.now)
        self.records.append(record)
        self.stats.submitted += 1
        tracer = self.world.tracer
        if tracer is not None:
            self._task_spans[task.task_id] = tracer.start_span(
                "task.lifecycle",
                subsystem="core",
                parent=trace_parent,
                attrs={
                    "task_id": task.task_id,
                    "cloud": self.cloud_id,
                    "work_mi": task.work_mi,
                    "deadline_s": task.deadline_s,
                },
            )
        self._emit("task_submitted", task_id=task.task_id)
        self._try_assign(record)
        return record

    def _deadline_at(self, record: TaskRecord) -> Optional[float]:
        if record.task.deadline_s is None:
            return None
        return record.submitted_at + record.task.deadline_s

    def _try_assign(self, record: TaskRecord) -> None:
        if record.state in (TaskState.COMPLETED, TaskState.FAILED):
            return
        deadline = self._deadline_at(record)
        if deadline is not None and self.world.now > deadline:
            self._fail_record(record, "deadline")
            return
        if not self.coordination.available():
            self._schedule_retry(record, reason="coordination unavailable")
            return
        candidates = candidates_from_pool(self.pool, record.task, self.dwell_lookup)
        # The coordinator does not assign work to itself in head-based
        # clouds with more than one member.
        if self.head_id is not None and len(candidates) > 1:
            candidates = [c for c in candidates if c.vehicle_id != self.head_id]
        choice = self.allocator.choose(record.task, candidates)
        if choice is None:
            self._schedule_retry(record, reason="no eligible worker")
            return
        try:
            reservation = self.pool.reserve(choice.vehicle_id, self.pool.free_mips(choice.vehicle_id))
        except Exception:
            self._schedule_retry(record, reason="reservation race")
            return
        record.assign(choice.vehicle_id, self.world.now)
        self.stats.infra_messages += self.coordination.infra_messages_per_task // 2
        transfer = self.coordination.latency_for(
            self.head_id, choice.vehicle_id, record.task.input_bytes
        )
        runtime = record.remaining_work_mi / reservation.mips
        start_at = self.world.now + transfer
        finish_at = start_at + runtime
        handle = self.world.engine.schedule_at(
            finish_at, lambda: self._complete(record.task.task_id), label="task-complete"
        )
        self.world.engine.schedule_at(
            start_at, lambda: self._start_if_assigned(record), label="task-start"
        )
        exec_span: Optional["Span"] = None
        tracer = self.world.tracer
        if tracer is not None:
            exec_span = tracer.start_span(
                "task.execute",
                subsystem="core",
                parent=self._task_spans.get(record.task.task_id),
                attrs={
                    "worker": choice.vehicle_id,
                    "transfer_s": transfer,
                    "runtime_s": runtime,
                },
            )
        self._executions[record.task.task_id] = _Execution(
            record=record,
            reservation=reservation,
            started_at=start_at,
            runtime_s=runtime,
            completion_handle=handle,
            span=exec_span,
        )

    def _start_if_assigned(self, record: TaskRecord) -> None:
        if record.state is TaskState.ASSIGNED:
            record.start()

    def _schedule_retry(self, record: TaskRecord, reason: str) -> None:
        retries = self._retries.get(record.task.task_id, 0)
        tracer = self.world.tracer
        if tracer is not None:
            span = self._task_spans.get(record.task.task_id)
            if span is not None:
                tracer.add_event(span, "assignment_retry", reason=reason, attempt=retries + 1)
        if retries >= self.max_assignment_retries:
            self._fail_record(record, "retries_exhausted")
            return
        self._retries[record.task.task_id] = retries + 1
        if self.retry_backoff is not None:
            delay = self.retry_backoff.delay_for(retries, self._retry_rng)
        else:
            delay = self.RETRY_INTERVAL_S
        self.world.engine.schedule(
            delay, lambda: self._try_assign(record), label="task-retry"
        )

    def _complete(self, task_id: str) -> None:
        execution = self._executions.pop(task_id, None)
        if execution is None:
            return
        record = execution.record
        if record.state is not TaskState.RUNNING:
            # Raced with a departure that already handled this task.
            return
        self.pool.release(execution.reservation)
        # Output travels back to the coordinator before completion counts.
        return_latency = self.coordination.latency_for(
            self.head_id, record.worker_id, record.task.output_bytes
        )
        self.stats.infra_messages += self.coordination.infra_messages_per_task - (
            self.coordination.infra_messages_per_task // 2
        )

        tracer = self.world.tracer
        if tracer is not None and execution.span is not None:
            tracer.end_span(execution.span, "ok")

        def _finish() -> None:
            record.complete(self.world.now)
            self.stats.completed += 1
            latency = record.completion_latency_s
            if latency is not None:
                self.stats.completion_latencies_s.append(latency)
            met = record.met_deadline()
            if met is True:
                self.stats.deadline_hits += 1
            elif met is False:
                self.stats.deadline_misses += 1
            self._end_task_span(
                record, "ok", latency_s=latency, met_deadline=met
            )
            self._emit(
                "task_completed", task_id=record.task.task_id, latency_s=latency
            )
            self._notify_finished(record, "completed")

        self.world.engine.schedule(return_latency, _finish, label="task-result")

    def cancel(self, record: TaskRecord, reason: str = "cancelled") -> bool:
        """Cancel a submitted task before it finishes.

        Works on queued (pending/retrying) and executing tasks; returns
        False when the task is already terminal or its result frame is
        in flight back to the coordinator (too late to cancel).  The
        cancellation is a terminal failure with the given typed reason,
        so it lands in the failure ledger like any other failure —
        hedged offload uses this to retire the losing replica as
        ``hedge_cancelled`` rather than dropping it silently.
        """
        if record.state in (TaskState.COMPLETED, TaskState.FAILED):
            return False
        execution = self._executions.pop(record.task.task_id, None)
        if execution is None and record.state is TaskState.RUNNING:
            # Completion already fired; the output is travelling back.
            return False
        if execution is not None:
            execution.completion_handle.cancel()
            self.pool.release(execution.reservation)
            tracer = self.world.tracer
            if tracer is not None and execution.span is not None:
                tracer.end_span(execution.span, "cancelled", {"reason": reason})
        self._fail_record(record, reason, link_faults=False)
        return True

    def _handle_worker_departure(self, execution: _Execution) -> None:
        record = execution.record
        execution.completion_handle.cancel()
        self._executions.pop(record.task.task_id, None)
        self.pool.release(execution.reservation)
        # Progress achieved so far on this worker; a crashed worker
        # stopped making progress at the crash instant, not at detection.
        if record.state is TaskState.RUNNING:
            worked_until = (
                execution.crashed_at if execution.crashed_at is not None else self.world.now
            )
            elapsed = max(0.0, worked_until - execution.started_at)
            fraction_of_run = min(1.0, elapsed / execution.runtime_s) if execution.runtime_s > 0 else 1.0
            new_progress = record.progress + (1.0 - record.progress) * fraction_of_run
            record.checkpoint(min(1.0, new_progress))
        outcome = self.handover_policy.on_worker_departed(record, self.world.now)
        handed_over = record.state is TaskState.HANDED_OVER
        if handed_over:
            self.stats.handovers += 1
        else:
            self.stats.drops += 1
            self.stats.wasted_work_mi += record.task.work_mi * outcome.preserved_progress
        self.stats.wasted_work_mi += record.wasted_work_mi
        record.wasted_work_mi = 0.0
        tracer = self.world.tracer
        if tracer is not None and execution.span is not None:
            # The fault (crash, partition…) that felled the worker is
            # still an open window — link it so the trace answers
            # "which fault interrupted this execution".
            tracer.link_active_faults(execution.span)
            tracer.end_span(
                execution.span,
                "handover" if handed_over else "dropped",
                {
                    "preserved_progress": outcome.preserved_progress,
                    "requeue": outcome.requeue,
                },
            )
        self._emit(
            "task_handover" if handed_over else "task_dropped",
            severity="info" if handed_over else "warning",
            task_id=record.task.task_id,
            worker=record.worker_id,
        )
        if not outcome.requeue:
            self._end_task_span(record, "dropped", link_faults=True, reason="no_requeue")
        if outcome.requeue:
            delay = max(outcome.overhead_s, 1e-6)
            self.world.engine.schedule(
                delay, lambda: self._try_assign(record), label="task-requeue"
            )

    # -- process faults ------------------------------------------------------------

    def mark_worker_crashed(self, vehicle_id: str) -> int:
        """Crash-stop a worker: it silently stops computing.

        No departure event fires — the coordinator only learns of the
        crash when the worker's lease lapses (see
        :meth:`enable_worker_leases`).  Executions on the worker stop
        making progress and will never complete on their own.  Returns
        the number of executions frozen.
        """
        self._crashed.add(vehicle_id)
        tracer = self.world.tracer
        frozen = 0
        for execution in self._executions.values():
            if (
                execution.record.worker_id == vehicle_id
                and execution.crashed_at is None
            ):
                execution.crashed_at = self.world.now
                execution.completion_handle.cancel()
                frozen += 1
                if tracer is not None and execution.span is not None:
                    tracer.add_event(execution.span, "worker_crashed", worker=vehicle_id)
                    tracer.link_active_faults(execution.span)
        if self.storage is not None:
            self.storage.set_offline(vehicle_id)
        self.stats.worker_crashes += 1
        self.world.metrics.increment(f"{self.cloud_id}/worker_crashes")
        self._emit(
            "worker_crashed", severity="warning", worker=vehicle_id, frozen_tasks=frozen
        )
        return frozen

    def stall_worker(self, vehicle_id: str, duration_s: float) -> int:
        """Stall a worker (slow node): completions shift by ``duration_s``.

        Returns the number of executions postponed.
        """
        stalled = 0
        for execution in self._executions.values():
            record = execution.record
            if record.worker_id != vehicle_id or execution.crashed_at is not None:
                continue
            old = execution.completion_handle
            if old.cancelled:
                continue
            old.cancel()
            task_id = record.task.task_id
            execution.completion_handle = self.world.engine.schedule_at(
                max(old.time + duration_s, self.world.now),
                lambda tid=task_id: self._complete(tid),
                label="task-complete",
            )
            execution.runtime_s += duration_s
            stalled += 1
            tracer = self.world.tracer
            if tracer is not None and execution.span is not None:
                tracer.add_event(
                    execution.span, "worker_stalled",
                    worker=vehicle_id, extra_s=duration_s,
                )
        self.stats.worker_stalls += 1
        self.world.metrics.increment(f"{self.cloud_id}/worker_stalls")
        self._emit(
            "worker_stalled", severity="warning",
            worker=vehicle_id, duration_s=duration_s, stalled_tasks=stalled,
        )
        return stalled

    def reboot_worker(self, vehicle_id: str, downtime_s: float) -> int:
        """Reboot a worker with state loss: its in-flight work restarts.

        Tasks running there lose all progress (memory state is gone) and
        requeue into the allocator after ``downtime_s``.  The worker
        stays a member — a reboot is not a departure.  Returns the number
        of executions lost.
        """
        affected = [
            execution
            for execution in self._executions.values()
            if execution.record.worker_id == vehicle_id
        ]
        tracer = self.world.tracer
        for execution in affected:
            record = execution.record
            execution.completion_handle.cancel()
            self._executions.pop(record.task.task_id, None)
            self.pool.release(execution.reservation)
            if tracer is not None and execution.span is not None:
                tracer.link_active_faults(execution.span)
                tracer.end_span(
                    execution.span, "dropped", {"reason": "worker_reboot"}
                )
            if record.state in (TaskState.ASSIGNED, TaskState.RUNNING):
                record.drop()
                self.stats.drops += 1
                self.stats.wasted_work_mi += record.wasted_work_mi
                record.wasted_work_mi = 0.0
                self.world.engine.schedule(
                    max(downtime_s, 1e-6),
                    lambda r=record: self._try_assign(r),
                    label="task-requeue",
                )
        if self.storage is not None:
            self.storage.set_offline(vehicle_id)
            self.world.engine.schedule(
                max(downtime_s, 1e-6),
                lambda v=vehicle_id: self._storage_revive(v),
                label="storage-revive",
            )
        self.stats.worker_reboots += 1
        self.world.metrics.increment(f"{self.cloud_id}/worker_reboots")
        self._emit(
            "worker_rebooted", severity="warning",
            worker=vehicle_id, downtime_s=downtime_s, lost_tasks=len(affected),
        )
        return len(affected)

    # -- replicated storage --------------------------------------------------------

    def enable_replicated_storage(
        self,
        capacity_bytes: int = 512_000_000,
        quorum: Optional[QuorumConfig] = None,
        anti_entropy_period_s: Optional[float] = None,
        anti_entropy_backoff: Optional[BackoffPolicy] = None,
        hinted_handoff: bool = True,
    ) -> ReplicationManager:
        """Turn on quorum-replicated member storage (§III.A).

        Every current and future member contributes ``capacity_bytes``
        of storage; crashes take a member's replicas offline until the
        lease sweep evicts it (or a reboot revives it), departures
        trigger re-replication onto survivors.  With
        ``anti_entropy_period_s`` set, a periodic digest sweep repairs
        divergent replicas, retrying offline holders with
        ``anti_entropy_backoff``.
        """
        self._storage_capacity_bytes = capacity_bytes
        self.storage = ReplicationManager(
            rng=self.world.rng.fork(f"{self.cloud_id}/storage"),
            repair=True,
            quorum=quorum,
            clock=lambda: self.world.now,
            hinted_handoff=hinted_handoff,
            metrics=self.world.metrics,
            metric_prefix=f"{self.cloud_id}/storage",
        )
        for member_id in self.membership.member_ids():
            self.storage.add_store(FileStore(member_id, capacity_bytes))
        if anti_entropy_period_s is not None:
            self.storage.start_anti_entropy(
                self.world.engine,
                anti_entropy_period_s,
                backoff=anti_entropy_backoff,
                label=f"{self.cloud_id}/anti-entropy",
            )
        return self.storage

    def _storage_revive(self, vehicle_id: str) -> None:
        if (
            self.storage is not None
            and vehicle_id in self.membership
            and vehicle_id not in self._crashed
        ):
            self.storage.set_online(vehicle_id)

    def _storage_span(self, operation: str, file_id: str) -> Optional["Span"]:
        tracer = self.world.tracer
        if tracer is None:
            return None
        return tracer.start_span(
            f"storage.{operation}",
            subsystem="core",
            attrs={"cloud": self.cloud_id, "file_id": file_id},
        )

    def _storage_degraded(self, span: Optional["Span"], operation: str, file_id: str) -> None:
        """Ledger a quorum rejection: link the fault that caused it."""
        self.stats.storage_degraded += 1
        tracer = self.world.tracer
        if tracer is not None and span is not None:
            # The partition/crash window responsible is still open at
            # rejection time; linking it here is what lets an E12-style
            # post-mortem walk a stale/failed read back to its fault.
            tracer.link_active_faults(span)
            tracer.end_span(span, "degraded", {"reason": "quorum_unreachable"})
        self._emit(
            "storage_degraded", severity="error", operation=operation, file_id=file_id
        )

    def store_put(
        self, file_id: str, size_bytes: int, target_replicas: int = 3
    ) -> int:
        """Place a new shared file; returns the replica count achieved."""
        if self.storage is None:
            raise ResourceError("replicated storage not enabled")
        span = self._storage_span("put", file_id)
        replicas = self.storage.store_file(
            StoredFile(file_id=file_id, size_bytes=size_bytes, target_replicas=target_replicas)
        )
        tracer = self.world.tracer
        if tracer is not None and span is not None:
            tracer.end_span(
                span, "ok", {"replicas": replicas, "target": target_replicas}
            )
        return replicas

    def store_write(
        self, file_id: str, writer: str, origin: Optional[str] = None
    ) -> Optional[WriteResult]:
        """Quorum-write a shared file; degrades to None when unreachable.

        A write that cannot assemble its quorum (partition, mass crash,
        coordination loss) is *rejected*, not half-applied: the caller
        sees None, ``stats.storage_degraded`` counts the rejection, and
        no replica state changes — the degradation contract that keeps
        the store consistent while the cloud is impaired.  On traced
        runs the rejection span links to the active fault window, so
        the trace answers *which* partition or crash caused it.
        """
        if self.storage is None:
            raise ResourceError("replicated storage not enabled")
        span = self._storage_span("write", file_id)
        try:
            result = self.storage.write(file_id, writer, origin=origin)
        except QuorumUnreachableError:
            self._storage_degraded(span, "write", file_id)
            return None
        self.stats.storage_writes += 1
        tracer = self.world.tracer
        if tracer is not None and span is not None:
            tracer.end_span(
                span,
                "ok",
                {
                    "version": result.stamp.counter,
                    "replicas_updated": result.replicas_updated,
                    "hinted": result.hinted,
                },
            )
        return result

    def store_read(
        self, file_id: str, origin: Optional[str] = None
    ) -> Optional[ReadResult]:
        """Quorum-read a shared file; degrades to None when unreachable."""
        if self.storage is None:
            raise ResourceError("replicated storage not enabled")
        span = self._storage_span("read", file_id)
        try:
            result = self.storage.read_file(file_id, origin=origin)
        except QuorumUnreachableError:
            self._storage_degraded(span, "read", file_id)
            return None
        self.stats.storage_reads += 1
        tracer = self.world.tracer
        if tracer is not None and span is not None:
            tracer.end_span(
                span,
                "ok",
                {
                    "holder": result.holder,
                    "version": result.stamp.counter,
                    "contacted": len(result.contacted),
                    "repaired": result.repaired,
                },
            )
        return result

    # -- lease-based liveness ------------------------------------------------------

    def enable_worker_leases(
        self, lease_duration_s: float = 5.0, sweep_interval_s: float = 1.0
    ) -> WorkerLeases:
        """Turn on lease-based worker liveness.

        Members renew automatically each sweep while alive; a crashed
        worker stops renewing, its lease lapses, and its tasks flow into
        the configured :class:`~repro.core.handover.HandoverPolicy` via
        the normal member-departure path.  Detection latency is bounded
        by ``lease_duration_s``.
        """
        self.leases = WorkerLeases(lease_duration_s)
        now = self.world.now
        for member_id in self.membership.member_ids():
            self.leases.grant(member_id, now)
        if self._lease_task is None:
            self._lease_task = self.world.engine.call_every(
                sweep_interval_s, self._lease_sweep, label=f"{self.cloud_id}/lease-sweep"
            )
        return self.leases

    def disable_worker_leases(self) -> None:
        """Stop the liveness sweep and drop all leases."""
        if self._lease_task is not None:
            self._lease_task.stop()
            self._lease_task = None
        self.leases = None

    def heartbeat(self, vehicle_id: str) -> None:
        """Explicitly renew one member's lease (external liveness signal)."""
        if self.leases is not None and vehicle_id in self.membership:
            self.leases.renew(vehicle_id, self.world.now)

    def _lease_sweep(self) -> None:
        if self.leases is None:
            return
        now = self.world.now
        for member_id in self.membership.member_ids():
            if member_id not in self._crashed:
                self.leases.renew(member_id, now)
        for member_id in self.leases.expired(now):
            self.leases.revoke(member_id)
            if member_id in self.membership:
                self.stats.lease_evictions += 1
                self.world.metrics.increment(f"{self.cloud_id}/lease_evictions")
                self._emit("lease_evicted", severity="warning", worker=member_id)
                for listener in self._lease_eviction_listeners:
                    listener(member_id)
                self.member_leave(member_id)

    # -- introspection -------------------------------------------------------------

    def running_tasks(self) -> List[TaskRecord]:
        """Records currently assigned or running."""
        return [
            r
            for r in self.records
            if r.state in (TaskState.ASSIGNED, TaskState.RUNNING)
        ]

    def member_count(self) -> int:
        """Current member count."""
        return len(self.membership)

    def busy_workers(self) -> List[str]:
        """Workers currently holding a live execution (deduplicated).

        Lease exclusivity keeps this at most one execution per worker,
        so the result is bounded by the member count.
        """
        return sorted(
            {
                execution.record.worker_id
                for execution in self._executions.values()
                if execution.record.worker_id is not None
            }
        )

    def inflight_remaining_s(self, now: float) -> float:
        """Total residual busy time of live executions, in seconds.

        A crash-frozen execution stopped making progress but still
        occupies its worker until lease eviction, so it counts at its
        full scheduled residual — pessimistic, which is the right bias
        for a load signal feeding admission and redundancy decisions.
        """
        return sum(
            max(0.0, execution.started_at + execution.runtime_s - now)
            for execution in self._executions.values()
        )

    def accounting(self) -> Dict[str, int]:
        """Task-stream conservation counters, surfaced for invariants.

        ``stats`` counters and record states are updated atomically in
        the same callbacks, so at any sim instant
        ``submitted == records`` and
        ``submitted == completed + failed + in_flight`` must hold; a
        mismatch means a task was double-counted or silently lost.
        """
        completed = sum(1 for r in self.records if r.state is TaskState.COMPLETED)
        failed = sum(1 for r in self.records if r.state is TaskState.FAILED)
        return {
            "submitted": self.stats.submitted,
            "records": len(self.records),
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "records_completed": completed,
            "records_failed": failed,
            "records_in_flight": len(self.records) - completed - failed,
            "executions": len(self._executions),
        }

    def execution_view(self) -> List[Tuple[str, str, str]]:
        """``(task_id, worker_id, state)`` per live execution, sorted.

        Live executions always have a bound worker; records in the
        result-return window (completion output travelling back to the
        coordinator) are RUNNING but no longer appear here.
        """
        return sorted(
            (task_id, execution.record.worker_id or "", execution.record.state.value)
            for task_id, execution in self._executions.items()
        )

    def crashed_executions(self) -> List[Tuple[str, str, float]]:
        """``(task_id, worker_id, crashed_at)`` for crash-frozen executions.

        These stopped making progress and will never complete on their
        own; a recovery mechanism (lease eviction → handover) must pick
        them up, which the chaos stranded-task invariant enforces.
        """
        return sorted(
            (task_id, execution.record.worker_id or "", execution.crashed_at)
            for task_id, execution in self._executions.items()
            if execution.crashed_at is not None
        )
