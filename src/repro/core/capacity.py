"""Shared backlog/utilization estimation over one vehicular cloud.

E17 exposed a positive feedback loop in the dependable DAG layer: the
redundancy planner grew replica sets purely from survival probabilities,
so exactly when churn had shrunk the fleet it multiplied queued work and
deadline misses.  Breaking that loop needs one consistent answer to
"how loaded is this cloud right now?" that both the serving gateway and
the DAG scheduler can read — queued work they have not dispatched yet
plus the in-flight work already occupying workers.

The :class:`BacklogEstimator` is that shared answer.  It is strictly
read-only over cloud state (no RNG draws, no engine events, no metrics
writes — the same determinism contract the reliability estimator and
the observability layer follow), so attaching it never perturbs a
seeded run.  Producers of *queued* work register backlog sources (the
gateway registers its admission queue's ``queued_work_mi``, the DAG
scheduler its pending un-assigned replicas); *in-flight* work is read
directly from the cloud's live executions.

"Decomposition Theory Meets Reliability Analysis" (PAPERS.md) plans
dependent-task redundancy jointly over reliability and dynamic resource
availability; the :class:`LoadSignal` snapshot this module produces is
the "dynamic resource availability" half of that joint decision,
consumed by :class:`~repro.dag.redundancy.RedundancyPlanner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List

if TYPE_CHECKING:
    from .vcloud import VehicularCloud


@dataclass(frozen=True)
class LoadSignal:
    """One plan-time snapshot of fleet load.

    ``queue_delay_s`` is the standing delay a new dispatch already
    faces (queued work draining through the aggregate capacity plus the
    mean residual busy time of occupied workers); ``marginal_delay_s``
    is the extra fleet-wide delay each *additional* replica of the work
    being planned would induce; ``utilization`` is the busy fraction of
    eligible workers in [0, 1].
    """

    queue_delay_s: float = 0.0
    marginal_delay_s: float = 0.0
    utilization: float = 0.0
    workers: int = 0

    @property
    def loaded(self) -> bool:
        """Whether the fleet shows any queueing pressure at all."""
        return self.queue_delay_s > 0.0 or self.utilization > 0.0


class BacklogEstimator:
    """Queued + in-flight work per worker, shared across subsystems.

    One estimator per cloud; the serving gateway and the DAG scheduler
    each register the backlog only they know about (admission queue,
    pending replicas) and both read the same aggregate picture, so the
    redundancy planner sees the load the serving path is creating and
    vice versa.
    """

    def __init__(self, cloud: "VehicularCloud") -> None:
        self.cloud = cloud
        self._sources: List[Callable[[], float]] = []

    # -- backlog sources -----------------------------------------------------

    def add_backlog_source(self, source: Callable[[], float]) -> None:
        """Register a producer of queued (not yet dispatched) work.

        ``source`` returns the producer's current queued work in
        million instructions; it is polled at estimation time, never
        cached, so the estimate is always live.
        """
        self._sources.append(source)

    def queued_work_mi(self) -> float:
        """Total queued work across every registered source."""
        return sum(source() for source in self._sources)

    # -- fleet shape ---------------------------------------------------------

    def worker_ids(self) -> List[str]:
        """Pool members eligible for work (the head does not self-assign)."""
        members = self.cloud.pool.member_ids()
        if self.cloud.head_id is not None and len(members) > 1:
            return [m for m in members if m != self.cloud.head_id]
        return members

    def aggregate_capacity_mips(self) -> float:
        """Offered compute across eligible workers."""
        pool = self.cloud.pool
        return sum(pool.offer_of(worker).compute_mips for worker in self.worker_ids())

    def utilization(self) -> float:
        """Busy fraction of eligible workers, in [0, 1]."""
        workers = self.worker_ids()
        if not workers:
            return 1.0
        eligible = set(workers)
        busy = sum(
            1 for worker in self.cloud.busy_workers() if worker in eligible
        )
        return min(1.0, busy / len(workers))

    # -- delay estimates -----------------------------------------------------

    def inflight_delay_s(self, now: float) -> float:
        """Mean residual busy time the occupied workers still owe.

        Spread over the whole eligible fleet: a new dispatch can land on
        any free worker, so the expected wait contributed by in-flight
        work is the total residual runtime divided by the fleet size.
        """
        workers = self.worker_ids()
        if not workers:
            return 0.0
        return self.cloud.inflight_remaining_s(now) / len(workers)

    def queue_delay_s(self, now: float) -> float:
        """Standing delay a new dispatch faces right now.

        Queued work draining through the aggregate capacity, plus the
        residual in-flight busy time spread over the fleet.  Infinite
        when work is queued against zero capacity.
        """
        capacity = self.aggregate_capacity_mips()
        queued = self.queued_work_mi()
        if capacity <= 0:
            return float("inf") if queued > 0 else 0.0
        return queued / capacity + self.inflight_delay_s(now)

    def marginal_delay_s(self, work_mi: float) -> float:
        """Fleet-wide delay one extra dispatch of ``work_mi`` induces.

        Each additional replica adds its full work to the shared
        backlog; drained through the aggregate capacity that is the
        delay it imposes on everything queued behind it.
        """
        capacity = self.aggregate_capacity_mips()
        if capacity <= 0:
            return float("inf") if work_mi > 0 else 0.0
        return work_mi / capacity

    def signal(self, now: float, work_mi: float) -> LoadSignal:
        """Snapshot the load relevant to planning one ``work_mi`` stage."""
        return LoadSignal(
            queue_delay_s=self.queue_delay_s(now),
            marginal_delay_s=self.marginal_delay_s(work_mi),
            utilization=self.utilization(),
            workers=len(self.worker_ids()),
        )
