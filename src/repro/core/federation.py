"""Cloud federation: mobility-driven merge and split (§V.A).

"We should consider how to handle the splitting, merging, re-allocation
of the groups."  The federation watches a set of dynamic v-clouds and:

* **merges** two clouds when their captains travel within merge range of
  each other (absorbing the smaller into the larger, capacity allowing);
* **splits** a cloud when its member spread exceeds the coordination
  diameter — the far half forms a new cloud around its own best captain.

Merges and splits are counted and, on an observability-enabled world,
emitted as structured events (``federation`` subsystem: ``cloud_merged``
/ ``cloud_split``) with metrics under the stable ``federation/`` prefix
(``federation/merges``, ``federation/splits``, plus ``clouds`` and
``members`` gauges), so tier churn shows up in campaign vectors instead
of hiding in bare counters.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from ..errors import MembershipError
from ..geometry import Vec2
from ..mobility.vehicle import Vehicle
from ..sim.world import World
from .election import BrokerCandidate, BrokerElection
from .vcloud import VehicularCloud

_federated_counter = itertools.count(1)


class CloudFederation:
    """Coordinates merge/split across a set of vehicular clouds."""

    def __init__(
        self,
        world: World,
        vehicle_lookup: Callable[[str], Optional[Vehicle]],
        merge_range_m: float = 150.0,
        max_diameter_m: float = 600.0,
        check_interval_s: float = 5.0,
    ) -> None:
        if merge_range_m <= 0 or max_diameter_m <= merge_range_m:
            raise MembershipError(
                "require 0 < merge_range_m < max_diameter_m for stable federation"
            )
        self.world = world
        self.vehicle_lookup = vehicle_lookup
        self.merge_range_m = merge_range_m
        self.max_diameter_m = max_diameter_m
        self.check_interval_s = check_interval_s
        self.clouds: List[VehicularCloud] = []
        self.election = BrokerElection()
        self.merges = 0
        self.splits = 0
        self._task = None

    # -- lifecycle ------------------------------------------------------------

    def register(self, cloud: VehicularCloud) -> None:
        """Put a cloud under federation management."""
        if cloud not in self.clouds:
            self.clouds.append(cloud)

    def start(self) -> None:
        """Begin periodic merge/split checks."""
        if self._task is None:
            self._task = self.world.engine.call_every(
                self.check_interval_s, self.step, label="federation-step"
            )

    def stop(self) -> None:
        """Stop periodic checks."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- geometry helpers --------------------------------------------------------

    def _head_position(self, cloud: VehicularCloud) -> Optional[Vec2]:
        if cloud.head_id is None:
            return None
        vehicle = self.vehicle_lookup(cloud.head_id)
        return vehicle.position if vehicle is not None else None

    def _member_positions(self, cloud: VehicularCloud) -> Dict[str, Vec2]:
        positions = {}
        for member_id in cloud.membership.member_ids():
            vehicle = self.vehicle_lookup(member_id)
            if vehicle is not None:
                positions[member_id] = vehicle.position
        return positions

    def diameter_of(self, cloud: VehicularCloud) -> float:
        """Largest member-to-member distance (0 for <2 locatable members)."""
        positions = list(self._member_positions(cloud).values())
        best = 0.0
        for index, a in enumerate(positions):
            for b in positions[index + 1 :]:
                best = max(best, a.distance_to(b))
        return best

    # -- the periodic step -------------------------------------------------------

    def step(self) -> None:
        """Run one merge-then-split pass."""
        self._try_merges()
        self._try_splits()

    def _try_merges(self) -> None:
        changed = True
        while changed:
            changed = False
            for a, b in itertools.combinations(list(self.clouds), 2):
                pos_a = self._head_position(a)
                pos_b = self._head_position(b)
                if pos_a is None or pos_b is None:
                    continue
                if pos_a.distance_to(pos_b) > self.merge_range_m:
                    continue
                survivor, absorbed = (
                    (a, b) if len(a.membership) >= len(b.membership) else (b, a)
                )
                if len(survivor.membership) + len(absorbed.membership) > (
                    survivor.membership.max_members
                ):
                    continue
                self._merge(survivor, absorbed)
                changed = True
                break

    def _merge(self, survivor: VehicularCloud, absorbed: VehicularCloud) -> None:
        # Move members (and their offers) into the survivor.
        moved = 0
        for member_id in absorbed.membership.member_ids():
            offer = absorbed.pool.offer_of(member_id)
            absorbed.member_leave(member_id)
            if member_id not in survivor.membership:
                vehicle = self.vehicle_lookup(member_id)
                if vehicle is None:
                    continue
                survivor.membership.join(member_id, self.world.now, vehicle.position)
                survivor.pool.add_offer(offer)
                moved += 1
        self.clouds.remove(absorbed)
        self.merges += 1
        self.world.metrics.increment("federation/merges")
        self._note_churn(
            "cloud_merged",
            survivor=survivor.cloud_id,
            absorbed=absorbed.cloud_id,
            moved_members=moved,
        )

    def _try_splits(self) -> None:
        for cloud in list(self.clouds):
            if len(cloud.membership) < 4:
                continue
            if self.diameter_of(cloud) <= self.max_diameter_m:
                continue
            self._split(cloud)

    def _split(self, cloud: VehicularCloud) -> None:
        positions = self._member_positions(cloud)
        head_position = self._head_position(cloud)
        if head_position is None or len(positions) < 4:
            return
        # The far half (relative to the captain) secedes.
        by_distance = sorted(
            positions.items(), key=lambda item: head_position.distance_to(item[1])
        )
        keep_count = max(2, len(by_distance) // 2)
        seceding = [member_id for member_id, _pos in by_distance[keep_count:]]
        if len(seceding) < 2:
            return
        new_cloud = VehicularCloud(
            self.world,
            f"{cloud.cloud_id}-split-{next(_federated_counter)}",
            allocator=cloud.allocator,
            handover_policy=cloud.handover_policy,
            coordination=cloud.coordination,
            dwell_lookup=cloud.dwell_lookup,
            max_members=cloud.membership.max_members,
        )
        candidates = []
        for member_id in seceding:
            vehicle = self.vehicle_lookup(member_id)
            if vehicle is None:
                continue
            offer = cloud.pool.offer_of(member_id)
            cloud.member_leave(member_id)
            new_cloud.membership.join(member_id, self.world.now, vehicle.position)
            new_cloud.pool.add_offer(offer)
            candidates.append(
                BrokerCandidate(
                    vehicle_id=member_id,
                    compute_mips=offer.compute_mips,
                    estimated_dwell_s=60.0,
                    position=vehicle.position,
                )
            )
        if not candidates:
            return
        new_cloud.head_id = self.election.elect(candidates).winner_id
        self.clouds.append(new_cloud)
        self.splits += 1
        self.world.metrics.increment("federation/splits")
        self._note_churn(
            "cloud_split",
            parent=cloud.cloud_id,
            new_cloud=new_cloud.cloud_id,
            seceded_members=len(candidates),
            new_head=new_cloud.head_id,
        )

    def _note_churn(self, event: str, **attrs: object) -> None:
        """Ledger one merge/split under the stable ``federation/`` prefix."""
        self.world.metrics.set_gauge("federation/clouds", float(self.cloud_count()))
        self.world.metrics.set_gauge("federation/members", float(self.total_members()))
        events = self.world.events
        if events is not None:
            events.emit("federation", event, severity="info", **attrs)

    # -- introspection ------------------------------------------------------------

    def total_members(self) -> int:
        """Members across all federated clouds."""
        return sum(len(cloud.membership) for cloud in self.clouds)

    def cloud_count(self) -> int:
        """Number of live clouds under management."""
        return len(self.clouds)
