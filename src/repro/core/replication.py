"""Quorum-consistent file replication with anti-entropy repair (§III.A).

"How many copies of a shared file should be distributed in v-cloud so
that other vehicles can keep accessing this file even if many vehicles
are offline at the same time" — experiment E9's availability question,
extended by E12 to *correctness*: under the churn, crashes and
partitions that :mod:`repro.faults` injects, a best-effort store can
serve stale data or silently lose updates.  This module makes the
store dependable:

* every replica carries a :class:`VersionStamp` ``(counter, writer)``;
  writes advance the counter past the newest stamp they can observe, so
  concurrent writes on opposite sides of a partition produce *visible*
  conflicts instead of silent clobbering;
* reads and writes are quorum-configurable (:class:`QuorumConfig`):
  ``R = W = 1`` is the legacy best-effort mode, ``R + W > k`` guarantees
  every read observes the newest acknowledged write;
* divergent replicas observed by a read are repaired in-line
  (read-repair), targets unreachable at write time receive hinted
  handoff, and a periodic anti-entropy sweep reconciles holder pairs by
  Merkle-style digest comparison, retrying transfers to offline holders
  with a :class:`~repro.faults.recovery.BackoffPolicy`.

The ``repro.faults.consistency`` checker records every operation the
manager performs and proves which configurations are safe under a
seeded :class:`~repro.faults.plan.FaultPlan` (experiment E12).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ConfigurationError, QuorumUnreachableError, ReplicaPlacementError, ResourceError

if TYPE_CHECKING:
    # Runtime imports here would be circular: ``repro.faults`` re-exports
    # the consistency checker, which imports this module.
    from ..faults.recovery import BackoffPolicy
    from ..sim.engine import Engine, PeriodicTask
    from ..sim.metrics import MetricsRegistry
    from ..sim.rng import SeededRng

#: Number of digest buckets in the two-level Merkle-style comparison.
_DIGEST_BUCKETS = 16


class StoreListener(Protocol):
    """Observer of the manager's read/write history.

    :class:`repro.faults.consistency.ConsistencyChecker` is the
    canonical implementation.
    """

    def on_write(self, file_id: str, stamp: Optional["VersionStamp"], acked: bool, time: float) -> None:
        ...

    def on_read(self, file_id: str, stamp: Optional["VersionStamp"], ok: bool, time: float) -> None:
        ...


@dataclass(frozen=True, order=True)
class VersionStamp:
    """A replica version: a monotone counter with a writer tiebreak.

    Ordering is lexicographic on ``(counter, writer)`` — last-writer-wins
    with a deterministic tiebreak, so conflict resolution is total and
    reproducible.
    """

    counter: int
    writer: str = "origin"

    def describe(self) -> str:
        """Canonical compact rendering, e.g. ``3@v7``."""
        return f"{self.counter}@{self.writer}"


#: The stamp of a never-written replica.
ZERO_STAMP = VersionStamp(0, "")


@dataclass(frozen=True)
class QuorumConfig:
    """Read/write quorum sizes; ``R = W = 1`` is best-effort."""

    write_quorum: int = 1
    read_quorum: int = 1

    def __post_init__(self) -> None:
        if self.write_quorum < 1 or self.read_quorum < 1:
            raise ConfigurationError("quorum sizes must be >= 1")

    @staticmethod
    def majority(replicas: int) -> "QuorumConfig":
        """The classic safe configuration for ``replicas`` copies."""
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        quorum = replicas // 2 + 1
        return QuorumConfig(write_quorum=quorum, read_quorum=quorum)

    def is_safe_for(self, replicas: int) -> bool:
        """Whether read/write sets must overlap (``R + W > k``).

        Read overlap guarantees every read observes the newest
        acknowledged write — no stale reads.  It does *not* by itself
        prevent lost updates; see :meth:`prevents_lost_updates`.
        """
        return self.read_quorum + self.write_quorum > replicas

    def prevents_lost_updates(self, replicas: int) -> bool:
        """Whether two write sets must overlap (``2W > k``).

        Write overlap forces every write to observe the counter of the
        previous acknowledged write, so two acknowledged writes can
        never mint the same version — no lost updates.  ``R + W > k``
        alone (e.g. W=1, R=k) still lets writers on opposite sides of a
        partition collide.
        """
        return 2 * self.write_quorum > replicas


@dataclass(frozen=True)
class StoredFile:
    """Metadata of one replicated file."""

    file_id: str
    size_bytes: int
    target_replicas: int


@dataclass(frozen=True)
class ReadResult:
    """Outcome of one quorum read."""

    file_id: str
    holder: str  # the replica the value was served from
    stamp: VersionStamp
    contacted: Tuple[str, ...]
    repaired: int  # stale contacted replicas fixed by read-repair


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one quorum write."""

    file_id: str
    stamp: VersionStamp
    replicas_updated: int
    hinted: int  # unreachable holders queued for hinted handoff


@dataclass
class _ReplicatedFile:
    file: StoredFile
    holders: Set[str] = field(default_factory=set)


def _bucket_of(file_id: str) -> int:
    return hashlib.sha256(file_id.encode()).digest()[0] % _DIGEST_BUCKETS


def _digest_entries(entries: Iterable[Tuple[str, VersionStamp]]) -> str:
    digest = hashlib.sha256()
    for file_id, stamp in sorted(entries):
        digest.update(f"{file_id}:{stamp.counter}:{stamp.writer};".encode())
    return digest.hexdigest()


class FileStore:
    """One member's bounded local storage with per-file version stamps."""

    def __init__(self, owner_id: str, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ResourceError("capacity_bytes must be non-negative")
        self.owner_id = owner_id
        self.capacity_bytes = capacity_bytes
        self._files: Dict[str, int] = {}  # file_id -> size
        self._stamps: Dict[str, VersionStamp] = {}
        # Running counter maintained by put/drop: used_bytes sits on the
        # replication hot path, so it must not re-sum on every call.
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored (O(1) running counter)."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used_bytes

    def can_store(self, size_bytes: int) -> bool:
        """Whether a file of this size fits."""
        return size_bytes <= self.free_bytes

    def put(
        self, file_id: str, size_bytes: int, stamp: Optional[VersionStamp] = None
    ) -> None:
        """Store a replica; raises when capacity is exceeded."""
        if file_id in self._files:
            return
        if not self.can_store(size_bytes):
            raise ResourceError(
                f"{self.owner_id!r}: {self.free_bytes} bytes free, need {size_bytes}"
            )
        self._files[file_id] = size_bytes
        self._used_bytes += size_bytes
        self._stamps[file_id] = stamp if stamp is not None else ZERO_STAMP

    def apply(self, file_id: str, size_bytes: int, stamp: VersionStamp) -> bool:
        """Upsert a versioned replica; returns True when state advanced.

        A missing file is stored (capacity permitting); a held file only
        moves forward — an older or equal stamp is ignored, which makes
        read-repair, hinted handoff and anti-entropy pushes idempotent.
        """
        if file_id not in self._files:
            self.put(file_id, size_bytes, stamp)
            return True
        if stamp > self._stamps[file_id]:
            self._stamps[file_id] = stamp
            return True
        return False

    def drop(self, file_id: str) -> None:
        """Remove a replica (no-op if absent)."""
        size = self._files.pop(file_id, None)
        if size is not None:
            self._used_bytes -= size
        self._stamps.pop(file_id, None)

    def holds(self, file_id: str) -> bool:
        """Whether a replica is present."""
        return file_id in self._files

    def stamp_of(self, file_id: str) -> VersionStamp:
        """The held replica's stamp (:data:`ZERO_STAMP` when absent)."""
        return self._stamps.get(file_id, ZERO_STAMP)

    def file_ids(self) -> List[str]:
        """Ids of all held replicas, sorted."""
        return sorted(self._files)

    # -- digests (anti-entropy) -------------------------------------------------

    def _entries(self, file_ids: Optional[Iterable[str]]) -> List[Tuple[str, VersionStamp]]:
        ids = self._files.keys() if file_ids is None else file_ids
        return [(fid, self._stamps[fid]) for fid in ids if fid in self._files]

    def digest(self, file_ids: Optional[Iterable[str]] = None) -> str:
        """Root digest over (file, stamp) pairs — cheap equality probe."""
        return _digest_entries(self._entries(file_ids))

    def bucket_digests(self, file_ids: Optional[Iterable[str]] = None) -> Dict[int, str]:
        """Per-bucket digests, the second Merkle level."""
        buckets: Dict[int, List[Tuple[str, VersionStamp]]] = {}
        for file_id, stamp in self._entries(file_ids):
            buckets.setdefault(_bucket_of(file_id), []).append((file_id, stamp))
        return {bucket: _digest_entries(entries) for bucket, entries in buckets.items()}


class ReplicationManager:
    """Places, versions, and repairs file replicas across cloud members.

    The manager is the coordinator-side view of the storage fabric:
    stores register/depart with membership, crash-stopped members are
    marked offline (their stale replicas survive and return), and an
    active network partition restricts which holders an operation's
    ``origin`` can reach.
    """

    def __init__(
        self,
        rng: "SeededRng",
        repair: bool = True,
        quorum: Optional[QuorumConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        listener: Optional["StoreListener"] = None,
        hinted_handoff: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
        metric_prefix: str = "storage",
    ) -> None:
        self.rng = rng
        self.repair = repair
        self.quorum = quorum if quorum is not None else QuorumConfig()
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        #: Consistency listener with ``on_write``/``on_read`` hooks (see
        #: :class:`repro.faults.consistency.ConsistencyChecker`).
        self.listener = listener
        self.hinted_handoff = hinted_handoff
        self.metrics = metrics
        self.metric_prefix = metric_prefix
        self._stores: Dict[str, FileStore] = {}
        self._offline: Set[str] = set()
        self._partition: Optional[Tuple[FrozenSet[str], FrozenSet[str]]] = None
        self._files: Dict[str, _ReplicatedFile] = {}
        self._hints: Dict[str, Dict[str, VersionStamp]] = {}  # target -> file -> stamp
        # Anti-entropy machinery (armed by start_anti_entropy).
        self._engine: Optional["Engine"] = None
        self._backoff: Optional["BackoffPolicy"] = None
        self._ae_rng: Optional["SeededRng"] = None
        self._ae_task: Optional["PeriodicTask"] = None
        self._pending_retries: Set[Tuple[str, str]] = set()
        # Counters.
        self.replicas_placed = 0
        self.repair_transfers = 0
        self.repair_failures = 0
        self.failed_reads = 0
        self.successful_reads = 0
        self.failed_writes = 0
        self.successful_writes = 0
        self.read_repairs = 0
        self.hints_stored = 0
        self.hints_delivered = 0
        self.hints_dropped = 0
        self.anti_entropy_rounds = 0
        self.anti_entropy_repairs = 0
        self.anti_entropy_failed_transfers = 0
        self.anti_entropy_retries_exhausted = 0
        #: (owner_id, file_id) pairs whose repair retries ran out for good.
        self.exhausted_transfers: List[Tuple[str, str]] = []

    def _emit(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.increment(f"{self.metric_prefix}/{name}", amount)

    # -- membership ------------------------------------------------------------

    def add_store(self, store: FileStore) -> None:
        """Register a member's storage (online)."""
        self._stores[store.owner_id] = store
        self._offline.discard(store.owner_id)

    def remove_store(self, owner_id: str) -> List[str]:
        """Handle a member departure; returns files that lost a replica.

        With ``repair`` enabled, lost replicas are re-placed on surviving
        members immediately (each repair costs one transfer).  A repair
        that finds no placement is counted in :attr:`repair_failures`
        rather than raised — departure handling must not crash the cloud.
        """
        store = self._stores.pop(owner_id, None)
        if store is None:
            return []
        self._offline.discard(owner_id)
        self._hints.pop(owner_id, None)
        degraded = []
        for file_id, replicated in self._files.items():
            if owner_id in replicated.holders:
                replicated.holders.discard(owner_id)
                degraded.append(file_id)
                if self.repair:
                    try:
                        self.repair_file(file_id)
                    except ResourceError:
                        self.repair_failures += 1
                        self._emit("repair_failures")
        return degraded

    def member_ids(self) -> List[str]:
        """Members currently contributing storage."""
        return list(self._stores)

    def online_member_ids(self) -> List[str]:
        """Members whose store is currently reachable, sorted."""
        return sorted(owner for owner in self._stores if owner not in self._offline)

    def is_online(self, owner_id: str) -> bool:
        """Whether a member's store is present and reachable."""
        return owner_id in self._stores and owner_id not in self._offline

    def set_offline(self, owner_id: str) -> None:
        """Mark a member unreachable (crash-stop); its replicas survive."""
        if owner_id in self._stores:
            self._offline.add(owner_id)

    def set_online(self, owner_id: str) -> None:
        """Bring a member back; queued hints are delivered immediately."""
        if owner_id in self._stores and owner_id in self._offline:
            self._offline.discard(owner_id)
            self.deliver_hints(owner_id)

    # -- partitions --------------------------------------------------------------

    def set_partition(self, group_a: Sequence[str], group_b: Sequence[str]) -> None:
        """Split reachability: members of opposite groups cannot talk."""
        self._partition = (frozenset(group_a), frozenset(group_b))

    def clear_partition(self) -> None:
        """Heal the partition and flush hints to every online target."""
        self._partition = None
        self.deliver_hints()

    def _can_reach(self, origin: Optional[str], target: str) -> bool:
        if self._partition is None or origin is None:
            return True
        side_a, side_b = self._partition
        if origin in side_a and target in side_b:
            return False
        if origin in side_b and target in side_a:
            return False
        return True

    # -- placement ----------------------------------------------------------------

    def store_file(self, file: StoredFile, writer: str = "origin") -> int:
        """Place the file's replicas; returns the replica count achieved."""
        if file.target_replicas < 1:
            raise ResourceError("target_replicas must be >= 1")
        if file.file_id in self._files:
            raise ResourceError(f"file already stored: {file.file_id!r}")
        replicated = _ReplicatedFile(file=file)
        self._files[file.file_id] = replicated
        self._place(replicated, file.target_replicas, VersionStamp(1, writer))
        return len(replicated.holders)

    def _candidates(
        self, replicated: _ReplicatedFile, reachable_from: Optional[str] = None
    ) -> List[FileStore]:
        # Offline members are skipped *before* capacity checks: an
        # unreachable store can never accept a transfer, regardless of
        # how much space it advertises.
        return [
            store
            for owner, store in self._stores.items()
            if owner not in replicated.holders
            and owner not in self._offline
            and self._can_reach(reachable_from, owner)
            and store.can_store(replicated.file.size_bytes)
        ]

    def _place(
        self,
        replicated: _ReplicatedFile,
        count: int,
        stamp: VersionStamp,
        reachable_from: Optional[str] = None,
    ) -> int:
        placed = 0
        for _ in range(count):
            candidates = self._candidates(replicated, reachable_from)
            if not candidates:
                break
            # Spread load: prefer the emptiest store, break ties randomly.
            best_free = max(c.free_bytes for c in candidates)
            emptiest = [c for c in candidates if c.free_bytes == best_free]
            chosen = self.rng.choice(emptiest)
            chosen.put(replicated.file.file_id, replicated.file.size_bytes, stamp)
            replicated.holders.add(chosen.owner_id)
            self.replicas_placed += 1
            placed += 1
        return placed

    def repair_file(self, file_id: str) -> int:
        """Re-replicate one file back to its target count.

        Returns the number of replicas created.  Raises
        :class:`~repro.errors.ReplicaPlacementError` when replicas are
        missing but no placement exists — no online source replica to
        copy from, or no online member with capacity — so callers can
        degrade instead of crash.
        """
        replicated = self._files.get(file_id)
        if replicated is None:
            raise ResourceError(f"unknown file: {file_id!r}")
        missing = replicated.file.target_replicas - len(replicated.holders)
        if missing <= 0:
            return 0
        source = self._newest_online_holder(replicated)
        if source is None:
            raise ReplicaPlacementError(
                f"no online source replica for {file_id!r}"
            )
        source_id, stamp = source
        if not self._candidates(replicated, reachable_from=source_id):
            raise ReplicaPlacementError(
                f"no placement for {file_id!r}: need {missing} replicas"
            )
        placed = self._place(replicated, missing, stamp, reachable_from=source_id)
        self.repair_transfers += placed
        self._emit("repair_transfers", placed)
        return placed

    def _newest_online_holder(
        self, replicated: _ReplicatedFile
    ) -> Optional[Tuple[str, VersionStamp]]:
        """The online holder carrying the newest stamp, or None."""
        best: Optional[Tuple[str, VersionStamp]] = None
        for owner in sorted(replicated.holders):
            if not self.is_online(owner):
                continue
            stamp = self._stores[owner].stamp_of(replicated.file.file_id)
            if best is None or stamp > best[1]:
                best = (owner, stamp)
        return best

    # -- reads -------------------------------------------------------------------------

    def _reachable_holders(
        self, replicated: _ReplicatedFile, origin: Optional[str]
    ) -> List[str]:
        return [
            owner
            for owner in sorted(replicated.holders)
            if self.is_online(owner) and self._can_reach(origin, owner)
        ]

    def is_available(self, file_id: str) -> bool:
        """Whether at least one replica is on an online member."""
        replicated = self._files.get(file_id)
        if replicated is None:
            return False
        return any(self.is_online(owner) for owner in replicated.holders)

    def read_file(self, file_id: str, origin: Optional[str] = None) -> ReadResult:
        """Quorum read: contact ``R`` reachable replicas, serve the newest.

        Divergent contacted replicas are repaired in-line (read-repair).
        Raises :class:`~repro.errors.QuorumUnreachableError` when fewer
        than ``R`` replicas are reachable from ``origin``.
        """
        now = self.clock()
        replicated = self._files.get(file_id)
        if replicated is None:
            self.failed_reads += 1
            self._emit("failed_reads")
            self._notify_read(file_id, None, False, now)
            raise ResourceError(f"unknown file: {file_id!r}")
        live = self._reachable_holders(replicated, origin)
        wanted = self.quorum.read_quorum
        if len(live) < wanted:
            self.failed_reads += 1
            self._emit("failed_reads")
            self._notify_read(file_id, None, False, now)
            raise QuorumUnreachableError(
                f"read quorum unreachable for {file_id!r}: "
                f"{len(live)} live < R={wanted}"
            )
        contacted = sorted(live) if wanted >= len(live) else sorted(self.rng.sample(live, wanted))
        stamps = {owner: self._stores[owner].stamp_of(file_id) for owner in contacted}
        newest = max(stamps.values())
        holder = min(owner for owner, stamp in stamps.items() if stamp == newest)
        repaired = 0
        for owner, stamp in stamps.items():
            if stamp < newest:
                if self._stores[owner].apply(file_id, replicated.file.size_bytes, newest):
                    repaired += 1
                    self.read_repairs += 1
                    self._emit("read_repairs")
        self.successful_reads += 1
        self._emit("reads")
        self._notify_read(file_id, newest, True, now)
        return ReadResult(
            file_id=file_id,
            holder=holder,
            stamp=newest,
            contacted=tuple(contacted),
            repaired=repaired,
        )

    def read(self, file_id: str, origin: Optional[str] = None) -> Optional[str]:
        """Legacy read: returns the serving holder, or None on failure."""
        try:
            return self.read_file(file_id, origin=origin).holder
        except ResourceError:
            return None

    # -- writes -------------------------------------------------------------------------

    def write(
        self, file_id: str, writer: str, origin: Optional[str] = None
    ) -> WriteResult:
        """Quorum write: advance the version on every reachable replica.

        The new stamp's counter is one past the newest counter observed
        at the reachable replicas, so two writers separated by a
        partition mint *conflicting* stamps — which the consistency
        checker counts as a lost update when both get acknowledged.
        Raises :class:`~repro.errors.QuorumUnreachableError` (mutating
        nothing) when fewer than ``W`` replicas are reachable.
        """
        now = self.clock()
        replicated = self._files.get(file_id)
        if replicated is None:
            self.failed_writes += 1
            self._emit("failed_writes")
            self._notify_write(file_id, None, False, now)
            raise ResourceError(f"unknown file: {file_id!r}")
        contactable = self._reachable_holders(replicated, origin)
        wanted = self.quorum.write_quorum
        if len(contactable) < wanted:
            self.failed_writes += 1
            self._emit("failed_writes")
            self._notify_write(file_id, None, False, now)
            raise QuorumUnreachableError(
                f"write quorum unreachable for {file_id!r}: "
                f"{len(contactable)} live < W={wanted}"
            )
        counter = max(self._stores[o].stamp_of(file_id).counter for o in contactable) + 1
        stamp = VersionStamp(counter, writer)
        updated = 0
        for owner in contactable:
            if self._stores[owner].apply(file_id, replicated.file.size_bytes, stamp):
                updated += 1
        hinted = 0
        if self.hinted_handoff:
            for owner in sorted(replicated.holders):
                if owner in contactable or owner not in self._stores:
                    continue
                queue = self._hints.setdefault(owner, {})
                if stamp > queue.get(file_id, ZERO_STAMP):
                    queue[file_id] = stamp
                    hinted += 1
                    self.hints_stored += 1
                    self._emit("hints_stored")
        self.successful_writes += 1
        self._emit("writes")
        self._notify_write(file_id, stamp, True, now)
        return WriteResult(
            file_id=file_id, stamp=stamp, replicas_updated=updated, hinted=hinted
        )

    def deliver_hints(self, target: Optional[str] = None) -> int:
        """Flush queued hints to online targets; returns hints applied."""
        targets = [target] if target is not None else sorted(self._hints)
        delivered = 0
        for owner in targets:
            if not self.is_online(owner):
                continue
            queue = self._hints.pop(owner, None)
            if not queue:
                continue
            store = self._stores[owner]
            for file_id, stamp in sorted(queue.items()):
                replicated = self._files.get(file_id)
                if replicated is None or owner not in replicated.holders:
                    continue
                try:
                    if store.apply(file_id, replicated.file.size_bytes, stamp):
                        delivered += 1
                        self.hints_delivered += 1
                        self._emit("hints_delivered")
                except ResourceError:
                    self.hints_dropped += 1
                    self._emit("hints_dropped")
        return delivered

    # -- anti-entropy ----------------------------------------------------------------

    def start_anti_entropy(
        self,
        engine: "Engine",
        period_s: float,
        backoff: Optional["BackoffPolicy"] = None,
        rng: Optional["SeededRng"] = None,
        label: str = "storage/anti-entropy",
    ) -> "PeriodicTask":
        """Run :meth:`anti_entropy_round` as a sim periodic task.

        ``backoff`` (a :class:`~repro.faults.recovery.BackoffPolicy`)
        enables retrying failed transfers to offline holders; without it
        those holders wait for hinted handoff or their next revival.
        Returns the :class:`~repro.sim.engine.PeriodicTask`.
        """
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        self._engine = engine
        self._backoff = backoff
        if rng is not None:
            self._ae_rng = rng
        elif self._ae_rng is None:
            self._ae_rng = self.rng.fork("anti-entropy")
        self._ae_task = engine.call_every(period_s, self.anti_entropy_round, label=label)
        return self._ae_task

    def stop_anti_entropy(self) -> None:
        """Stop the periodic sweep (pending retries still fire)."""
        if self._ae_task is not None:
            self._ae_task.stop()
            self._ae_task = None

    def anti_entropy_round(self) -> int:
        """One sweep: reconcile holder pairs by digest comparison.

        Each file's online holders form a deterministic ring and every
        holder syncs with its successor, so one round closes the full
        cycle and converges all replicas of a file.  Pairs sharing many
        files are compared in one digest exchange: the root digest
        short-circuits identical pairs, bucket digests narrow divergent
        ones.  Stale offline holders are counted as failed transfers and
        scheduled for backoff retries when a backoff policy is armed.
        Returns the number of replicas repaired now.
        """
        self.anti_entropy_rounds += 1
        self._emit("anti_entropy_rounds")
        pair_files: Dict[Tuple[str, str], Set[str]] = {}
        for file_id, replicated in self._files.items():
            holders = sorted(h for h in replicated.holders if self.is_online(h))
            if len(holders) < 2:
                continue
            for index, owner in enumerate(holders):
                if len(holders) == 2 and index == 1:
                    break
                partner = holders[(index + 1) % len(holders)]
                if not self._can_reach(owner, partner):
                    continue
                pair_files.setdefault((owner, partner), set()).add(file_id)
        repairs = 0
        for owner, partner in sorted(pair_files):
            repairs += self._sync_pair(owner, partner, sorted(pair_files[(owner, partner)]))
        self._schedule_offline_repairs()
        return repairs

    def _sync_pair(self, a: str, b: str, common: List[str]) -> int:
        store_a, store_b = self._stores[a], self._stores[b]
        if store_a.digest(common) == store_b.digest(common):
            return 0
        digests_a = store_a.bucket_digests(common)
        digests_b = store_b.bucket_digests(common)
        repairs = 0
        for bucket in sorted(set(digests_a) | set(digests_b)):
            if digests_a.get(bucket) == digests_b.get(bucket):
                continue
            for file_id in common:
                if _bucket_of(file_id) != bucket:
                    continue
                stamp_a = store_a.stamp_of(file_id)
                stamp_b = store_b.stamp_of(file_id)
                if stamp_a == stamp_b:
                    continue
                target = store_b if stamp_a > stamp_b else store_a
                if self._push(file_id, target, max(stamp_a, stamp_b)):
                    repairs += 1
                    self.anti_entropy_repairs += 1
                    self._emit("anti_entropy_repairs")
        return repairs

    def _push(self, file_id: str, target: FileStore, stamp: VersionStamp) -> bool:
        replicated = self._files.get(file_id)
        if replicated is None:
            return False
        try:
            return target.apply(file_id, replicated.file.size_bytes, stamp)
        except ResourceError:
            self.repair_failures += 1
            self._emit("repair_failures")
            return False

    def _schedule_offline_repairs(self) -> None:
        if self._engine is None or self._backoff is None:
            return
        for file_id in sorted(self._files):
            replicated = self._files[file_id]
            newest = self._newest_online_holder(replicated)
            if newest is None:
                continue
            _, stamp = newest
            for owner in sorted(replicated.holders):
                if owner not in self._offline or owner not in self._stores:
                    continue
                if self._stores[owner].stamp_of(file_id) >= stamp:
                    continue
                key = (owner, file_id)
                if key in self._pending_retries:
                    continue
                self._pending_retries.add(key)
                self.anti_entropy_failed_transfers += 1
                self._emit("anti_entropy_failed_transfers")
                delay = self._backoff.delay_for(0, self._ae_rng)
                self._engine.schedule(
                    delay,
                    lambda k=key: self._retry_transfer(k, 1),
                    label="storage/ae-retry",
                )

    def _retry_transfer(self, key: Tuple[str, str], attempt: int) -> None:
        owner, file_id = key
        replicated = self._files.get(file_id)
        store = self._stores.get(owner)
        if replicated is None or store is None or owner not in replicated.holders:
            self._pending_retries.discard(key)
            return
        newest = self._newest_online_holder(replicated)
        if newest is None:
            self._pending_retries.discard(key)
            return
        _, stamp = newest
        if owner not in self._offline:
            self._pending_retries.discard(key)
            if store.stamp_of(file_id) < stamp and self._push(file_id, store, stamp):
                self.anti_entropy_repairs += 1
                self._emit("anti_entropy_repairs")
            return
        if self._backoff is None or self._engine is None or attempt > self._backoff.max_retries:
            # Retry budget is spent with the holder still offline: the
            # transfer is abandoned, but ledgered — a whole-run failure
            # must be visible in stats, not silently dropped.
            self._pending_retries.discard(key)
            self.anti_entropy_retries_exhausted += 1
            self.exhausted_transfers.append(key)
            self._emit("anti_entropy_retries_exhausted")
            return
        self.anti_entropy_failed_transfers += 1
        self._emit("anti_entropy_failed_transfers")
        delay = self._backoff.delay_for(attempt, self._ae_rng)
        self._engine.schedule(
            delay,
            lambda k=key, a=attempt + 1: self._retry_transfer(k, a),
            label="storage/ae-retry",
        )

    # -- introspection -------------------------------------------------------------

    def replica_count(self, file_id: str) -> int:
        """Online replica count of one file."""
        replicated = self._files.get(file_id)
        if replicated is None:
            return 0
        return sum(1 for owner in replicated.holders if self.is_online(owner))

    def holders_of(self, file_id: str) -> List[str]:
        """Assigned holders of one file, sorted (offline included)."""
        replicated = self._files.get(file_id)
        if replicated is None:
            return []
        return sorted(replicated.holders)

    def stamp_of(self, file_id: str) -> VersionStamp:
        """Newest stamp held by any online replica of one file."""
        replicated = self._files.get(file_id)
        if replicated is None:
            return ZERO_STAMP
        newest = self._newest_online_holder(replicated)
        return newest[1] if newest is not None else ZERO_STAMP

    def divergent_files(self) -> List[str]:
        """Files whose online replicas disagree on the version, sorted."""
        divergent = []
        for file_id, replicated in sorted(self._files.items()):
            stamps = {
                self._stores[owner].stamp_of(file_id)
                for owner in replicated.holders
                if self.is_online(owner)
            }
            if len(stamps) > 1:
                divergent.append(file_id)
        return divergent

    def availability(self) -> float:
        """Fraction of stored files currently readable."""
        if not self._files:
            return 0.0
        available = sum(1 for fid in self._files if self.is_available(fid))
        return available / len(self._files)

    # -- listener plumbing ---------------------------------------------------------

    def _notify_read(
        self, file_id: str, stamp: Optional[VersionStamp], ok: bool, time: float
    ) -> None:
        if self.listener is not None:
            self.listener.on_read(file_id, stamp, ok, time)

    def _notify_write(
        self, file_id: str, stamp: Optional[VersionStamp], acked: bool, time: float
    ) -> None:
        if self.listener is not None:
            self.listener.on_write(file_id, stamp, acked, time)
