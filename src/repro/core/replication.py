"""File replication for availability (§III.A).

"How many copies of a shared file should be distributed in v-cloud so
that other vehicles can keep accessing this file even if many vehicles
are offline at the same time" — experiment E9's question.  The manager
places ``k`` replicas on distinct members, serves reads from any online
holder, and can optionally re-replicate when departures push a file
below its target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import ResourceError


@dataclass(frozen=True)
class StoredFile:
    """Metadata of one replicated file."""

    file_id: str
    size_bytes: int
    target_replicas: int


@dataclass
class _HolderSet:
    file: StoredFile
    holders: Set[str] = field(default_factory=set)


class FileStore:
    """One member's bounded local storage."""

    def __init__(self, owner_id: str, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ResourceError("capacity_bytes must be non-negative")
        self.owner_id = owner_id
        self.capacity_bytes = capacity_bytes
        self._files: Dict[str, int] = {}  # file_id -> size

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return sum(self._files.values())

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    def can_store(self, size_bytes: int) -> bool:
        """Whether a file of this size fits."""
        return size_bytes <= self.free_bytes

    def put(self, file_id: str, size_bytes: int) -> None:
        """Store a replica; raises when capacity is exceeded."""
        if file_id in self._files:
            return
        if not self.can_store(size_bytes):
            raise ResourceError(
                f"{self.owner_id!r}: {self.free_bytes} bytes free, need {size_bytes}"
            )
        self._files[file_id] = size_bytes

    def drop(self, file_id: str) -> None:
        """Remove a replica (no-op if absent)."""
        self._files.pop(file_id, None)

    def holds(self, file_id: str) -> bool:
        """Whether a replica is present."""
        return file_id in self._files


class ReplicationManager:
    """Places and repairs file replicas across cloud members."""

    def __init__(self, rng, repair: bool = True) -> None:
        self.rng = rng
        self.repair = repair
        self._stores: Dict[str, FileStore] = {}
        self._files: Dict[str, _HolderSet] = {}
        self.replicas_placed = 0
        self.repair_transfers = 0
        self.failed_reads = 0
        self.successful_reads = 0

    # -- membership ------------------------------------------------------------

    def add_store(self, store: FileStore) -> None:
        """Register a member's storage."""
        self._stores[store.owner_id] = store

    def remove_store(self, owner_id: str) -> List[str]:
        """Handle a member departure; returns files that lost a replica.

        With ``repair`` enabled, lost replicas are re-placed on surviving
        members immediately (each repair costs one transfer).
        """
        store = self._stores.pop(owner_id, None)
        if store is None:
            return []
        degraded = []
        for file_id, holder_set in self._files.items():
            if owner_id in holder_set.holders:
                holder_set.holders.discard(owner_id)
                degraded.append(file_id)
                if self.repair:
                    self._repair(holder_set)
        return degraded

    def member_ids(self) -> List[str]:
        """Members currently contributing storage."""
        return list(self._stores)

    # -- placement ----------------------------------------------------------------

    def store_file(self, file: StoredFile) -> int:
        """Place the file's replicas; returns the replica count achieved."""
        if file.target_replicas < 1:
            raise ResourceError("target_replicas must be >= 1")
        if file.file_id in self._files:
            raise ResourceError(f"file already stored: {file.file_id!r}")
        holder_set = _HolderSet(file=file)
        self._files[file.file_id] = holder_set
        self._place(holder_set, file.target_replicas)
        return len(holder_set.holders)

    def _candidates(self, holder_set: _HolderSet) -> List[FileStore]:
        return [
            store
            for owner, store in self._stores.items()
            if owner not in holder_set.holders
            and store.can_store(holder_set.file.size_bytes)
        ]

    def _place(self, holder_set: _HolderSet, count: int) -> None:
        for _ in range(count):
            candidates = self._candidates(holder_set)
            if not candidates:
                break
            # Spread load: prefer the emptiest store, break ties randomly.
            best_free = max(c.free_bytes for c in candidates)
            emptiest = [c for c in candidates if c.free_bytes == best_free]
            chosen = self.rng.choice(emptiest)
            chosen.put(holder_set.file.file_id, holder_set.file.size_bytes)
            holder_set.holders.add(chosen.owner_id)
            self.replicas_placed += 1

    def _repair(self, holder_set: _HolderSet) -> None:
        missing = holder_set.file.target_replicas - len(holder_set.holders)
        if missing <= 0 or not holder_set.holders:
            return  # nothing to copy from once the last replica is gone
        before = len(holder_set.holders)
        self._place(holder_set, missing)
        self.repair_transfers += len(holder_set.holders) - before

    # -- reads -------------------------------------------------------------------------

    def is_available(self, file_id: str) -> bool:
        """Whether at least one replica is on a present member."""
        holder_set = self._files.get(file_id)
        if holder_set is None:
            return False
        return any(owner in self._stores for owner in holder_set.holders)

    def read(self, file_id: str) -> Optional[str]:
        """Serve a read; returns the holder used, or None on failure."""
        holder_set = self._files.get(file_id)
        if holder_set is None:
            self.failed_reads += 1
            return None
        live = sorted(owner for owner in holder_set.holders if owner in self._stores)
        if not live:
            self.failed_reads += 1
            return None
        self.successful_reads += 1
        return self.rng.choice(live)

    def replica_count(self, file_id: str) -> int:
        """Live replica count of one file."""
        holder_set = self._files.get(file_id)
        if holder_set is None:
            return 0
        return sum(1 for owner in holder_set.holders if owner in self._stores)

    def availability(self) -> float:
        """Fraction of stored files currently readable."""
        if not self._files:
            return 0.0
        available = sum(1 for fid in self._files if self.is_available(fid))
        return available / len(self._files)
