"""Result aggregation and dissemination (§III.A).

Divisible jobs fan out as sub-tasks; the coordinator aggregates partial
results as they arrive and disseminates the combined answer to the
membership.  The aggregator is quorum-aware: a job can complete at, say,
80% of partials, absorbing stragglers lost to churn — the v-cloud
counterpart of conventional-cloud speculative execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import TaskError


@dataclass
class PartialResult:
    """One worker's contribution to a divisible job."""

    job_id: str
    worker_id: str
    index: int
    value: object
    received_at: float


@dataclass
class AggregationJob:
    """A divisible job awaiting partial results."""

    job_id: str
    expected_parts: int
    quorum_fraction: float = 1.0
    combine: Callable[[List[object]], object] = field(default=lambda values: values)
    partials: Dict[int, PartialResult] = field(default_factory=dict)
    completed_at: Optional[float] = None
    result: Optional[object] = None

    def __post_init__(self) -> None:
        if self.expected_parts < 1:
            raise TaskError("expected_parts must be >= 1")
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise TaskError("quorum_fraction must be in (0, 1]")

    @property
    def quorum_size(self) -> int:
        """Number of partials needed to complete."""
        import math

        return max(1, math.ceil(self.expected_parts * self.quorum_fraction))

    @property
    def is_complete(self) -> bool:
        """Whether the job has produced its combined result."""
        return self.completed_at is not None


class ResultAggregator:
    """Collects partials at the coordinator and combines at quorum."""

    def __init__(self) -> None:
        self._jobs: Dict[str, AggregationJob] = {}
        self.duplicates_ignored = 0
        self.late_partials = 0

    def open_job(
        self,
        job_id: str,
        expected_parts: int,
        quorum_fraction: float = 1.0,
        combine: Optional[Callable[[List[object]], object]] = None,
    ) -> AggregationJob:
        """Register a new divisible job."""
        if job_id in self._jobs:
            raise TaskError(f"job already open: {job_id!r}")
        job = AggregationJob(
            job_id=job_id,
            expected_parts=expected_parts,
            quorum_fraction=quorum_fraction,
            combine=combine if combine is not None else (lambda values: values),
        )
        self._jobs[job_id] = job
        return job

    def job(self, job_id: str) -> AggregationJob:
        """Return an open (or completed) job."""
        job = self._jobs.get(job_id)
        if job is None:
            raise TaskError(f"unknown job: {job_id!r}")
        return job

    def submit_partial(
        self, job_id: str, worker_id: str, index: int, value: object, now: float
    ) -> Optional[object]:
        """Accept one partial; returns the combined result at quorum.

        Duplicate indices are ignored (a retransmitted partial must not
        double-count); partials arriving after completion are counted as
        stragglers.
        """
        job = self.job(job_id)
        if job.is_complete:
            self.late_partials += 1
            return job.result
        if index in job.partials:
            self.duplicates_ignored += 1
            return None
        if not 0 <= index < job.expected_parts:
            raise TaskError(f"partial index {index} out of range for {job_id!r}")
        job.partials[index] = PartialResult(
            job_id=job_id, worker_id=worker_id, index=index, value=value, received_at=now
        )
        if len(job.partials) >= job.quorum_size:
            ordered = [job.partials[i].value for i in sorted(job.partials)]
            job.result = job.combine(ordered)
            job.completed_at = now
            return job.result
        return None

    def progress(self, job_id: str) -> float:
        """Fraction of expected partials received."""
        job = self.job(job_id)
        return len(job.partials) / job.expected_parts


def dissemination_cost(
    member_count: int, payload_bytes: int, per_hop_latency_s: float = 0.004
) -> float:
    """Latency to push a result to all members via head broadcast.

    One coordinator broadcast reaches direct neighbors; a two-tier cloud
    (members relaying to stragglers) costs a second hop.  This analytic
    form keeps dissemination accounting cheap inside large sweeps.
    """
    if member_count <= 0:
        return 0.0
    hops = 1 if member_count <= 16 else 2
    transfer = payload_bytes / 750_000.0
    return hops * (per_hop_latency_s + transfer)
