"""Participation incentives (after Kong et al. [17], [18]).

Resource lending needs incentives: "a secure and privacy-preserving
incentive framework ... enables vehicles to opportunistically perform
on-demand tasks and (financially) benefit from the completed task."

A :class:`CreditLedger` keeps per-member balances: workers *earn*
credits proportional to verified work, submitters *spend* credits to
offload, and a configurable free-rider policy blocks members whose
balance falls below a floor.  Credits attach to pseudonymous wallet ids,
so the ledger preserves the same privacy split as everything else —
balances are attributable only through the TA's escrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ResourceError


@dataclass(frozen=True)
class LedgerEntry:
    """One credit movement."""

    time: float
    wallet: str
    amount: float  # positive = earned, negative = spent
    reason: str


class CreditLedger:
    """Per-wallet credit accounting with a free-rider floor."""

    def __init__(
        self,
        initial_grant: float = 10.0,
        min_balance_to_submit: float = 0.0,
        credit_per_mi: float = 0.001,
    ) -> None:
        if initial_grant < 0 or credit_per_mi <= 0:
            raise ResourceError("initial_grant >= 0 and credit_per_mi > 0 required")
        self.initial_grant = initial_grant
        self.min_balance_to_submit = min_balance_to_submit
        self.credit_per_mi = credit_per_mi
        self._balances: Dict[str, float] = {}
        self.entries: List[LedgerEntry] = []

    # -- accounts -----------------------------------------------------------

    def open_wallet(self, wallet: str) -> float:
        """Open a wallet with the signup grant; idempotent."""
        if wallet not in self._balances:
            self._balances[wallet] = self.initial_grant
            if self.initial_grant:
                self.entries.append(
                    LedgerEntry(0.0, wallet, self.initial_grant, "signup-grant")
                )
        return self._balances[wallet]

    def balance(self, wallet: str) -> float:
        """Current balance (0 for unknown wallets)."""
        return self._balances.get(wallet, 0.0)

    def wallets(self) -> List[str]:
        """All opened wallets."""
        return list(self._balances)

    # -- movements -------------------------------------------------------------

    def price_of(self, work_mi: float) -> float:
        """Credits a submitter pays for a task of this size."""
        return work_mi * self.credit_per_mi

    def can_submit(self, wallet: str, work_mi: float) -> bool:
        """Whether the wallet can afford a submission and stay above floor."""
        price = self.price_of(work_mi)
        return self.balance(wallet) - price >= self.min_balance_to_submit

    def charge_submission(self, wallet: str, work_mi: float, now: float) -> float:
        """Debit the submission price; raises for free riders."""
        price = self.price_of(work_mi)
        if not self.can_submit(wallet, work_mi):
            raise ResourceError(
                f"wallet {wallet!r} balance {self.balance(wallet):.3f} cannot cover "
                f"{price:.3f} (floor {self.min_balance_to_submit})"
            )
        self._balances[wallet] = self.balance(wallet) - price
        self.entries.append(LedgerEntry(now, wallet, -price, "task-submission"))
        return price

    def reward_work(self, wallet: str, work_mi: float, now: float) -> float:
        """Credit a worker for verified completed work."""
        if wallet not in self._balances:
            self.open_wallet(wallet)
        reward = work_mi * self.credit_per_mi
        self._balances[wallet] += reward
        self.entries.append(LedgerEntry(now, wallet, reward, "work-completed"))
        return reward

    def fine(self, wallet: str, amount: float, now: float, reason: str = "misbehaviour") -> None:
        """Penalize a wallet (e.g. after a trust verdict against it)."""
        if amount < 0:
            raise ResourceError("fine amount must be non-negative")
        self._balances[wallet] = self.balance(wallet) - amount
        self.entries.append(LedgerEntry(now, wallet, -amount, reason))

    # -- diagnostics -----------------------------------------------------------

    def free_riders(self) -> List[str]:
        """Wallets currently unable to submit even a minimal task."""
        return sorted(
            wallet
            for wallet in self._balances
            if not self.can_submit(wallet, work_mi=1.0)
        )

    def top_earners(self, limit: int = 5) -> List[Tuple[str, float]]:
        """Wallets by earned (positive) ledger volume."""
        earned: Dict[str, float] = {}
        for entry in self.entries:
            if entry.amount > 0 and entry.reason == "work-completed":
                earned[entry.wallet] = earned.get(entry.wallet, 0.0) + entry.amount
        ranked = sorted(earned.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    def total_supply(self) -> float:
        """Sum of all balances (conservation diagnostic)."""
        return sum(self._balances.values())


@dataclass
class IncentivizedSubmission:
    """Glue: charge on submit, reward the worker on completion."""

    ledger: CreditLedger
    cloud: object  # VehicularCloud
    rewards_paid: int = 0
    submissions_blocked: int = 0

    def submit(self, submitter_wallet: str, task, now: Optional[float] = None):
        """Submit through the ledger; returns the record or None if broke."""
        world = self.cloud.world
        timestamp = now if now is not None else world.now
        if not self.ledger.can_submit(submitter_wallet, task.work_mi):
            self.submissions_blocked += 1
            return None
        self.ledger.charge_submission(submitter_wallet, task.work_mi, timestamp)
        record = self.cloud.submit(task)

        def pay_if_done() -> None:
            from .tasks import TaskState

            if record.state is TaskState.COMPLETED and record.workers_history:
                self.ledger.reward_work(
                    record.workers_history[-1], task.work_mi, world.now
                )
                self.rewards_paid += 1

        # Settle shortly after the deadline horizon (or a default window).
        horizon = task.deadline_s if task.deadline_s is not None else 120.0
        world.engine.schedule(horizon + 1.0, pay_if_done, label="incentive-settle")
        return record
