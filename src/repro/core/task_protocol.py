"""Message-driven task offloading over the live channel.

The orchestrator (`repro.core.vcloud`) prices coordination analytically;
this module runs the same exchange as *real channel traffic* — a TASK
assignment frame carrying the input payload, worker-side execution, and
a TASK result frame back — so the analytic adapters can be validated
against measured message latency, loss and retries.

Flow per offload::

    head --TASK(assign, input_bytes)--> worker      (may be lost)
    worker: compute remaining_work / mips seconds
    worker --TASK(result, output_bytes)--> head     (may be lost)

Losses are handled with a bounded retransmission timer, as a deployed
protocol would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import TaskError
from ..faults.recovery import BackoffPolicy
from ..net.messages import Message, MessageKind
from ..net.node import NetworkNode
from ..sim.world import World
from .tasks import Task

_exchange_counter = itertools.count(1)


@dataclass
class OffloadResult:
    """Outcome of one networked offload exchange."""

    exchange_id: str
    task: Task
    started_at: float
    completed_at: Optional[float] = None
    assign_transmissions: int = 0
    result_transmissions: int = 0
    failed: bool = False
    #: Typed reason for a failed exchange (None while live/successful).
    failure_reason: Optional[str] = None

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end offload latency, None until completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def done(self) -> bool:
        """True once the result frame reached the head."""
        return self.completed_at is not None


class NetworkedTaskExchange:
    """Runs TASK assignment/result frames between two channel nodes."""

    def __init__(
        self,
        world: World,
        head: NetworkNode,
        retry_interval_s: float = 0.5,
        max_retries: int = 5,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        if retry_interval_s <= 0 or max_retries < 0:
            raise TaskError("retry_interval_s > 0 and max_retries >= 0 required")
        self.world = world
        self.head = head
        self.retry_interval_s = retry_interval_s
        # Default is a degenerate fixed-interval policy reproducing the
        # historical retry timing exactly (no rng draws, no growth).
        self.backoff = (
            backoff
            if backoff is not None
            else BackoffPolicy.fixed(retry_interval_s, max_retries=max_retries)
        )
        self.max_retries = self.backoff.max_retries
        self._retry_rng = world.rng.fork(f"offload-retry/{head.node_id}")
        self._exchanges: Dict[str, OffloadResult] = {}
        self._workers: Dict[str, NetworkNode] = {}
        self._worker_mips: Dict[str, float] = {}
        head.on(MessageKind.TASK, self._head_handler)

    # -- worker registration ----------------------------------------------

    def register_worker(self, node: NetworkNode, mips: float) -> None:
        """Attach the worker-side protocol handler to a node."""
        if mips <= 0:
            raise TaskError("worker mips must be positive")
        self._workers[node.node_id] = node
        self._worker_mips[node.node_id] = mips
        seen: set = set()
        finished: Dict[str, Message] = {}

        def _send_result(exchange_id: str) -> None:
            result = finished[exchange_id]
            record = self._exchanges.get(exchange_id)
            if record is not None:
                record.result_transmissions += 1
            node.send(self.head.node_id, result)

        def _worker_handler(message: Message, from_id: str) -> None:
            if message.payload.get("phase") != "assign":
                return
            exchange_id = message.payload["exchange_id"]
            if exchange_id in seen:
                # Retransmitted assignment.  If the compute already
                # finished, the earlier result frame must have been lost:
                # resend it.  Otherwise execution is still in flight.
                if exchange_id in finished:
                    _send_result(exchange_id)
                return
            seen.add(exchange_id)
            work_mi = message.payload["work_mi"]
            output_bytes = message.payload["output_bytes"]
            runtime = work_mi / mips

            def _finish() -> None:
                finished[exchange_id] = Message(
                    kind=MessageKind.TASK,
                    src=node.node_id,
                    dst=self.head.node_id,
                    payload={"phase": "result", "exchange_id": exchange_id},
                    size_bytes=max(1, output_bytes),
                    created_at=self.world.now,
                    ttl_hops=0,
                )
                _send_result(exchange_id)

            self.world.engine.schedule(runtime, _finish, label="offload-compute")

        node.on(MessageKind.TASK, _worker_handler)

    # -- head side -----------------------------------------------------------

    def _head_handler(self, message: Message, from_id: str) -> None:
        if message.payload.get("phase") != "result":
            return
        exchange_id = message.payload["exchange_id"]
        record = self._exchanges.get(exchange_id)
        if record is None or record.done:
            return
        record.completed_at = self.world.now

    def offload(self, worker_id: str, task: Task) -> OffloadResult:
        """Start one offload exchange to a registered worker."""
        if worker_id not in self._workers:
            raise TaskError(f"worker not registered: {worker_id!r}")
        exchange_id = f"xchg-{next(_exchange_counter)}"
        record = OffloadResult(
            exchange_id=exchange_id, task=task, started_at=self.world.now
        )
        self._exchanges[exchange_id] = record
        self._send_assign(record, worker_id, attempt=0)
        return record

    def _send_assign(self, record: OffloadResult, worker_id: str, attempt: int) -> None:
        if record.done or record.failed:
            return
        if attempt > self.max_retries:
            record.failed = True
            record.failure_reason = "retries_exhausted"
            self.world.metrics.increment("offload/retries_exhausted")
            events = self.world.events
            if events is not None:
                events.emit(
                    "task_protocol", "offload_failed", severity="warning",
                    exchange_id=record.exchange_id, worker=worker_id,
                    reason="retries_exhausted", attempts=record.assign_transmissions,
                )
            return
        assign = Message(
            kind=MessageKind.TASK,
            src=self.head.node_id,
            dst=worker_id,
            payload={
                "phase": "assign",
                "exchange_id": record.exchange_id,
                "work_mi": record.task.work_mi,
                "output_bytes": record.task.output_bytes,
            },
            size_bytes=max(1, record.task.input_bytes),
            created_at=self.world.now,
            ttl_hops=0,
        )
        record.assign_transmissions += 1
        self.head.send(worker_id, assign)
        # Retransmit unless the result arrives in time.  The timer spans
        # the expected compute on *this* worker's registered MIPS plus a
        # backoff-governed wait, so only genuinely lost frames retry and
        # repeated losses space out.  A fixed divisor here made fast
        # workers wait far too long and slow workers retransmit while
        # the compute was still legitimately running.
        wait = self.backoff.delay_for(attempt, self._retry_rng)
        expected = record.task.work_mi / self._worker_mips[worker_id] + wait
        self.world.engine.schedule(
            expected,
            lambda: self._send_assign(record, worker_id, attempt + 1),
            label="offload-retry",
        )
