"""V-cloud core: architectures, membership, election, tasks, replication, modes."""

from ..faults.recovery import BackoffPolicy, WorkerLeases
from .incentives import CreditLedger, IncentivizedSubmission, LedgerEntry
from .task_protocol import NetworkedTaskExchange, OffloadResult
from .bootstrap import BootstrapResult, BootstrapStats, SecureBootstrap
from .federation import CloudFederation
from .sensing import SensingAnswer, SensingQuery, SensingService
from .snapshot import (
    ForensicService,
    InvestigationReport,
    TopologyRecorder,
    TopologySnapshot,
)
from .aggregation import (
    AggregationJob,
    PartialResult,
    ResultAggregator,
    dissemination_cost,
)
from .architectures import DynamicVCloud, InfrastructureVCloud, StationaryVCloud
from .capacity import BacklogEstimator, LoadSignal
from .directory import ResourceDirectory, ResourceQuery
from .election import BrokerCandidate, BrokerElection, ElectionResult
from .handover import (
    CheckpointHandoverPolicy,
    DropPolicy,
    HandoverOutcome,
    HandoverPolicy,
)
from .membership import MemberInfo, MembershipManager
from .modes import ModeManager, ModePolicy, ModePropagation, DEFAULT_POLICIES
from .replication import (
    FileStore,
    QuorumConfig,
    ReadResult,
    ReplicationManager,
    StoredFile,
    VersionStamp,
    WriteResult,
    ZERO_STAMP,
)
from .resources import Reservation, ResourceKind, ResourceOffer, ResourcePool
from .scheduler import (
    AllocationChoice,
    Allocator,
    DwellAwareAllocator,
    GatedAllocator,
    GreedyResourceAllocator,
    RandomAllocator,
    WorkerCandidate,
    candidates_from_pool,
)
from .tasks import Task, TaskRecord, TaskState, next_task_id
from .vcloud import (
    CloudStats,
    CoordinationAdapter,
    GeometryCoordination,
    RsuCoordination,
    V2VCoordination,
    VehicularCloud,
)

__all__ = [
    "BackoffPolicy",
    "NetworkedTaskExchange",
    "OffloadResult",
    "WorkerLeases",
    "CreditLedger",
    "IncentivizedSubmission",
    "LedgerEntry",
    "BootstrapResult",
    "BootstrapStats",
    "CloudFederation",
    "ForensicService",
    "InvestigationReport",
    "SecureBootstrap",
    "SensingAnswer",
    "SensingQuery",
    "SensingService",
    "TopologyRecorder",
    "TopologySnapshot",
    "AggregationJob",
    "AllocationChoice",
    "Allocator",
    "BacklogEstimator",
    "LoadSignal",
    "BrokerCandidate",
    "BrokerElection",
    "CheckpointHandoverPolicy",
    "CloudStats",
    "CoordinationAdapter",
    "GeometryCoordination",
    "DEFAULT_POLICIES",
    "DropPolicy",
    "DwellAwareAllocator",
    "DynamicVCloud",
    "ElectionResult",
    "FileStore",
    "GatedAllocator",
    "GreedyResourceAllocator",
    "HandoverOutcome",
    "HandoverPolicy",
    "InfrastructureVCloud",
    "MemberInfo",
    "MembershipManager",
    "ModeManager",
    "ModePolicy",
    "ModePropagation",
    "PartialResult",
    "QuorumConfig",
    "RandomAllocator",
    "ReadResult",
    "Reservation",
    "ResourceDirectory",
    "ReplicationManager",
    "VersionStamp",
    "WriteResult",
    "ZERO_STAMP",
    "ResourceKind",
    "ResourceOffer",
    "ResourcePool",
    "ResourceQuery",
    "ResultAggregator",
    "RsuCoordination",
    "StationaryVCloud",
    "StoredFile",
    "Task",
    "TaskRecord",
    "TaskState",
    "V2VCoordination",
    "VehicularCloud",
    "WorkerCandidate",
    "candidates_from_pool",
    "dissemination_cost",
    "next_task_id",
]
