"""Data-as-a-service sensing (after Azizian et al. [6]).

"The data collected by mounted sensors is treated as service
(data-as-a-service) and can be delivered and processed by the members
and heads of the vehicular clouds."

A :class:`SensingService` answers area queries ("what is the mean speed
near the intersection?") by tasking member vehicles that (a) carry the
required sensor and (b) are physically inside the query area, collecting
their noisy readings through the aggregator, and returning a quorum
answer.  Sensing joins compute/storage/bandwidth as the fourth pooled
resource of §II.C.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ResourceError
from ..geometry import Vec2
from ..mobility.equipment import SensorKind
from ..mobility.sensors import SensorSuite
from ..mobility.vehicle import Vehicle
from ..sim.world import World
from .aggregation import ResultAggregator

_query_counter = itertools.count(1)


@dataclass(frozen=True)
class SensingQuery:
    """An area-scoped sensing request."""

    kind: SensorKind
    center: Vec2
    radius_m: float
    min_readings: int = 3
    query_id: str = ""

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ResourceError("radius_m must be positive")
        if self.min_readings < 1:
            raise ResourceError("min_readings must be >= 1")
        if not self.query_id:
            object.__setattr__(self, "query_id", f"squery-{next(_query_counter)}")


@dataclass(frozen=True)
class SensingAnswer:
    """The aggregated answer to one sensing query."""

    query_id: str
    value: Optional[float]
    readings_used: int
    contributors: int
    latency_s: float

    @property
    def answered(self) -> bool:
        """True when enough readings arrived to aggregate."""
        return self.value is not None


class SensingService:
    """Tasks in-area, sensor-equipped members and aggregates readings."""

    #: Per-reading collection latency: sample + one V2V report hop.
    PER_READING_LATENCY_S = 0.010

    def __init__(
        self,
        world: World,
        vehicles: List[Vehicle],
        combine: Callable[[List[float]], float] = None,
    ) -> None:
        self.world = world
        self.vehicles = vehicles
        self.combine = combine if combine is not None else (
            lambda values: sum(values) / len(values)
        )
        self.aggregator = ResultAggregator()
        self._suites = {}
        self.queries_served = 0
        self.queries_failed = 0

    def _suite_for(self, vehicle: Vehicle) -> SensorSuite:
        suite = self._suites.get(vehicle.vehicle_id)
        if suite is None:
            suite = SensorSuite(vehicle, self.world.rng)
            self._suites[vehicle.vehicle_id] = suite
        return suite

    def eligible_sensors(self, query: SensingQuery) -> List[Vehicle]:
        """Members inside the area carrying the requested sensor."""
        return [
            vehicle
            for vehicle in self.vehicles
            if vehicle.equipment.has_sensor(query.kind)
            and vehicle.position.distance_to(query.center) <= query.radius_m
        ]

    def _read(self, vehicle: Vehicle, query: SensingQuery) -> Optional[float]:
        suite = self._suite_for(vehicle)
        now = self.world.now
        if query.kind is SensorKind.SPEEDOMETER:
            reading = suite.read_speed(now)
            return None if reading is None else float(reading.value)
        if query.kind is SensorKind.GPS:
            reading = suite.read_gps(now)
            if reading is None:
                return None
            return reading.value.distance_to(query.center)
        if query.kind is SensorKind.RADAR:
            reading = suite.radar_sweep(self.vehicles, now)
            return None if reading is None else float(len(reading.value))
        return None

    def query(self, query: SensingQuery) -> SensingAnswer:
        """Answer one sensing query from the current fleet state."""
        contributors = self.eligible_sensors(query)
        readings: List[float] = []
        job = self.aggregator.open_job(
            query.query_id,
            expected_parts=max(len(contributors), query.min_readings),
            quorum_fraction=min(
                1.0, query.min_readings / max(1, len(contributors))
            ),
            combine=lambda values: self.combine([float(v) for v in values]),
        )
        for index, vehicle in enumerate(contributors):
            value = self._read(vehicle, query)
            if value is None:
                continue
            readings.append(value)
            self.aggregator.submit_partial(
                query.query_id, vehicle.vehicle_id, index, value, self.world.now
            )
        latency = self.PER_READING_LATENCY_S * max(1, len(readings))
        if job.result is None or len(readings) < query.min_readings:
            self.queries_failed += 1
            return SensingAnswer(
                query_id=query.query_id,
                value=None,
                readings_used=len(readings),
                contributors=len(contributors),
                latency_s=latency,
            )
        self.queries_served += 1
        return SensingAnswer(
            query_id=query.query_id,
            value=float(job.result),
            readings_used=len(readings),
            contributors=len(contributors),
            latency_s=latency,
        )
