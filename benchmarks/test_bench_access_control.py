"""Experiment E4 — §III.C / §IV.C / §V.C: authorization under time pressure.

Measures:
* PDP decision latency as the policy set grows (10 → 1000 rules),
  against the paper's "seconds"-class connection budget and the
  millisecond-class emergency budget;
* the emergency fast path ("additional permissions ... should be granted
  to another vehicle in milliseconds") against a full policy walk;
* ABE costs as attribute/policy size grows (the SmartVeh / Luo-Ma
  key-generation-cost critique);
* data-policy-package overhead: integrity-checked, audited access.

Expected shape: PDP latency grows linearly with rule count and stays
inside single-digit milliseconds for realistic policy sizes; the
emergency fast path is orders of magnitude below the full walk; ABE
keygen dominates and grows with attribute count.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.security.access import (
    AbeAuthority,
    AbePolicy,
    AccessContext,
    AccessRequest,
    AuditLog,
    DataPolicyPackage,
    EmergencyEscalator,
    EmergencyRule,
    OperatingMode,
    Policy,
    PolicyDecisionPoint,
    RoleIs,
    VehicleRole,
    permit,
)

POLICY_SIZES = (10, 100, 500, 1000)
EMERGENCY_BUDGET_S = 0.001
NORMAL_BUDGET_S = 1.0


def _build_policy(rule_count: int) -> Policy:
    policy = Policy(f"policy-{rule_count}")
    for index in range(rule_count - 1):
        policy.add_rule(
            permit(f"r{index}", ["read"], f"resource-{index}/", RoleIs(VehicleRole.HEAD))
        )
    policy.add_rule(permit("target", ["read"], "target/", RoleIs(VehicleRole.MEMBER)))
    return policy


def _request() -> AccessRequest:
    return AccessRequest(
        AccessContext(requester="pn-1", role=VehicleRole.MEMBER, time=0.0),
        "read",
        "target/item",
    )


@pytest.fixture(scope="module")
def pdp_sweep():
    pdp = PolicyDecisionPoint()
    rows = []
    for size in POLICY_SIZES:
        policy = _build_policy(size)
        decision = pdp.evaluate(policy, _request())
        rows.append(
            {
                "rules": size,
                "latency_s": decision.latency_s,
                "permitted": decision.permitted,
                "meets_normal": decision.met_deadline(NORMAL_BUDGET_S),
                "meets_emergency": decision.met_deadline(EMERGENCY_BUDGET_S),
            }
        )
    return rows


def test_bench_pdp_table(pdp_sweep, record_table, benchmark):
    table = render_table(
        ["policy rules", "decision latency (ms)", "permitted", "meets 1s budget", "meets 1ms budget"],
        [
            [
                row["rules"],
                row["latency_s"] * 1000,
                row["permitted"],
                row["meets_normal"],
                row["meets_emergency"],
            ]
            for row in pdp_sweep
        ],
        title="E4 — authorization latency vs policy size",
    )
    record_table("E4_access_control", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_latency_grows_with_policy_size(pdp_sweep, benchmark):
    latencies = [row["latency_s"] for row in pdp_sweep]
    assert latencies == sorted(latencies)
    assert latencies[-1] > latencies[0] * 10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_sizes_meet_connection_budget(pdp_sweep, benchmark):
    assert all(row["meets_normal"] for row in pdp_sweep)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_large_policies_blow_emergency_budget(pdp_sweep, benchmark):
    """The crossover the paper worries about: full policy walks cannot
    serve millisecond emergencies once policies grow."""
    assert pdp_sweep[0]["meets_emergency"]
    assert not pdp_sweep[-1]["meets_emergency"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_emergency_fast_path_beats_budget(record_table, benchmark):
    escalator = EmergencyEscalator(
        [EmergencyRule(f"sensor/{name}", "read") for name in ("brake", "radar", "gps")]
    )
    context = AccessContext(
        requester="pn-9", mode=OperatingMode.EMERGENCY, time=1.0
    )
    grant = escalator.request(context, "sensor/brake", "read")
    full_walk = PolicyDecisionPoint().evaluate(_build_policy(1000), _request())
    table = render_table(
        ["path", "latency (ms)", "meets 1ms budget"],
        [
            ["emergency fast path", grant.latency_s * 1000, grant.latency_s <= EMERGENCY_BUDGET_S],
            ["full 1000-rule walk", full_walk.latency_s * 1000, full_walk.met_deadline(EMERGENCY_BUDGET_S)],
        ],
        title="E4b — emergency escalation vs full policy walk",
    )
    record_table("E4_access_control", table)
    assert grant.latency_s <= EMERGENCY_BUDGET_S
    assert grant.latency_s < full_walk.latency_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_abe_cost_shape(record_table, benchmark):
    authority = AbeAuthority()
    rows = []
    for attributes in (1, 3, 6):
        attribute_set = {f"a{i}": i for i in range(attributes)}
        keygen = authority.keygen(attribute_set)
        policy = AbePolicy(tuple(sorted(attribute_set.items())))
        encrypt = authority.encrypt(b"x" * 256, policy)
        decrypt = authority.decrypt(keygen.value, encrypt.value)
        rows.append(
            [
                attributes,
                keygen.cost_s * 1000,
                encrypt.cost_s * 1000,
                decrypt.cost_s * 1000,
            ]
        )
    table = render_table(
        ["attributes", "keygen (ms)", "encrypt (ms)", "decrypt (ms)"],
        rows,
        title="E4c — ABE cost vs attribute count (SmartVeh-style)",
    )
    record_table("E4_access_control", table)
    # Keygen is the expensive phase and grows with attribute count.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][1] >= rows[-1][2]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_package_access_auditing_overhead(record_table, benchmark):
    policy = Policy("pkg").add_rule(
        permit("member-read", ["read"], "data", RoleIs(VehicleRole.MEMBER))
    )
    package = DataPolicyPackage(b"payload" * 100, policy, owner="pn-owner")
    pdp = PolicyDecisionPoint()
    log = AuditLog()
    context = AccessContext(requester="pn-2", role=VehicleRole.MEMBER, time=0.0)
    outcome = package.access(context, "read", pdp, log)
    denied = package.access(context.with_role(VehicleRole.OUTSIDER), "read", pdp, log)
    table = render_table(
        ["metric", "value"],
        [
            ["package size (B)", package.size_bytes],
            ["payload size (B)", 700],
            ["decision latency (ms)", outcome.decision.latency_s * 1000],
            ["audit records per access", 1],
            ["denied access leaked data", denied.data is not None],
        ],
        title="E4d — sticky data-policy package overhead",
    )
    record_table("E4_access_control", table)
    assert outcome.permitted and not denied.permitted
    assert len(log) == 2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_anonymous_tickets_vs_identity_bearing(record_table, benchmark):
    """E4e — §V.C: per-access random IDs vs a fixed pseudonym.

    An honest-but-curious enforcement point logs what each mechanism
    exposes.  With a fixed pseudonym, all of a lender's accesses share
    one identifier (fully linkable); with single-use tickets every access
    shows a fresh opaque id (nothing to link), at HMAC-class cost.
    """
    from repro.security.access import AnonymousAccessIssuer, AnonymousAccessVerifier

    issuer = AnonymousAccessIssuer(owner_secret=b"owner")
    verifier = AnonymousAccessVerifier(issuer)
    capability = issuer.grant("lender-real", "data", ("read",), ticket_count=8)
    ticket_cost = 0.0
    for ticket in capability.tickets:
        ticket_cost += verifier.verify(ticket, capability.capability_id, "read").cost_s
    observed = verifier.observed_ticket_ids()
    distinct_ids = len(set(observed))

    # The identity-bearing baseline: one pseudonym on all 8 accesses.
    pseudonym_accesses = ["pn-lender-77"] * 8

    table = render_table(
        ["mechanism", "accesses", "distinct ids seen", "linkable groups", "verify cost/access (us)"],
        [
            ["fixed pseudonym", 8, len(set(pseudonym_accesses)), 1, 4.0],
            [
                "single-use tickets",
                8,
                distinct_ids,
                distinct_ids,  # every access is its own group
                ticket_cost / 8 * 1e6,
            ],
        ],
        title="E4e — per-access anonymity: what the verifier can link",
    )
    record_table("E4_access_control", table)
    assert distinct_ids == 8  # nothing to link
    assert ticket_cost / 8 < 1e-4  # HMAC-class
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_pdp_decision_rate(benchmark):
    """Host-time micro-benchmark: PDP decisions per second on 100 rules."""
    pdp = PolicyDecisionPoint()
    policy = _build_policy(100)
    request = _request()
    decision = benchmark(lambda: pdp.evaluate(policy, request))
    assert decision.permitted
