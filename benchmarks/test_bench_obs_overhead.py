"""E14 — observability overhead (wall clock) and determinism.

The same seeded scene — 300 vehicles beaconing on a highway while a
v-cloud executes a task stream under a crash + loss-burst fault plan —
runs in four observability modes:

* ``off``            — no tracer, no events, no profiler (the baseline);
* ``tagged``         — the default: tracing + events, frame spans only
  for messages carrying a trace context (beacon storms stay span-free);
* ``tagged+profile`` — as above plus wall-clock profiling of every
  engine callback;
* ``all``            — exhaustive: every frame gets a lifecycle span.

Two claims are asserted:

1. the seeded metrics snapshot is byte-identical in every mode — the
   determinism contract (span ids come from counters, fault-window
   expiry is lazy, wall-clock never feeds back);
2. ``tagged`` tracing costs < 5 % wall clock at 300 vehicles
   (best-of-``E14_ROUNDS`` per mode), which is what makes
   leave-it-on-by-default tenable.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.analysis import render_table
from repro.core import ResourceOffer, Task, VehicularCloud
from repro.faults import FaultInjector, FaultPlan
from repro.mobility import vehicle as vehicle_module
from repro.net import BeaconService, VehicleNode, WirelessChannel

from helpers import highway_world, poisson_task_stream

E14_SEED = 1414
E14_SIM_SECONDS = 3.0
E14_VEHICLES = 300
E14_ROUNDS = 3
E14_MODES = ("off", "tagged", "tagged+profile", "all")
E14_OVERHEAD_LIMIT = 0.05


def _reset_vehicle_ids() -> None:
    vehicle_module._vehicle_counter = itertools.count(1)


def _e14_run(mode: str):
    """One seeded scene in one observability mode.

    Returns ``(snapshot, elapsed_s, stats)`` where ``snapshot`` is the
    full metrics snapshot (the determinism fingerprint) and ``stats``
    carries span/event counts for the sampling table.
    """
    _reset_vehicle_ids()
    world, model, _highway = highway_world(E14_SEED, E14_VEHICLES)
    obs = None
    if mode != "off":
        obs = world.enable_observability(
            profile=(mode == "tagged+profile"),
            channel_frames="all" if mode == "all" else "tagged",
        )
    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
    for node in nodes:
        BeaconService(world, node).start()
    cloud = VehicularCloud(world, "e14-vc")
    for vehicle in model.vehicles[:20]:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 500.0, 10**9, 1e6))
    poisson_task_stream(
        world, cloud, rate_per_s=0.5, duration_s=E14_SIM_SECONDS, work_mi=200.0
    )
    plan = FaultPlan(seed=E14_SEED).crash(1.0).loss_burst(
        at=1.5, duration_s=1.0, drop_probability=0.3
    )
    FaultInjector(world, plan, cloud=cloud, channel=channel).arm()
    started = time.perf_counter()
    world.run_for(E14_SIM_SECONDS)
    elapsed = time.perf_counter() - started
    stats = {
        "spans": len(obs.tracer) if obs is not None and obs.tracer else 0,
        "events": len(obs.events) if obs is not None and obs.events else 0,
        "profiled": (
            obs.profiler.total_events if obs is not None and obs.profiler else 0
        ),
        "frames": int(world.metrics.counter("channel/frames_sent")),
    }
    return world.metrics.snapshot(), elapsed, stats


@pytest.fixture(scope="module")
def e14_sweep():
    sweep = {}
    for mode in E14_MODES:
        best_s = None
        for _ in range(E14_ROUNDS):
            snapshot, elapsed, stats = _e14_run(mode)
            if best_s is None or elapsed < best_s:
                best_s = elapsed
        sweep[mode] = {"snapshot": snapshot, "best_s": best_s, "stats": stats}
    return sweep


def test_bench_e14_seeded_metrics_identical(
    e14_sweep, record_table, record_run_json, benchmark
):
    """Every observability mode must leave the sim metrics byte-identical."""
    baseline = e14_sweep["off"]["snapshot"]
    assert baseline["counter/channel/frames_sent"] > 0
    assert baseline["counter/faults/injected"] >= 1
    rows = []
    for mode in E14_MODES:
        run = e14_sweep[mode]
        assert run["snapshot"] == baseline, f"mode {mode} perturbed the sim"
        record_run_json(
            "E14_obs_overhead",
            f"mode/{mode}",
            run["stats"],
            seed=E14_SEED,
            config={"mode": mode, "vehicles": E14_VEHICLES},
        )
        rows.append(
            [
                mode,
                run["stats"]["frames"],
                run["stats"]["spans"],
                run["stats"]["events"],
                run["stats"]["profiled"],
                "identical",
            ]
        )
    table = render_table(
        ["mode", "frames sent", "spans", "events", "profiled callbacks", "metrics"],
        rows,
        title=(
            f"E14a — determinism, {E14_VEHICLES} vehicles,"
            f" {E14_SIM_SECONDS:.0f} sim-s, all observability modes"
        ),
    )
    record_table("E14_obs_overhead", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e14_wall_clock_overhead(e14_sweep, record_table, benchmark):
    """Tagged tracing must cost < 5 % wall clock (acceptance criterion)."""
    baseline_s = e14_sweep["off"]["best_s"]
    rows = []
    for mode in E14_MODES:
        best_s = e14_sweep[mode]["best_s"]
        overhead = (best_s - baseline_s) / baseline_s
        rows.append([mode, best_s, f"{overhead * 100:+.1f}%"])
    table = render_table(
        ["mode", f"best of {E14_ROUNDS} (s)", "overhead vs off"],
        rows,
        title=(
            f"E14b — wall clock, {E14_VEHICLES} vehicles,"
            f" {E14_SIM_SECONDS:.0f} sim-s of beaconing + tasks + faults"
        ),
    )
    record_table("E14_obs_overhead", table)
    tagged_overhead = (
        e14_sweep["tagged"]["best_s"] - baseline_s
    ) / baseline_s
    assert tagged_overhead < E14_OVERHEAD_LIMIT, (
        f"tagged tracing overhead {tagged_overhead:.1%} exceeds"
        f" {E14_OVERHEAD_LIMIT:.0%}"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
