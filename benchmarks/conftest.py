"""Shared benchmark fixtures.

Every experiment renders its table with ``repro.analysis.render_table``
and publishes it through the ``record_table`` fixture, which both prints
it (visible with ``pytest -s``) and writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote the
exact output.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Mapping, Optional

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Return a callback ``record(experiment_id, table_text)``."""

    def _record(experiment_id: str, table_text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        existing = path.read_text() if path.exists() else ""
        if table_text not in existing:
            path.write_text(existing + table_text + "\n\n")
        print()
        print(table_text)

    return _record


@pytest.fixture
def record_run_json():
    """Return ``record(experiment_id, label, vector, seed=, config=)``.

    Accumulates machine-readable rows next to the ``.txt`` tables as
    ``benchmarks/results/<experiment>.json`` in the shape
    ``repro.campaign.BaselineStore.ingest_results_dir`` consumes::

        {"experiment": "E16_overload",
         "entries": [{"label": ..., "seed": ..., "config": {...},
                      "vector": {metric: value}}]}

    Rows are keyed by label: re-recording a label replaces its entry, so
    reruns stay idempotent instead of appending duplicates.  Non-finite
    values (``inf`` sentinel latencies and the like) are dropped — they
    are not valid JSON and carry no baseline information.
    """

    def _record(
        experiment_id: str,
        label: str,
        vector: Mapping[str, float],
        seed: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.json"
        document: Dict[str, Any] = {"experiment": experiment_id, "entries": []}
        if path.exists():
            document = json.loads(path.read_text())
        entry: Dict[str, Any] = {
            "label": label,
            "vector": {
                name: float(value)
                for name, value in vector.items()
                if math.isfinite(float(value))
            },
        }
        if seed is not None:
            entry["seed"] = int(seed)
        if config is not None:
            entry["config"] = dict(config)
        entries = [e for e in document.get("entries", []) if e.get("label") != label]
        entries.append(entry)
        document["entries"] = entries
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    return _record
