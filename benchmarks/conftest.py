"""Shared benchmark fixtures.

Every experiment renders its table with ``repro.analysis.render_table``
and publishes it through the ``record_table`` fixture, which both prints
it (visible with ``pytest -s``) and writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote the
exact output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Return a callback ``record(experiment_id, table_text)``."""

    def _record(experiment_id: str, table_text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        existing = path.read_text() if path.exists() else ""
        if table_text not in existing:
            path.write_text(existing + table_text + "\n\n")
        print()
        print(table_text)

    return _record
