"""Experiment E2 — paper Fig. 4: the three v-cloud architectures.

Runs the same Poisson task stream through a stationary (parking-lot),
an infrastructure-based (RSU-anchored) and a dynamic (self-organized)
v-cloud, in their natural habitats, then strikes the infrastructure
mid-run.

Expected shape (§IV.A.2): all three serve tasks in good conditions; the
infrastructure-based cloud pays infra messages per task and *collapses*
when the RSU is damaged ("a heavy reliance on infrastructures may
greatly undermine the v-cloud availability"), while the dynamic v-cloud
is unaffected and the stationary one never depended on the RSU at all.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    DynamicVCloud,
    InfrastructureVCloud,
    StationaryVCloud,
    Task,
    TaskState,
)
from repro.infra import deploy_rsus_on_highway
from repro.mobility import ParkingLotModel
from repro.net import WirelessChannel
from repro.sim import ScenarioConfig, World

from helpers import highway_world

PHASE_S = 30.0
TASKS_PER_PHASE = 15
WORK_MI = 600.0
DEADLINE_S = 20.0


def _submit_phase(world, cloud, start_at, records):
    for index in range(TASKS_PER_PHASE):
        world.engine.schedule_at(
            start_at + index * (PHASE_S / TASKS_PER_PHASE),
            lambda: records.append(cloud.submit(Task(work_mi=WORK_MI, deadline_s=DEADLINE_S))),
            label="phase-task",
        )


def _phase_stats(records):
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    latencies = [r.completion_latency_s for r in completed]
    return {
        "completion_rate": len(completed) / max(1, len(records)),
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else float("inf"),
    }


def _run_stationary(seed: int):
    world = World(ScenarioConfig(seed=seed))
    lot = ParkingLotModel(world, departure_rate_per_hour=30.0)
    lot.populate(25)
    lot.start()
    arch = StationaryVCloud(world, lot)
    arch.start()
    before, after = [], []
    _submit_phase(world, arch.cloud, 0.0, before)
    _submit_phase(world, arch.cloud, PHASE_S + 25.0, after)
    world.run_for(2 * PHASE_S + 80.0)
    return arch.cloud, before, after


def _run_infrastructure(seed: int):
    world, model, highway = highway_world(seed, vehicle_count=30, length_m=3000)
    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
    arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    before, after = [], []
    _submit_phase(world, arch.cloud, 0.0, before)
    # Disaster strikes between the phases.
    world.engine.schedule_at(PHASE_S + 22.0, rsus[0].damage, label="disaster")
    _submit_phase(world, arch.cloud, PHASE_S + 25.0, after)
    world.run_for(2 * PHASE_S + 80.0)
    return arch.cloud, before, after


def _run_dynamic(seed: int):
    world, model, _highway = highway_world(seed, vehicle_count=30, length_m=3000)
    arch = DynamicVCloud(world, model)
    arch.start()
    before, after = [], []
    _submit_phase(world, arch.cloud, 0.0, before)
    _submit_phase(world, arch.cloud, PHASE_S + 25.0, after)
    world.run_for(2 * PHASE_S + 80.0)
    return arch.cloud, before, after


@pytest.fixture(scope="module")
def results():
    outcomes = {}
    for label, runner, seed in (
        ("stationary", _run_stationary, 201),
        ("infrastructure", _run_infrastructure, 202),
        ("dynamic", _run_dynamic, 203),
    ):
        cloud, before, after = runner(seed)
        outcomes[label] = {
            "before": _phase_stats(before),
            "after": _phase_stats(after),
            "infra_msgs_per_task": cloud.stats.infra_messages
            / max(1, cloud.stats.submitted),
        }
    return outcomes


def test_bench_fig4_table(results, record_table, benchmark):
    rows = []
    for label in ("stationary", "infrastructure", "dynamic"):
        entry = results[label]
        rows.append(
            [
                label,
                entry["before"]["completion_rate"],
                entry["before"]["mean_latency_s"],
                entry["after"]["completion_rate"],
                entry["infra_msgs_per_task"],
            ]
        )
    table = render_table(
        [
            "architecture",
            "completion (normal)",
            "latency s (normal)",
            "completion (post-disaster)",
            "infra msgs/task",
        ],
        rows,
        title="E2 / Fig.4 — stationary vs infrastructure-based vs dynamic v-cloud",
    )
    record_table("E2_fig4_architectures", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_architectures_serve_in_good_conditions(results, benchmark):
    for label in ("stationary", "infrastructure", "dynamic"):
        assert results[label]["before"]["completion_rate"] >= 0.8, label
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_infrastructure_cloud_collapses_after_disaster(results, benchmark):
    assert results["infrastructure"]["after"]["completion_rate"] <= 0.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_dynamic_cloud_unaffected_by_disaster(results, benchmark):
    assert results["dynamic"]["after"]["completion_rate"] >= 0.8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_only_infrastructure_cloud_pays_infra_messages(results, benchmark):
    assert results["infrastructure"]["infra_msgs_per_task"] > 0
    assert results["dynamic"]["infra_msgs_per_task"] == 0.0
    assert results["stationary"]["infra_msgs_per_task"] == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_dynamic_architecture_run(benchmark):
    """End-to-end timing of a dynamic v-cloud phase run."""
    result = benchmark.pedantic(lambda: _run_dynamic(204), rounds=1, iterations=1)
    cloud, before, _after = result
    assert _phase_stats(before)["completion_rate"] > 0.5
