"""Ablation benches for the framework's own design choices.

DESIGN.md commits each subsystem to specific parameter choices; these
ablations show the trade-off curve each choice sits on:

* A1 — handover progress threshold: below which completed fraction is a
  restart cheaper than a checkpoint transfer?
* A2 — Bloom revocation filter sizing: false-positive rate (extra TA
  round trips) vs. filter bits.
* A3 — replay-cache window: stale-rejection of legitimate but delayed
  messages vs. replay exposure.
* A4 — election weights: head tenure under resource-only vs.
  dwell/centrality-aware scoring.
* A5 — beacon interval: neighbor-table completeness vs. channel load.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.attacks import ReplayCache
from repro.core import (
    BrokerCandidate,
    BrokerElection,
    CheckpointHandoverPolicy,
    Task,
    TaskRecord,
)
from repro.mobility import Highway, HighwayModel, link_lifetime
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.security import BloomRevocationFilter
from repro.sim import ScenarioConfig, SeededRng, World


# ---------------------------------------------------------------------------
# A1 — handover progress threshold
# ---------------------------------------------------------------------------


def _handover_outcome(progress: float, threshold: float):
    record = TaskRecord(task=Task(work_mi=5000), submitted_at=0.0)
    record.assign("w", 0.0)
    record.start()
    record.checkpoint(progress)
    policy = CheckpointHandoverPolicy(min_progress_to_handover=threshold)
    outcome = policy.on_worker_departed(record, now=10.0)
    # Cost of the decision: transfer overhead plus recompute time of the
    # progress not preserved (on a reference 500-MIPS worker).
    recompute_s = (progress - outcome.preserved_progress) * 5000 / 500.0
    return outcome.overhead_s + recompute_s


def test_bench_a1_handover_threshold(record_table, benchmark):
    rows = []
    for threshold in (0.0, 0.02, 0.1, 0.3):
        costs = [
            _handover_outcome(progress, threshold)
            for progress in (0.01, 0.05, 0.25, 0.75)
        ]
        rows.append([threshold] + [round(c, 3) for c in costs])
    table = render_table(
        ["threshold", "cost @1% done", "@5%", "@25%", "@75%"],
        rows,
        title="A1 — handover threshold: decision cost (s) by completed fraction",
    )
    record_table("ablations", table)
    # For nearly-done tasks the checkpoint is always right; the
    # threshold only matters for barely-started ones.
    assert _handover_outcome(0.75, 0.0) < _handover_outcome(0.75, 0.9)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A2 — Bloom filter sizing
# ---------------------------------------------------------------------------


def _bloom_fp_rate(bits: int, revoked: int = 200, probes: int = 2000) -> float:
    bloom = BloomRevocationFilter(bits=bits)
    for index in range(revoked):
        bloom.add(f"revoked-{index}")
    false_positives = sum(
        1 for index in range(probes) if bloom.might_be_revoked(f"clean-{index}").value
    )
    return false_positives / probes


def test_bench_a2_bloom_sizing(record_table, benchmark):
    rows = []
    for bits in (512, 2048, 8192, 32768):
        rate = _bloom_fp_rate(bits)
        rows.append([bits, bits // 8, rate])
    table = render_table(
        ["bits", "bytes on OBU", "false-positive rate (200 revoked)"],
        rows,
        title="A2 — Bloom revocation filter sizing",
    )
    record_table("ablations", table)
    rates = [row[2] for row in rows]
    assert rates == sorted(rates, reverse=True)  # more bits, fewer FPs
    assert rates[-1] < 0.01
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A3 — replay window
# ---------------------------------------------------------------------------


def _replay_window_outcomes(window_s: float, rng: SeededRng):
    cache = ReplayCache(window_s=window_s)
    # Legitimate messages arrive with heavy-tailed delay (multi-hop,
    # contention); replays arrive long after capture.
    legit_rejected = 0
    for index in range(500):
        delay = rng.exponential(1.0 / 3.0)  # mean 3 s delivery delay
        sent = index * 2.0
        if not cache.accept(f"legit-{index}", timestamp=sent, now=sent + delay):
            legit_rejected += 1
    replay_accepted = 0
    for index in range(200):
        sent = index * 2.0
        # The attacker replays a *fresh-looking* capture 8 s later with a
        # new nonce view (same nonce -> always caught; the window guards
        # the stale-timestamp path).
        if cache.accept(f"legit-{index}", timestamp=sent, now=sent + 8.0):
            replay_accepted += 1
    return legit_rejected / 500, replay_accepted / 200


def test_bench_a3_replay_window(record_table, benchmark):
    rng = SeededRng(42, "replay-ablation")
    rows = []
    for window in (2.0, 5.0, 15.0, 60.0):
        legit_loss, replay_ok = _replay_window_outcomes(window, rng.fork(str(window)))
        rows.append([window, legit_loss, replay_ok])
    table = render_table(
        ["window (s)", "legit messages rejected", "8s-stale replays accepted"],
        rows,
        title="A3 — replay-cache window trade-off",
    )
    record_table("ablations", table)
    # Tiny windows reject real (slow) traffic; huge windows admit stale
    # timestamps (nonce dedup still catches literal duplicates).
    assert rows[0][1] > rows[-1][1]
    assert rows[0][2] <= rows[-1][2]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A4 — election weights
# ---------------------------------------------------------------------------


def _head_survival(election: BrokerElection, seed: int) -> float:
    """Fraction of 2 s steps the elected head stays in coordination range."""
    world = World(ScenarioConfig(seed=seed))
    model = HighwayModel(world, Highway(length_m=3000))
    vehicles = model.populate(20)
    model.start()

    def candidates():
        reference = vehicles[0]
        result = []
        for vehicle in vehicles:
            dwell = (
                600.0
                if vehicle is reference
                else min(600.0, link_lifetime(reference, vehicle, 300.0))
            )
            result.append(
                BrokerCandidate(
                    vehicle_id=vehicle.vehicle_id,
                    compute_mips=vehicle.equipment.compute_mips,
                    estimated_dwell_s=dwell,
                    position=vehicle.position,
                )
            )
        return result

    head_id = election.elect(candidates()).winner_id
    head = next(v for v in vehicles if v.vehicle_id == head_id)
    in_range_steps = 0
    steps = 30
    for _step in range(steps):
        world.run_for(2.0)
        others = [v for v in vehicles if v is not head]
        reachable = sum(1 for v in others if head.distance_to(v) <= 300.0)
        if reachable >= len(others) * 0.3:
            in_range_steps += 1
    return in_range_steps / steps


def test_bench_a4_election_weights(record_table, benchmark):
    configs = {
        "resource-only": BrokerElection(1.0, 0.0, 0.0),
        "dwell-heavy": BrokerElection(0.2, 0.6, 0.2),
        "balanced (default)": BrokerElection(),
    }
    rows = [
        [label, _head_survival(election, seed=4100)]
        for label, election in configs.items()
    ]
    table = render_table(
        ["election weights", "head coverage retention (60 s)"],
        rows,
        title="A4 — captain election weight ablation",
    )
    record_table("ablations", table)
    by_label = {label: value for label, value in rows}
    assert by_label["balanced (default)"] >= by_label["resource-only"] - 0.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A5 — beacon interval
# ---------------------------------------------------------------------------


def _beacon_tradeoff(interval_s: float, seed: int):
    from repro.sim import ChannelConfig

    world = World(
        ScenarioConfig(
            seed=seed,
            channel=ChannelConfig(base_loss_probability=0.1, loss_per_100m=0.0),
        )
    )
    model = HighwayModel(world, Highway(length_m=1500))
    vehicles = model.populate(20)
    model.start()
    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in vehicles]
    services = [
        BeaconService(world, node, interval_s=interval_s, timeout_s=interval_s * 3)
        for node in nodes
    ]
    for service in services:
        service.start()
    world.run_for(30.0)
    # Completeness: fraction of true in-range neighbors present in tables.
    known = 0
    truth = 0
    for service, vehicle in zip(services, vehicles):
        actual = {
            other.vehicle_id
            for other in vehicles
            if other is not vehicle and vehicle.distance_to(other) <= 300.0
        }
        truth += len(actual)
        known += len(actual & set(service.table.ids()))
    completeness = known / truth if truth else 0.0
    load = world.metrics.counter("beacon/sent") / 30.0
    return completeness, load


def test_bench_a5_beacon_interval(record_table, benchmark):
    rows = []
    for interval in (0.5, 1.0, 3.0):
        completeness, load = _beacon_tradeoff(interval, seed=4200)
        rows.append([interval, completeness, load])
    table = render_table(
        ["beacon interval (s)", "neighbor-table completeness", "beacons/s on air"],
        rows,
        title="A5 — beacon interval: freshness vs channel load",
    )
    record_table("ablations", table)
    loads = [row[2] for row in rows]
    assert loads == sorted(loads, reverse=True)  # faster beacons, more load
    assert rows[0][1] >= rows[-1][1] - 0.1  # and at least as complete
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
