"""Experiment E7 — §IV.A.1: routing and clustering substrate.

Compares greedy geographic forwarding, moving-zone routing (MoZo-like,
Lin et al. [22]), cluster-head overlay routing (CBLTR-like) and epidemic
flooding on a highway under a density sweep, plus cluster-head lifetime
for the clustering algorithms.

Expected shape: epidemic has the best delivery but an order of magnitude
more transmissions; greedy is cheap but suffers at low density (local
maxima); zone/cluster protocols sit between, and mobility-aware zones
give longer head lifetimes than position-only clusters on a highway
(the MoZo claim).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.net.clustering import (
    MobilityClustering,
    PassiveMultihopClustering,
    head_lifetimes,
)
from repro.net.routing import (
    ClusterRouting,
    EpidemicRouting,
    GreedyGeographicRouting,
    MovingZoneRouting,
    RoutingHarness,
)

from helpers import attach_radio_stack, highway_world

DENSITIES = (15, 60)
MESSAGES = 25


def _run_routing(protocol_factory, vehicle_count: int, seed: int):
    world, model, _highway = highway_world(
        seed, vehicle_count=vehicle_count, length_m=2500, lossless=False
    )
    channel, nodes, _services = attach_radio_stack(world, model, with_beacons=False)
    protocol = protocol_factory()
    harness = RoutingHarness(world, channel, protocol, nodes)
    harness.prepare(model.vehicles)
    world.run_for(1.0)
    rng = world.rng.fork("routing-pairs")
    for index in range(MESSAGES):
        src = rng.choice(nodes)
        dst = rng.choice([n for n in nodes if n is not src])
        harness.send(src.node_id, dst.node_id)
        world.run_for(0.5)
        if index % 5 == 4:
            harness.refresh(model.vehicles)
    world.run_for(5.0)
    stats = harness.stats
    return {
        "pdr": stats.pdr,
        "hops": stats.mean_hops,
        "latency_ms": stats.mean_latency_s * 1000,
        "overhead": stats.overhead_per_delivery,
    }


PROTOCOLS = {
    "greedy": GreedyGeographicRouting,
    "moving-zone": MovingZoneRouting,
    "cluster": ClusterRouting,
    "epidemic": EpidemicRouting,
}


@pytest.fixture(scope="module")
def sweep():
    return {
        (name, density): _run_routing(factory, density, seed=700 + density)
        for name, factory in PROTOCOLS.items()
        for density in DENSITIES
    }


def test_bench_routing_table(sweep, record_table, benchmark):
    rows = []
    for name in PROTOCOLS:
        for density in DENSITIES:
            row = sweep[(name, density)]
            rows.append(
                [name, density, row["pdr"], row["hops"], row["latency_ms"], row["overhead"]]
            )
    table = render_table(
        ["protocol", "vehicles", "PDR", "mean hops", "latency (ms)", "tx per delivery"],
        rows,
        title="E7 — routing protocols on a 2.5 km highway",
    )
    record_table("E7_routing", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_epidemic_has_best_delivery(sweep, benchmark):
    for density in DENSITIES:
        best = max(PROTOCOLS, key=lambda name: sweep[(name, density)]["pdr"])
        assert sweep[("epidemic", density)]["pdr"] >= sweep[(best, density)]["pdr"] - 1e-9
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_epidemic_pays_overhead(sweep, benchmark):
    dense = DENSITIES[-1]
    assert (
        sweep[("epidemic", dense)]["overhead"]
        > 3 * sweep[("greedy", dense)]["overhead"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_density_helps_delivery(sweep, benchmark):
    """Sparse networks partition; density closes the gaps."""
    for name in ("greedy", "moving-zone"):
        assert (
            sweep[(name, DENSITIES[-1])]["pdr"] >= sweep[(name, DENSITIES[0])]["pdr"]
        ), name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_unicast_protocols_reasonable_at_density(sweep, benchmark):
    dense = DENSITIES[-1]
    for name in ("greedy", "moving-zone", "cluster"):
        assert sweep[(name, dense)]["pdr"] >= 0.5, name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_moving_zones_outlive_position_clusters(record_table, benchmark):
    """MoZo's formation claim: co-movement zones persist on a highway
    where position-only clusters shatter."""
    world, model, _highway = highway_world(777, vehicle_count=40, length_m=3000)
    mobility_aware = MobilityClustering(
        degree_weight=0.2, speed_weight=0.4, heading_weight=0.4, min_alignment=0.7
    )
    position_only = MobilityClustering(
        degree_weight=1.0, speed_weight=0.0, heading_weight=0.0
    )
    histories = {"moving-zone": [], "position-only": []}
    snapshots = {"moving-zone": None, "position-only": None}
    interval_s = 2.0
    for _step in range(30):
        world.run_for(interval_s)
        for label, algorithm in (
            ("moving-zone", mobility_aware),
            ("position-only", position_only),
        ):
            previous = snapshots[label]
            if previous is None:
                current = algorithm.form(model.vehicles, 300.0, world.now)
            else:
                current = algorithm.maintain(previous, model.vehicles, 300.0, world.now)
            snapshots[label] = current
            histories[label].append(current)
    lifetimes = {
        label: head_lifetimes(history, interval_s)
        for label, history in histories.items()
    }
    means = {
        label: sum(values) / len(values) if values else 0.0
        for label, values in lifetimes.items()
    }
    table = render_table(
        ["clustering", "mean head lifetime (s)", "heads observed"],
        [
            ["moving-zone (speed+heading)", means["moving-zone"], len(lifetimes["moving-zone"])],
            ["position-only", means["position-only"], len(lifetimes["position-only"])],
        ],
        title="E7b — cluster-head lifetime on a highway (60 s window)",
    )
    record_table("E7_routing", table)
    assert means["moving-zone"] > means["position-only"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_passive_clustering_is_cheaper(record_table, benchmark):
    """Zhang et al. [46]: passive clustering reduces formation cost."""
    world, model, _highway = highway_world(778, vehicle_count=40, length_m=3000)
    active = MobilityClustering()
    passive = PassiveMultihopClustering(n_hops=2)
    active_result = active.form(model.vehicles, 300.0)
    passive_result = passive.form(model.vehicles, 300.0)
    table = render_table(
        ["algorithm", "control messages", "clusters", "mean size"],
        [
            ["active (advertise+join)", active_result.control_messages,
             len(active_result.clusters), active_result.mean_size],
            ["passive multi-hop", passive_result.control_messages,
             len(passive_result.clusters), passive_result.mean_size],
        ],
        title="E7c — cluster formation cost, 40 vehicles",
    )
    record_table("E7_routing", table)
    assert passive_result.control_messages <= active_result.control_messages
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_carry_forward_in_sparse_traffic(record_table, benchmark):
    """E7f — store-carry-forward closes the sparse-network gap.

    In the 15-vehicle scene where every unicast protocol dies at
    partitions, mobility-assisted carrying recovers deliveries at the
    price of seconds-class latency (messages travel at vehicle speed
    across the gaps) — the Sun et al. [36] bus-routing insight.
    """
    from repro.net.routing import CarryForwardRouting

    sparse = DENSITIES[0]
    greedy = _run_routing(GreedyGeographicRouting, sparse, seed=700 + sparse)
    carry = _run_routing(
        lambda: CarryForwardRouting(hold_retry_interval_s=1.0, max_hold_s=45.0),
        sparse,
        seed=700 + sparse,
    )
    table = render_table(
        ["protocol", "PDR", "latency (ms)", "tx per delivery"],
        [
            ["greedy", greedy["pdr"], greedy["latency_ms"], greedy["overhead"]],
            ["carry-forward", carry["pdr"], carry["latency_ms"], carry["overhead"]],
        ],
        title=f"E7f — sparse traffic ({sparse} vehicles): carrying vs dropping",
    )
    record_table("E7_routing", table)
    assert carry["pdr"] > greedy["pdr"]
    assert carry["latency_ms"] > greedy["latency_ms"]  # carried at vehicle speed
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_grid_routing(record_table, benchmark):
    """E7d — the urban counterpart: routing on a Manhattan grid."""
    from helpers import grid_world

    rows = []
    for name, factory in (("greedy", GreedyGeographicRouting), ("epidemic", EpidemicRouting)):
        world, model, _grid = grid_world(781, vehicle_count=40, blocks=3, block_size_m=250)
        from helpers import attach_radio_stack

        channel, nodes, _services = attach_radio_stack(world, model, with_beacons=False)
        harness = RoutingHarness(world, channel, factory(), nodes)
        harness.prepare(model.vehicles)
        rng = world.rng.fork("grid-pairs")
        for _index in range(20):
            src = rng.choice(nodes)
            dst = rng.choice([n for n in nodes if n is not src])
            harness.send(src.node_id, dst.node_id)
            world.run_for(0.5)
        world.run_for(5.0)
        rows.append([name, harness.stats.pdr, harness.stats.mean_hops, harness.stats.total_transmissions])
    table = render_table(
        ["protocol", "PDR", "mean hops", "transmissions"],
        rows,
        title="E7d — routing on a 3x3 Manhattan grid (40 vehicles)",
    )
    record_table("E7_routing", table)
    by_name = {row[0]: row for row in rows}
    assert by_name["epidemic"][1] >= by_name["greedy"][1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_connectivity_vs_density(record_table, benchmark):
    """E7e — radio-topology connectivity as density grows (networkx)."""
    from repro.analysis import topology_stats

    rows = []
    for count in (10, 25, 60):
        world, model, _highway = highway_world(782, vehicle_count=count, length_m=2500)
        stats = topology_stats(model.vehicles, range_m=300.0)
        rows.append(
            [
                count,
                stats.components,
                stats.giant_fraction,
                stats.giant_diameter_hops,
                len(stats.articulation_points),
            ]
        )
    table = render_table(
        ["vehicles", "components", "giant fraction", "giant diameter (hops)", "articulation pts"],
        rows,
        title="E7e — connectivity vs density on a 2.5 km highway",
    )
    record_table("E7_routing", table)
    fractions = [row[2] for row in rows]
    assert fractions[-1] >= fractions[0]
    assert fractions[-1] > 0.9  # dense scene is (near-)connected
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_cluster_formation(benchmark):
    """Host-time micro-benchmark: one clustering pass over 40 vehicles."""
    world, model, _highway = highway_world(779, vehicle_count=40)
    algorithm = MobilityClustering()
    result = benchmark(lambda: algorithm.form(model.vehicles, 300.0))
    assert result.clusters
