"""Experiment E16 — overload resilience: goodput vs offered load.

Open-loop traffic does not slow down when the serving system does, so
an unprotected cloud pushed past its capacity enters congestion
collapse: queues grow without bound, every task waits longer than its
deadline, and *goodput* (deadline-met completions per second) falls
even as throughput stays busy — the fleet burns its MIPS on work that
is already stale.  E16 measures that collapse and the protected stack
that prevents it.

* **E16a** — a stationary 8-member cloud swept across offered loads of
  {0.5, 1.0, 1.5, 2.0}x its compute capacity, once behind the
  protected gateway (bounded queue, deadline-feasibility admission,
  queue-delay + deadline-lapse shedding, circuit breakers, hedging)
  and once behind the unprotected pass-through.  Acceptance: at 2x the
  protected stack sustains >=90% of its peak goodput while the
  unprotected baseline degrades below 50% of its own peak.
* **E16b** — the same 2x duel on the dynamic (elected-captain) and
  infrastructure (RSU-anchored) Fig. 4 architectures; protection must
  win on both.
* **E16c** — determinism and ledger audit: a repeated seeded run is
  byte-identical, and every non-completed request carries a typed
  reason that reconciles with the counters.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    CheckpointHandoverPolicy,
    DynamicVCloud,
    InfrastructureVCloud,
    ResourceOffer,
    VehicularCloud,
)
from repro.core.tasks import reset_task_ids
from repro.geometry import Vec2
from repro.infra import deploy_rsus_on_highway
from repro.mobility import Highway, HighwayModel, StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.net import WirelessChannel
from repro.serve import (
    CircuitBreakerBoard,
    CompositeAdmission,
    DeadlineFeasibilityAdmission,
    DeadlineLapseShedder,
    HedgePolicy,
    PoissonArrivals,
    QueueDelayShedder,
    ServiceGateway,
    TenantFairShareAdmission,
    TenantSpec,
    WorkloadGenerator,
)
from repro.sim import ScenarioConfig, World

SEED = 42
HORIZON_S = 120.0
DRAIN_S = 30.0
LOADS = (0.5, 1.0, 1.5, 2.0)
#: Blended mean task size: 70% bulk @200 MI + 30% interactive @150 MI.
MEAN_WORK_MI = 185.0


def protected_gateway(world: World, cloud: VehicularCloud) -> ServiceGateway:
    return ServiceGateway(
        world,
        cloud,
        name="e16",
        queue_capacity=32,
        admission=CompositeAdmission([
            DeadlineFeasibilityAdmission(),
            TenantFairShareAdmission(share=0.7),
        ]),
        shedders=[DeadlineLapseShedder(), QueueDelayShedder(max_delay_s=4.0)],
        breakers=CircuitBreakerBoard(world, "e16"),
        hedging=HedgePolicy(),
    )


def start_traffic(world: World, gateway: ServiceGateway, rate_per_s: float) -> None:
    tenants = [
        TenantSpec(
            name="bulk",
            arrivals=PoissonArrivals(rate_per_s * 0.7),
            work_mi_range=(150.0, 250.0),
            deadline_s=8.0,
            priority=2,
        ),
        TenantSpec(
            name="interactive",
            arrivals=PoissonArrivals(rate_per_s * 0.3),
            work_mi_range=(100.0, 200.0),
            deadline_s=6.0,
            priority=1,
        ),
    ]
    WorkloadGenerator(world, gateway, tenants, horizon_s=HORIZON_S).start()


def measure(world: World, gateway: ServiceGateway) -> dict:
    world.run_until(HORIZON_S + DRAIN_S)
    stats = gateway.stats
    return {
        "offered": stats.offered,
        "goodput": stats.slo_hits / HORIZON_S,
        "p99_s": stats.p99_latency_s(),
        "slo_miss_rate": stats.slo_miss_rate,
        "rejected": stats.rejected,
        "shed": stats.shed,
        "hedges": stats.hedges_launched,
        "stats": stats,
        "gateway": gateway,
        "world": world,
    }


def run_stationary(load: float, protected: bool, seed: int = SEED) -> dict:
    reset_task_ids()
    reset_vehicle_ids()
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(8)]
    )
    vehicles = model.populate(8)
    cloud = VehicularCloud(
        world, "e16-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    gateway = (
        protected_gateway(world, cloud)
        if protected
        else ServiceGateway.unprotected(world, cloud, name="e16")
    )
    # 7 dispatch workers x 100 MIPS against ~200 MI bulk tasks: 3.5/s.
    start_traffic(world, gateway, rate_per_s=load * 3.5)
    return measure(world, gateway)


def run_mobile(architecture: str, load: float, seed: int = SEED, protected: bool = True) -> dict:
    reset_task_ids()
    reset_vehicle_ids()
    if architecture == "dynamic":
        world = World(ScenarioConfig(seed=seed, vehicle_count=12))
        model = HighwayModel(world, Highway(length_m=3000.0))
        model.populate(12)
        model.start()
        arch = DynamicVCloud(world, model)
    else:
        world = World(ScenarioConfig(seed=seed, vehicle_count=14))
        highway = Highway(length_m=3000.0)
        model = HighwayModel(world, highway)
        model.populate(14)
        model.start()
        channel = WirelessChannel(world)
        rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500.0)
        arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    cloud = arch.cloud
    gateway = (
        protected_gateway(world, cloud)
        if protected
        else ServiceGateway.unprotected(world, cloud, name="e16")
    )
    # Let membership form, then size the open-loop rate off the actual
    # admitted capacity (vehicle MIPS are heterogeneous here).
    world.run_until(5.0)
    capacity_tasks_s = max(0.5, gateway.aggregate_capacity_mips() / MEAN_WORK_MI)
    start_traffic(world, gateway, rate_per_s=load * capacity_tasks_s)
    return measure(world, gateway)


# ---------------------------------------------------------------------------
# E16a — stationary load sweep, protected vs unprotected
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def stationary_sweep():
    return {
        mode: [run_stationary(load, protected=(mode == "protected")) for load in LOADS]
        for mode in ("protected", "unprotected")
    }


def test_bench_stationary_sweep_table(
    stationary_sweep, record_table, record_run_json, benchmark
):
    rows = []
    for mode, runs in stationary_sweep.items():
        for load, run in zip(LOADS, runs):
            record_run_json(
                "E16_overload",
                f"stationary/{mode}/{load:.1f}x",
                {
                    "offered": run["offered"],
                    "goodput": run["goodput"],
                    "p99_s": run["p99_s"],
                    "slo_miss_rate": run["slo_miss_rate"],
                    "rejected": run["rejected"],
                    "shed": run["shed"],
                    "hedges": run["hedges"],
                },
                seed=SEED,
                config={"mode": mode, "load": load},
            )
            rows.append(
                [
                    mode,
                    f"{load:.1f}x",
                    run["offered"],
                    f"{run['goodput']:.3f}",
                    f"{run['p99_s']:.2f}",
                    f"{run['slo_miss_rate']:.3f}",
                    run["rejected"],
                    run["shed"],
                    run["hedges"],
                ]
            )
    table = render_table(
        [
            "gateway",
            "offered load",
            "requests",
            "goodput (SLO-met/s)",
            "p99 latency (s)",
            "SLO-miss rate",
            "rejected",
            "shed",
            "hedges",
        ],
        rows,
        title=(
            "E16a — stationary cloud (7 workers x 100 MIPS), open-loop sweep, "
            f"{HORIZON_S:.0f}s horizon, seed {SEED}"
        ),
    )
    record_table("E16_overload", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_protected_sustains_goodput_at_2x(stationary_sweep, benchmark):
    goodputs = [run["goodput"] for run in stationary_sweep["protected"]]
    peak = max(goodputs)
    at_2x = goodputs[LOADS.index(2.0)]
    assert at_2x >= 0.9 * peak, (
        f"protected goodput at 2x ({at_2x:.3f}/s) fell below 90% of peak ({peak:.3f}/s)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_unprotected_collapses_at_2x(stationary_sweep, benchmark):
    goodputs = [run["goodput"] for run in stationary_sweep["unprotected"]]
    peak = max(goodputs)
    at_2x = goodputs[LOADS.index(2.0)]
    assert at_2x < 0.5 * peak, (
        f"unprotected goodput at 2x ({at_2x:.3f}/s) did not collapse below "
        f"50% of peak ({peak:.3f}/s) — open-loop overload is not biting"
    )
    # The collapse is congestion, not idleness: the baseline stays busy.
    run_2x = stationary_sweep["unprotected"][LOADS.index(2.0)]
    assert run_2x["stats"].completed > run_2x["stats"].slo_hits
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overload_machinery_engages(stationary_sweep, benchmark):
    run_2x = stationary_sweep["protected"][LOADS.index(2.0)]
    assert run_2x["shed"] + run_2x["rejected"] > 0
    stats = run_2x["stats"]
    assert sum(stats.shed_reasons.values()) == stats.shed
    assert sum(stats.rejection_reasons.values()) == stats.rejected
    underload = stationary_sweep["protected"][0]
    assert underload["rejected"] + underload["shed"] == 0, (
        "admission control must not reject at 0.5x load"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E16b — the 2x duel on the mobile architectures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mobile_duel():
    return {
        label: {
            "protected": run_mobile(label, 2.0, protected=True),
            "unprotected": run_mobile(label, 2.0, protected=False),
        }
        for label in ("dynamic", "infrastructure")
    }


def test_bench_mobile_duel_table(mobile_duel, record_table, record_run_json, benchmark):
    rows = []
    for label, duel in mobile_duel.items():
        for mode in ("protected", "unprotected"):
            run = duel[mode]
            record_run_json(
                "E16_overload",
                f"mobile/{label}/{mode}",
                {
                    "offered": run["offered"],
                    "goodput": run["goodput"],
                    "p99_s": run["p99_s"],
                    "slo_miss_rate": run["slo_miss_rate"],
                    "rejected_plus_shed": run["rejected"] + run["shed"],
                },
                seed=SEED,
                config={"architecture": label, "mode": mode, "load": 2.0},
            )
            rows.append(
                [
                    label,
                    mode,
                    run["offered"],
                    f"{run['goodput']:.3f}",
                    f"{run['p99_s']:.2f}",
                    f"{run['slo_miss_rate']:.3f}",
                    run["rejected"] + run["shed"],
                ]
            )
    table = render_table(
        [
            "architecture",
            "gateway",
            "requests",
            "goodput (SLO-met/s)",
            "p99 latency (s)",
            "SLO-miss rate",
            "rejected+shed",
        ],
        rows,
        title="E16b — 2x offered load on the mobile Fig. 4 architectures",
    )
    record_table("E16_overload", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_protection_wins_on_mobile_architectures(mobile_duel, benchmark):
    for label, duel in mobile_duel.items():
        protected = duel["protected"]["goodput"]
        unprotected = duel["unprotected"]["goodput"]
        assert protected > unprotected, (
            f"{label}: protected goodput {protected:.3f}/s does not beat "
            f"unprotected {unprotected:.3f}/s at 2x load"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E16c — determinism and the typed-reason ledger
# ---------------------------------------------------------------------------


def test_seeded_overload_run_is_byte_identical(benchmark):
    first = run_stationary(2.0, protected=True, seed=77)
    second = run_stationary(2.0, protected=True, seed=77)
    assert first["world"].metrics.snapshot() == second["world"].metrics.snapshot()
    assert first["offered"] == second["offered"]
    assert first["goodput"] == second["goodput"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_every_non_completion_is_ledgered(stationary_sweep, benchmark):
    run_2x = stationary_sweep["protected"][LOADS.index(2.0)]
    stats = run_2x["stats"]
    gateway = run_2x["gateway"]
    world = run_2x["world"]
    acc = gateway.accounting()
    assert acc["offered"] == acc["admitted"] + acc["rejected"]
    assert acc["admitted"] == (
        acc["completed"] + acc["failed"] + acc["shed"] + acc["queued"] + acc["inflight"]
    )
    assert acc["queued"] == 0 and acc["inflight"] == 0, "drain window too short"
    # Typed reasons reconcile with the metrics registry, counter for counter.
    for reason, count in stats.shed_reasons.items():
        assert world.metrics.counter(f"serve/e16/shed/{reason}") == float(count)
    for reason, count in stats.rejection_reasons.items():
        assert world.metrics.counter(f"serve/e16/rejected/{reason}") == float(count)
    # Hedge losers show up in the cloud's failure ledger, not as errors.
    cloud_reasons = run_2x["gateway"].cloud.stats.failure_reasons
    assert cloud_reasons.get("hedge_cancelled", 0) == stats.hedges_cancelled
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
