"""Experiment E3 — paper Fig. 5 + §IV.B: authentication protocol families.

Measures, for the pseudonym-based, group-based, hybrid and randomized
protocols: handshake latency (with an empty and with a large CRL),
handshake bytes, per-message overhead, infrastructure dependence
(does the handshake survive with no RSU/TA reachable?), and privacy
(tracking-adversary linking of rotating on-air identities).

Expected shape (Fig. 5 annotations):
* pseudonym — infrastructure-light handshakes, but "high message
  authentication overhead" (largest per-message bytes; CRL growth
  inflates latency);
* group — heaviest crypto, and "heavily rely on some sort of
  infrastructure such as road side units" (fails with stale keys and no
  RSU);
* hybrid — between the two (fast path after first contact, no CRL);
* randomized — cheapest and fully infrastructure-free in steady state.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.attacks import TrackingAdversary
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.security import TrustedAuthority
from repro.security.protocols import (
    GroupAuthProtocol,
    HybridAuthProtocol,
    PseudonymAuthProtocol,
    RandomizedAuthProtocol,
)
from repro.sim import ChannelConfig, ScenarioConfig, World


VEHICLES = 30
HANDSHAKES = 60
CRL_SIZE = 20_000

PROTOCOLS = {
    "pseudonym": PseudonymAuthProtocol,
    "group": GroupAuthProtocol,
    "hybrid": HybridAuthProtocol,
    "randomized": RandomizedAuthProtocol,
}


def _measure_protocol(name: str, protocol_cls):
    authority = TrustedAuthority()
    protocol = protocol_cls(authority)
    ids = [f"{name}-car-{i}" for i in range(VEHICLES)]
    for real_id in ids:
        protocol.enroll(real_id, now=0.0)

    def run_handshakes(now0: float):
        latencies, total_bytes, infra_msgs, failures = [], 0, 0, 0
        for index in range(HANDSHAKES):
            a = ids[index % VEHICLES]
            b = ids[(index * 7 + 1) % VEHICLES]
            if a == b:
                b = ids[(index * 7 + 2) % VEHICLES]
            result = protocol.mutual_authenticate(a, b, now=now0 + index * 0.1)
            if result.success:
                latencies.append(result.latency_s)
                total_bytes += result.bytes_on_air
                infra_msgs += result.infra_messages
            else:
                failures += 1
        return latencies, total_bytes, infra_msgs, failures

    latencies, handshake_bytes, infra_msgs, failures = run_handshakes(1.0)
    # CRL pressure: the pseudonym family's Achilles heel.
    for index in range(CRL_SIZE):
        authority.crl.revoke(f"revoked-{index}")
    crl_latencies, _b, _i, _f = run_handshakes(100.0)

    # Infrastructure blackout: stale state, no RSU/TA reachable.
    blackout_result = protocol.mutual_authenticate(
        ids[0], ids[1], now=10_000.0, infra_available=False
    )

    message_cost = protocol.message_auth_cost()
    return {
        "handshake_ms": 1000 * sum(latencies) / max(1, len(latencies)),
        "handshake_ms_large_crl": 1000 * sum(crl_latencies) / max(1, len(crl_latencies)),
        "handshake_bytes": handshake_bytes / max(1, len(latencies)),
        "infra_msgs": infra_msgs,
        "failures": failures,
        "per_msg_overhead_bytes": message_cost.overhead_bytes,
        "per_msg_verify_ms": 1000 * message_cost.verify_cost_s,
        "survives_blackout": blackout_result.success,
    }


def _measure_tracking(rotation_interval_s: float, seed: int = 301) -> float:
    """Tracking-adversary full-trajectory success against rotating ids."""
    world = World(
        ScenarioConfig(
            seed=seed,
            channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
        )
    )
    from repro.mobility import Highway, HighwayModel

    model = HighwayModel(world, Highway(length_m=2000))
    vehicles = model.populate(10)
    model.start()
    channel = WirelessChannel(world)
    authority = TrustedAuthority()
    protocol = PseudonymAuthProtocol(
        authority, pool_size=40, change_interval_s=rotation_interval_s
    )
    owner_of = {}
    services = []
    for vehicle in vehicles:
        protocol.enroll(vehicle.vehicle_id)
        node = VehicleNode(world, channel, vehicle)
        provider = protocol.identity_provider(vehicle.vehicle_id)
        services.append(BeaconService(world, node, identity_provider=provider))
    tracker = TrackingAdversary(channel, gate_m=40.0)
    for service in services:
        service.start()
    world.run_for(120.0)
    for vehicle in vehicles:
        pool = protocol._pools[vehicle.vehicle_id]
        for pseudonym in pool.pseudonyms:
            owner_of[pseudonym.pseudonym_id] = vehicle.vehicle_id
    return tracker.tracked_fraction(owner_of)


@pytest.fixture(scope="module")
def results():
    return {name: _measure_protocol(name, cls) for name, cls in PROTOCOLS.items()}


def test_bench_fig5_table(results, record_table, benchmark):
    rows = []
    for name in PROTOCOLS:
        row = results[name]
        rows.append(
            [
                name,
                row["handshake_ms"],
                row["handshake_ms_large_crl"],
                row["handshake_bytes"],
                row["per_msg_overhead_bytes"],
                row["per_msg_verify_ms"],
                row["survives_blackout"],
            ]
        )
    table = render_table(
        [
            "protocol",
            "handshake (ms)",
            f"handshake, {CRL_SIZE//1000}k CRL (ms)",
            "handshake bytes",
            "per-msg overhead (B)",
            "per-msg verify (ms)",
            "works w/o infra",
        ],
        rows,
        title="E3 / Fig.5 — authentication protocol families",
    )
    record_table("E3_fig5_authentication", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_pseudonym_has_highest_message_overhead(results, benchmark):
    """Fig. 5: 'high message authentication overhead'."""
    pseudonym = results["pseudonym"]["per_msg_overhead_bytes"]
    assert pseudonym >= max(
        results[name]["per_msg_overhead_bytes"] for name in ("hybrid", "randomized")
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_crl_growth_penalizes_pseudonym_only(results, benchmark):
    """'The checking process of the huge pool of revoked certificates is time-consuming.'"""
    pseudonym_slowdown = (
        results["pseudonym"]["handshake_ms_large_crl"] / results["pseudonym"]["handshake_ms"]
    )
    hybrid_slowdown = (
        results["hybrid"]["handshake_ms_large_crl"]
        / max(1e-9, results["hybrid"]["handshake_ms"])
    )
    assert pseudonym_slowdown > 2.0
    assert hybrid_slowdown < 1.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_group_protocol_needs_infrastructure(results, benchmark):
    """Fig. 5: group-based protocols 'heavily rely on ... road side units'."""
    assert not results["group"]["survives_blackout"]
    assert results["randomized"]["survives_blackout"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_group_crypto_is_heaviest(results, benchmark):
    assert results["group"]["handshake_ms"] > results["pseudonym"]["handshake_ms"]
    assert results["group"]["per_msg_verify_ms"] > results["randomized"]["per_msg_verify_ms"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_randomized_is_cheapest(results, benchmark):
    """Kang et al. [16]: no RSU in the authentication phase, lowest cost."""
    cheapest = min(results, key=lambda name: results[name]["handshake_ms"])
    assert cheapest == "randomized"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_pseudonym_rotation_defeats_tracking(record_table, benchmark):
    """Fast rotation lowers full-trajectory tracking (privacy axis)."""
    static_like = _measure_tracking(rotation_interval_s=10_000.0)
    rotating = _measure_tracking(rotation_interval_s=5.0)
    table = render_table(
        ["identity policy", "fully tracked fraction"],
        [["static pseudonym", static_like], ["rotate every 5 s", rotating]],
        title="E3b — tracking adversary vs pseudonym rotation",
    )
    record_table("E3_fig5_authentication", table)
    assert rotating < static_like
    assert static_like == 1.0  # never-rotating identities are trivially tracked
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_handshake_throughput(benchmark):
    """Host-time micro-benchmark: randomized handshakes per second."""
    authority = TrustedAuthority()
    protocol = RandomizedAuthProtocol(authority)
    protocol.enroll("a")
    protocol.enroll("b")
    counter = iter(range(10**9))

    def one_handshake():
        return protocol.mutual_authenticate("a", "b", now=float(next(counter)))

    result = benchmark(one_handshake)
    assert result.success
