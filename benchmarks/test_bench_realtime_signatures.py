"""Experiment E3c — §IV.D real-time authentication techniques.

The survey's §IV.D highlights two latency techniques for time-critical
message authentication:

* SCRA (Yavuz et al. [44]) — shift signing cost to the key-generation
  phase; measured here as online-signing latency vs plain ECDSA.
* Batch verification (Limbasiya & Das [21]) — verify *n* received
  messages in one aggregate check; measured as verify cost per message
  vs batch size, plus the bisection penalty when a batch is poisoned.

Expected shape: online signing drops by >10x with precomputation; batch
verification amortizes toward ``per_item_fraction`` of a full verify;
poisoned batches cost more than clean ones but still beat sequential
when contamination is sparse.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.security import BatchItem, BatchVerifier, PrecomputedSigner
from repro.security.crypto import KeyPair, Signature, SignatureScheme


def build_batch(count: int, tampered=()):
    scheme = SignatureScheme()
    items = []
    for index in range(count):
        keypair = KeyPair.generate(f"b{index}")
        data = f"beacon-{index}".encode()
        signature = scheme.sign(keypair, data).value
        if index in tampered:
            signature = Signature(keypair.public_id, "f" * 64)
        items.append(BatchItem(keypair.public_id, data, signature))
    return scheme, items


@pytest.fixture(scope="module")
def batch_sweep():
    rows = {}
    for size in (5, 20, 80):
        scheme, items = build_batch(size)
        verifier = BatchVerifier(scheme)
        batch = verifier.verify_batch(items)
        rows[size] = {
            "sequential_ms": verifier.sequential_cost(size) * 1000,
            "batch_ms": batch.cost_s * 1000,
            "per_msg_us": batch.cost_s / size * 1e6,
        }
    return rows


def test_bench_batch_table(batch_sweep, record_table, benchmark):
    table = render_table(
        ["batch size", "sequential (ms)", "batch (ms)", "per-message (us)"],
        [
            [size, row["sequential_ms"], row["batch_ms"], row["per_msg_us"]]
            for size, row in sorted(batch_sweep.items())
        ],
        title="E3c — batch verification vs sequential",
    )
    record_table("E3_fig5_authentication", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batch_beats_sequential_at_scale(batch_sweep, benchmark):
    for size, row in batch_sweep.items():
        if size >= 20:
            assert row["batch_ms"] < row["sequential_ms"] / 4
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_per_message_cost_amortizes(batch_sweep, benchmark):
    costs = [batch_sweep[size]["per_msg_us"] for size in sorted(batch_sweep)]
    assert costs == sorted(costs, reverse=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_poisoned_batch_isolation_cost(record_table, benchmark):
    rows = []
    for bad_count in (0, 1, 4):
        scheme, items = build_batch(32, tampered=set(range(bad_count)))
        verifier = BatchVerifier(scheme)
        bad, cost = verifier.verify_and_isolate(items)
        rows.append(
            [bad_count, len(bad), cost * 1000, verifier.sequential_cost(32) * 1000]
        )
    table = render_table(
        ["bad sigs in 32", "isolated", "bisect cost (ms)", "sequential (ms)"],
        rows,
        title="E3c2 — bisection isolation of poisoned batches",
    )
    record_table("E3_fig5_authentication", table)
    # Sparse contamination: bisection still beats one-by-one.
    assert rows[1][2] < rows[1][3]
    # Everything found.
    assert rows[2][1] == 4
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_scra_online_signing(record_table, benchmark):
    keypair = KeyPair.generate("scra-bench")
    scheme = SignatureScheme()
    signer = PrecomputedSigner(keypair, scheme)
    precompute = signer.precompute(100)
    online = signer.sign(b"emergency brake warning")
    plain = scheme.sign(keypair, b"emergency brake warning")
    table = render_table(
        ["signer", "online sign (us)", "offline precompute/msg (us)"],
        [
            ["plain ECDSA", plain.cost_s * 1e6, 0.0],
            [
                "SCRA precomputed",
                online.cost_s * 1e6,
                precompute.cost_s / 100 * 1e6,
            ],
        ],
        title="E3c3 — SCRA: signing cost moved offline",
    )
    record_table("E3_fig5_authentication", table)
    assert online.cost_s < plain.cost_s / 10
    assert scheme.verify(keypair.public_id, b"emergency brake warning", online.value).value
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_online_sign_rate(benchmark):
    """Host-time micro-benchmark: SCRA online signings per second."""
    signer = PrecomputedSigner(KeyPair.generate())
    signer.precompute(30_000)

    def sign_once():
        return signer.sign(b"msg")

    result = benchmark.pedantic(sign_once, rounds=200, iterations=20)
    assert result.value is not None
