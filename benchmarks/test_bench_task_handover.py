"""Experiment E8 — §III.A: task allocation and handover under churn.

Two sub-experiments on a dynamic v-cloud with member churn:

* **Handover vs. drop** — the paper: "simply dropping unfinished tasks
  will waste lots of computing resources and cause high network
  overhead ... a more interesting problem would be how the vehicle hand
  over the unfinished, encrypted task."  We run the same long-task
  stream under churn with the drop policy and the checkpoint-handover
  policy and compare wasted work and completion latency.
* **Dwell-estimation error** — "If under estimated, the computing
  resources will be under-utilized.  If over estimated, the vehicle may
  not be able to finish the task before leaving."  We sweep the dwell
  estimator's bias under a dwell-aware allocator and measure disruption.

Expected shape: handover wastes (far) less work than dropping; chronic
over-estimation causes more mid-task departures than under-estimation,
while under-estimation leaves capacity idle (fewer eligible workers).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    CheckpointHandoverPolicy,
    DropPolicy,
    DwellAwareAllocator,
    ResourceOffer,
    Task,
    TaskState,
    VehicularCloud,
)
from repro.mobility import DwellEstimator
from repro.sim import ScenarioConfig, World
from repro.mobility import StationaryModel
from repro.geometry import Vec2

TASKS = 20
WORK_MI = 3000.0  # 30 s on a 100-MIPS worker: long enough to be interrupted
CHURN_INTERVAL_S = 8.0
MEMBERS = 10


def _run_churn_scenario(policy, seed: int):
    """A cloud whose members depart on a fixed schedule and are replaced."""
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0) for i in range(MEMBERS * 6)]
    )
    vehicles = model.populate(MEMBERS * 6)
    cloud = VehicularCloud(world, "churn-vc", handover_policy=policy)
    for vehicle in vehicles[:MEMBERS]:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6))
    rng = world.rng.fork("churn")
    replacements = iter(vehicles[MEMBERS:])

    def churn():
        members = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
        if not members:
            return
        victim = rng.choice(members)
        cloud.member_leave(victim)
        try:
            replacement = next(replacements)
        except StopIteration:
            return
        cloud.admit(
            replacement,
            offer=ResourceOffer(replacement.vehicle_id, 100.0, 10**9, 1e6),
        )

    world.engine.call_every(CHURN_INTERVAL_S, churn, label="churn")
    records = []
    for index in range(TASKS):
        world.engine.schedule_at(
            index * 2.0,
            lambda: records.append(cloud.submit(Task(work_mi=WORK_MI))),
            label="task",
        )
    world.run_for(TASKS * 2.0 + 300.0)
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    latencies = [r.completion_latency_s for r in completed]
    return {
        "completion_rate": len(completed) / TASKS,
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else float("inf"),
        "wasted_work_mi": cloud.stats.wasted_work_mi,
        "handovers": cloud.stats.handovers,
        "drops": cloud.stats.drops,
    }


@pytest.fixture(scope="module")
def handover_results():
    return {
        "drop": _run_churn_scenario(DropPolicy(), seed=801),
        "checkpoint-handover": _run_churn_scenario(CheckpointHandoverPolicy(), seed=801),
    }


def test_bench_handover_table(handover_results, record_table, benchmark):
    rows = []
    for label, row in handover_results.items():
        rows.append(
            [
                label,
                row["completion_rate"],
                row["mean_latency_s"],
                row["wasted_work_mi"],
                row["handovers"],
                row["drops"],
            ]
        )
    table = render_table(
        ["policy", "completion", "mean latency (s)", "wasted work (MI)", "handovers", "drops"],
        rows,
        title="E8 — drop vs checkpoint-handover under churn",
    )
    record_table("E8_task_handover", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_handover_wastes_less_work(handover_results, benchmark):
    assert (
        handover_results["checkpoint-handover"]["wasted_work_mi"]
        < handover_results["drop"]["wasted_work_mi"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_handover_completes_faster(handover_results, benchmark):
    assert (
        handover_results["checkpoint-handover"]["mean_latency_s"]
        <= handover_results["drop"]["mean_latency_s"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_both_policies_eventually_complete(handover_results, benchmark):
    for label, row in handover_results.items():
        assert row["completion_rate"] >= 0.9, label
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Dwell-estimation bias sweep
# ---------------------------------------------------------------------------


def _run_dwell_bias(bias: float, seed: int = 802):
    """Dwell-aware allocation with a biased estimator, under real mobility."""
    from helpers import highway_world

    world, model, _highway = highway_world(seed, vehicle_count=30, length_m=3000)
    from repro.core import DynamicVCloud

    estimator = DwellEstimator(world.rng.fork("bias"), bias=bias, noise_std_fraction=0.1)
    arch = DynamicVCloud(world, model, dwell_estimator=estimator)
    arch.cloud.allocator = DwellAwareAllocator(safety_factor=1.5)
    arch.start()
    records = []
    # Task runtime (~10-15 s) sits between the true dwell of opposing
    # traffic (~10-20 s of shared range) and twice that, so the safety
    # gate's verdict flips with the estimator's bias.
    for index in range(20):
        world.engine.schedule_at(
            index * 2.0,
            lambda: records.append(arch.cloud.submit(Task(work_mi=20_000.0))),
            label="task",
        )
    world.run_for(250.0)
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    interruptions = arch.cloud.stats.handovers + arch.cloud.stats.drops
    return {
        "completion_rate": len(completed) / max(1, len(records)),
        "interruptions": interruptions,
    }


@pytest.fixture(scope="module")
def bias_sweep():
    return {bias: _run_dwell_bias(bias) for bias in (0.5, 1.0, 2.0)}


def test_bench_dwell_bias_table(bias_sweep, record_table, benchmark):
    table = render_table(
        ["dwell bias", "completion", "mid-task interruptions"],
        [
            [f"x{bias}", row["completion_rate"], row["interruptions"]]
            for bias, row in sorted(bias_sweep.items())
        ],
        title="E8b — dwell-estimation bias vs task disruption",
    )
    record_table("E8_task_handover", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overestimation_causes_more_interruptions(bias_sweep, benchmark):
    """Over-estimated dwell strands tasks on departing workers."""
    assert bias_sweep[2.0]["interruptions"] >= bias_sweep[0.5]["interruptions"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_unbiased_estimation_completes_most(bias_sweep, benchmark):
    assert bias_sweep[1.0]["completion_rate"] >= 0.7
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_dwell_bias_allocation_quality(record_table, benchmark):
    """E8c — the §III.A claim isolated from churn noise.

    A controlled candidate pool: half "co-movers" (true dwell 300 s) and
    half "passers-by" (true dwell 12 s).  The task needs 15 s.  The
    dwell-aware allocator sees estimates scaled by the bias:

    * under-estimation (x0.5) rejects even co-movers -> idle capacity;
    * over-estimation (x2.0) accepts passers-by -> doomed assignments.
    """
    from repro.core import DwellAwareAllocator, WorkerCandidate

    allocator = DwellAwareAllocator(safety_factor=1.5, fallback_to_fastest=False)
    task = Task(work_mi=15_000)  # 15 s on a 1000-MIPS worker
    rows = []
    for bias in (0.5, 1.0, 2.0):
        doomed = 0
        idle = 0
        assigned = 0
        for trial in range(60):
            # Alternate which kind tops the candidate list.
            candidates = [
                WorkerCandidate(
                    f"comover-{trial}", free_mips=1000, estimated_dwell_s=300.0 * bias
                ),
                WorkerCandidate(
                    f"passerby-{trial}", free_mips=1200, estimated_dwell_s=12.0 * bias
                ),
            ]
            choice = allocator.choose(task, candidates)
            if choice is None:
                idle += 1
                continue
            assigned += 1
            true_dwell = 300.0 if choice.vehicle_id.startswith("comover") else 12.0
            if true_dwell < task.runtime_on(
                1000 if choice.vehicle_id.startswith("comover") else 1200
            ):
                doomed += 1
        rows.append([f"x{bias}", assigned, idle, doomed])
    table = render_table(
        ["dwell bias", "assigned (of 60)", "left idle", "doomed assignments"],
        rows,
        title="E8c — dwell bias: under-utilization vs stranded tasks (controlled)",
    )
    record_table("E8_task_handover", table)
    by_bias = {row[0]: row for row in rows}
    # Over-estimation strands work on passers-by; under-estimation never does
    # here but wastes nothing either (the co-mover still passes the gate at
    # x0.5: 150 s > 22.5 s). Push the under case to show idling:
    assert by_bias["x2.0"][3] > by_bias["x1.0"][3] == by_bias["x0.5"][3] == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_underestimation_idles_capacity(record_table, benchmark):
    """E8c2 — severe under-estimation refuses workers that would finish."""
    from repro.core import DwellAwareAllocator, WorkerCandidate

    allocator = DwellAwareAllocator(safety_factor=1.5, fallback_to_fastest=False)
    task = Task(work_mi=15_000)
    rows = []
    for bias in (0.05, 0.5, 1.0):
        candidates = [
            WorkerCandidate("comover", free_mips=1000, estimated_dwell_s=300.0 * bias)
        ]
        choice = allocator.choose(task, candidates)
        rows.append([f"x{bias}", choice is not None])
    table = render_table(
        ["dwell bias", "capable worker accepted"],
        rows,
        title="E8c2 — chronic under-estimation refuses capable workers",
    )
    record_table("E8_task_handover", table)
    by_bias = {row[0]: row[1] for row in rows}
    assert not by_bias["x0.05"]  # 15 s estimate < 22.5 s requirement: idle
    assert by_bias["x1.0"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_churn_scenario(benchmark):
    """End-to-end timing of one churn scenario run."""
    result = benchmark.pedantic(
        lambda: _run_churn_scenario(CheckpointHandoverPolicy(), seed=803),
        rounds=1,
        iterations=1,
    )
    assert result["completion_rate"] > 0.5
