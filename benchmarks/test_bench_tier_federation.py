"""Experiment E20 — tiered federation: speculation vs a dying backhaul.

The tiered offloader's pitch (ROADMAP item 3): a deadline-critical task
should never have to choose between an under-provisioned local v-cloud
and a fast datacenter behind an unreliable WAN — it races both and
takes the first acceptable result.  This experiment quantifies that on
a deliberately uncomfortable substrate:

* the **local** tier is over-committed (offered load ~1.3x its service
  capacity), so pure local execution drowns in queueing delay;
* the **remote** tier is effectively infinite compute behind a
  :class:`~repro.tier.backhaul.BackhaulLink` swept from clean to dying
  (latency x Bernoulli loss x scheduled outage windows, the outages
  driven by :class:`~repro.faults.plan.FaultPlan` partitions through
  :class:`~repro.faults.backhaul.BackhaulFaultDriver`).

* **E20a** — deadline-hit-rate sweep: ``local_only`` / ``remote_only``
  / ``speculate`` across the backhaul profiles.  Acceptance: wherever
  both single-tier baselines drop below 80%, tiered speculation stays
  at or above 95% — the WAN dying costs latency, never deadline safety.
* **E20b** — dependability: byte-identical seeded replays and zero
  :class:`~repro.chaos.invariants.TierConservation` /
  :class:`~repro.chaos.invariants.TaskConservation` violations while
  the outage schedule is live.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.chaos.invariants import InvariantSuite, TaskConservation, TierConservation
from repro.core import ResourceOffer, Task, VehicularCloud
from repro.core.tasks import reset_task_ids
from repro.faults.backhaul import BackhaulFaultDriver
from repro.faults.plan import FaultPlan
from repro.geometry import Vec2
from repro.infra.central_cloud import CentralCloud
from repro.mobility import StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.sim import ScenarioConfig, World
from repro.tier import (
    BackhaulLink,
    CentralCloudTier,
    TieredOffloader,
    TierTopology,
    VCloudTier,
)

# Local tier: 1 coordinator + 3 workers at 100 MIPS.  600 MI tasks run
# 6s each, arriving every 1.5s => offered load ~1.33x the 0.5 task/s
# local service capacity.  Queueing alone sinks the local-only baseline.
MEMBERS = 4
WORKER_MIPS = 100.0
CENTRAL_MIPS = 50_000.0

WORK_MI = 600.0
DEADLINE_S = 15.0
INTERVAL_S = 1.5
SUBMIT_UNTIL_S = 90.0
HORIZON_S = 160.0
TASKS = int(SUBMIT_UNTIL_S / INTERVAL_S)

# Backhaul profiles, clean to dying: (one-way latency, Bernoulli frame
# loss, scheduled outage windows as (at, duration_s) pairs).
PROFILES = {
    "clean": {"latency_s": 0.05, "loss": 0.00, "outages": ()},
    "lossy": {"latency_s": 0.05, "loss": 0.10, "outages": ()},
    "flaky": {
        "latency_s": 0.10,
        "loss": 0.10,
        "outages": ((30.0, 8.0), (60.0, 8.0)),
    },
    "dying": {
        "latency_s": 0.25,
        "loss": 0.20,
        "outages": ((20.0, 10.0), (50.0, 10.0), (75.0, 10.0)),
    },
}

MODES = ("local_only", "remote_only", "speculate")
SEED = 2001


def _run_tier_scenario(mode: str, profile_name: str, seed: int = SEED):
    """One mode x backhaul-profile run; returns the full outcome dict.

    All three modes share the same substrate, arrivals, seeds and fault
    schedule; they differ only in which tiers the offloader may use:
    ``local_only`` and ``speculate`` are offloader policies over the
    full two-tier topology, ``remote_only`` registers the central tier
    alone (speculation with no local tier degenerates to remote-only).
    """
    profile = PROFILES[profile_name]
    reset_task_ids()
    reset_vehicle_ids()
    world = World(ScenarioConfig(seed=seed))

    model = StationaryModel(
        world, positions=[Vec2(i * 30.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(world, "e20-local")
    for vehicle in vehicles:
        cloud.admit(
            vehicle,
            offer=ResourceOffer(vehicle.vehicle_id, WORKER_MIPS, 10**9, 1e6),
        )
    central = CentralCloud(world, compute_mips=CENTRAL_MIPS, wan_delay_s=0.0)
    link = BackhaulLink(
        world,
        "e20-wan",
        base_latency_s=profile["latency_s"],
        loss_probability=profile["loss"],
    )

    topology = TierTopology()
    if mode != "remote_only":
        topology.register(VCloudTier(world, "local", "local", cloud))
    topology.register(CentralCloudTier(world, "central", central, link))
    offloader = TieredOffloader(world, topology, name=f"e20-{mode}")
    policy = "local_only" if mode == "local_only" else "speculate"

    for index in range(TASKS):
        world.engine.schedule_at(
            0.1 + index * INTERVAL_S,
            lambda: offloader.submit(
                Task(work_mi=WORK_MI, deadline_s=DEADLINE_S, submitter="e20"),
                policy=policy,
            ),
            label="e20-submit",
        )

    plan = FaultPlan(seed)
    for at, duration_s in profile["outages"]:
        plan.partition(at, duration_s=duration_s)
    driver = BackhaulFaultDriver(world.engine, link, plan)
    driver.arm()

    suite = InvariantSuite(
        [TaskConservation(cloud), TierConservation(offloader)],
        metrics=world.metrics,
    )
    suite.attach(world, check_interval_s=0.5)
    world.run_until(HORIZON_S)

    stats = offloader.stats
    return {
        "deadline_hit_rate": stats.deadline_hit_rate(),
        "completed": stats.completed,
        "failed": stats.failed,
        "failure_reasons": dict(stats.failure_reasons),
        "speculated": stats.speculated,
        "degraded": dict(stats.degraded),
        "wins_by_tier": dict(stats.wins_by_tier),
        "attempts_cancelled": stats.attempts_cancelled,
        "attempts_late": stats.attempts_late,
        "mean_latency_s": stats.mean_latency_s(),
        "outages_fired": len(driver.ledger),
        "link_accounting": link.accounting(),
        "accounting": offloader.accounting(),
        "violations": len(suite.violations),
        "invariant_checks": suite.checks_run,
        "counters": sorted(world.metrics.counters.items()),
    }


@pytest.fixture(scope="module")
def tier_sweep():
    return {
        profile: {mode: _run_tier_scenario(mode, profile) for mode in MODES}
        for profile in PROFILES
    }


# ---------------------------------------------------------------------------
# E20a — the sweep
# ---------------------------------------------------------------------------


def test_bench_tier_federation_table(
    tier_sweep, record_table, record_run_json, benchmark
):
    rows = []
    for profile, modes in tier_sweep.items():
        for mode in MODES:
            row = modes[mode]
            record_run_json(
                "E20_tier_federation",
                f"sweep/{profile}/{mode}",
                {
                    "deadline_hit_rate": row["deadline_hit_rate"],
                    "completed": row["completed"],
                    "failed": row["failed"],
                    "speculated": row["speculated"],
                    "degraded": sum(row["degraded"].values()),
                    "mean_latency_s": row["mean_latency_s"],
                },
                seed=SEED,
                config={"profile": profile, "mode": mode, **PROFILES[profile]},
            )
            rows.append(
                [
                    profile,
                    mode,
                    f"{row['deadline_hit_rate']:.1%}",
                    row["completed"],
                    row["failed"],
                    sum(row["degraded"].values()),
                    row["wins_by_tier"].get("local", 0),
                    row["wins_by_tier"].get("central", 0),
                    f"{row['mean_latency_s']:.2f}",
                ]
            )
    table = render_table(
        [
            "backhaul",
            "mode",
            "deadline hits",
            "completed",
            "failed",
            "degraded",
            "local wins",
            "remote wins",
            "mean latency (s)",
        ],
        rows,
        title="E20a — deadline-hit-rate vs backhaul health "
        f"({TASKS} tasks, {DEADLINE_S:.0f}s deadline, local ~1.3x overcommitted)",
    )
    record_table("E20_tier_federation", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_speculation_survives_where_baselines_drown(tier_sweep, benchmark):
    """Acceptance: >= 95% hits wherever both baselines fall below 80%."""
    stressed = [
        profile
        for profile, modes in tier_sweep.items()
        if modes["local_only"]["deadline_hit_rate"] < 0.80
        and modes["remote_only"]["deadline_hit_rate"] < 0.80
    ]
    assert stressed, {
        profile: {mode: modes[mode]["deadline_hit_rate"] for mode in MODES}
        for profile, modes in tier_sweep.items()
    }
    for profile in stressed:
        assert tier_sweep[profile]["speculate"]["deadline_hit_rate"] >= 0.95, (
            profile,
            tier_sweep[profile]["speculate"],
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_local_only_drowns_in_queueing_everywhere(tier_sweep, benchmark):
    """The local baseline fails for capacity reasons, not WAN reasons."""
    for profile, modes in tier_sweep.items():
        assert modes["local_only"]["deadline_hit_rate"] < 0.80, profile
        assert modes["local_only"]["speculated"] == 0, profile
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_remote_only_tracks_backhaul_health(tier_sweep, benchmark):
    """Remote-only is fine on a clean WAN and collapses as it dies."""
    hit = {p: tier_sweep[p]["remote_only"]["deadline_hit_rate"] for p in PROFILES}
    assert hit["clean"] >= 0.95
    assert hit["dying"] < hit["lossy"] <= hit["clean"]
    assert hit["dying"] < 0.80
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_speculation_mechanisms_engaged(tier_sweep, benchmark):
    """The headline number must come from the mechanism under test."""
    dying = tier_sweep["dying"]["speculate"]
    assert dying["speculated"] > 0
    assert dying["attempts_cancelled"] > 0  # losers really get cancelled
    assert dying["degraded"].get("backhaul_degraded", 0) > 0  # outages collapsed
    assert dying["wins_by_tier"].get("local", 0) > 0  # local saved lost frames
    assert dying["wins_by_tier"].get("central", 0) > 0  # remote saved queueing
    assert dying["outages_fired"] == len(PROFILES["dying"]["outages"])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_every_task_reaches_a_typed_terminal_state(tier_sweep, benchmark):
    for profile, modes in tier_sweep.items():
        for mode in MODES:
            row = modes[mode]
            acc = row["accounting"]
            assert acc["submitted"] == TASKS, (profile, mode)
            assert acc["live"] == 0, (profile, mode)
            assert acc["attempts_live"] == 0, (profile, mode)
            assert sum(row["failure_reasons"].values()) == row["failed"], (
                profile,
                mode,
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E20b — dependability of the mechanism itself
# ---------------------------------------------------------------------------


def test_tier_runs_are_byte_identical(benchmark):
    """Same seed twice => identical accounting, stats and metrics."""
    first = _run_tier_scenario("speculate", "dying", seed=2003)
    second = _run_tier_scenario("speculate", "dying", seed=2003)
    assert first == second
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_no_conservation_violations_under_outage_schedule(tier_sweep, benchmark):
    for profile, modes in tier_sweep.items():
        for mode in MODES:
            row = modes[mode]
            assert row["invariant_checks"] > 0, (profile, mode)
            assert row["violations"] == 0, (profile, mode)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
