"""Experiment E17 — dependable DAG execution under member churn.

The paper's dependability chapter (§V.A) asks v-clouds to keep
delivering results "even under attacks or failures of sub-components".
E11 established that lease-based recovery keeps *individual* tasks
alive; this experiment raises the stakes to multi-stage task graphs
with deadlines, where a single lost stage can strand a whole workflow.
Three DAG execution configurations run on the same cloud, under the
same seeded crash schedules (the E11 fault profile — same member
count, crash counts, plan seed and recovery backoff; the crash window
is stretched across the longer DAG horizon):

* **sequential (naive)** — stages run one at a time in topological
  order, one replica each, no checkpointing: the simplest possible DAG
  runner.  Its long critical path leaves almost no deadline slack, so
  any crash-induced re-execution or loss of a fast worker is fatal.
* **parallel** — the :class:`~repro.dag.scheduler.DagScheduler`
  frontier-parallel, but still one replica per stage and no
  checkpointing.
* **dependable** — parallel plus reliability-aware redundancy
  (replicas added while the predicted stage completion probability is
  below target, first-result-wins, losers cancelled) and stage outputs
  checkpointed into the replicated quorum store so churn re-executes
  only the lost frontier.

The substrate is deliberately checkpoint-free at the *task* level
(:class:`~repro.core.handover.DropPolicy`: a crashed worker's progress
is lost, the cloud re-queues from zero after lease detection) — the
regime where DAG-level redundancy and output checkpointing must carry
the dependability story on their own.

* **E17a** — crash-intensity sweep: graph deadline-hit-rate,
  completion rate and recovery effort per configuration.  Acceptance:
  dependable achieves at least twice the naive sequential
  deadline-hit-rate under heavy (>= 1/3) churn.
* **E17b** — the dependable configuration on a mobile (dynamic)
  architecture, where churn comes from vehicles drifting apart rather
  than injected crashes.
* **E17c** — dependability of the mechanism itself: byte-identical
  seeded replays, and zero conservation-invariant violations
  (:class:`~repro.chaos.invariants.DagConservation` +
  :class:`~repro.chaos.invariants.TaskConservation`) while the chaos
  schedule is live.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.chaos.invariants import DagConservation, InvariantSuite, TaskConservation
from repro.core import (
    BackoffPolicy,
    DynamicVCloud,
    ResourceOffer,
    VehicularCloud,
)
from repro.core.handover import DropPolicy
from repro.core.tasks import reset_task_ids
from repro.dag import (
    DagScheduler,
    GraphState,
    RedundancyPlanner,
    ReliabilityEstimator,
    StageSpec,
    TaskGraph,
    chain,
    reset_graph_ids,
)
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.sim import ScenarioConfig, World

from helpers import highway_world

# The E11 fault profile: same member count, same crash counts per
# intensity, same plan seed, same recovery backoff.  Only the crash
# window differs — E11's (10, 45) is stretched to cover the longer
# horizon DAG workloads need, keeping crashes spread across the run.
MEMBERS = 12
INTENSITIES = (0.0, 1 / 6, 1 / 3, 1 / 2)
PLAN_SEED = 1111
CRASH_WINDOW = (10.0, 160.0)
RECOVERY_BACKOFF = BackoffPolicy(
    base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
)

GRAPHS = 6
SUBMIT_SPACING_S = 30.0
MAP_FANOUT = 3
MAP_WORK_MI = 3600.0
REDUCE_WORK_MI = 2400.0
PUBLISH_WORK_MI = 1600.0
# ~1.3x the parallel critical path; the sequential baseline's chained
# stages land just inside it on a healthy cloud and outside it as soon
# as churn forces a re-execution or evicts a fast worker.
DEADLINE_S = 100.0
HORIZON_S = 450.0

CONFIGS = ("dependable", "parallel", "sequential")


def _bench_graph(index: int) -> TaskGraph:
    """A map-reduce-publish graph: 3 mappers -> reduce -> publish."""
    stages = [StageSpec(f"map{m}", MAP_WORK_MI) for m in range(MAP_FANOUT)]
    stages.append(
        StageSpec(
            "reduce",
            REDUCE_WORK_MI,
            deps=tuple(f"map{m}" for m in range(MAP_FANOUT)),
        )
    )
    stages.append(StageSpec("publish", PUBLISH_WORK_MI, deps=("reduce",)))
    return TaskGraph(stages, deadline_s=DEADLINE_S, submitter=f"bench-{index}")


# ---------------------------------------------------------------------------
# E17a — crash intensity vs DAG execution configuration
# ---------------------------------------------------------------------------


def _run_dag_scenario(intensity: float, config: str, seed: int = 1701):
    """A controlled stationary cloud running DAGs under seeded crashes.

    Every configuration gets the identical substrate — heterogeneous
    workers (so replica runtimes diverge and first-result-wins has
    losers to cancel), leases, retry backoff, progress-dropping
    handover and replicated storage — and the identical crash
    schedule; only the scheduler's execution strategy differs.
    """
    reset_task_ids()
    reset_vehicle_ids()
    reset_graph_ids()
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(
        world,
        "dag-sweep-vc",
        handover_policy=DropPolicy(),
        retry_backoff=RECOVERY_BACKOFF,
    )
    for index, vehicle in enumerate(vehicles):
        cloud.admit(
            vehicle,
            offer=ResourceOffer(vehicle.vehicle_id, 120.0 + 3.0 * index, 10**9, 1e6),
        )
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    cloud.enable_replicated_storage(capacity_bytes=10**8)

    if config == "dependable":
        scheduler = DagScheduler(
            world,
            cloud,
            name="dependable",
            reliability=ReliabilityEstimator(cloud),
            redundancy=RedundancyPlanner(target_success=0.99, max_replicas=2),
            checkpointing=True,
        )
    elif config == "parallel":
        scheduler = DagScheduler(world, cloud, name="parallel")
    else:
        scheduler = DagScheduler(world, cloud, name="sequential", sequential=True)

    for index in range(GRAPHS):
        graph = _bench_graph(index)
        world.engine.schedule_at(
            index * SUBMIT_SPACING_S,
            lambda g=graph: scheduler.submit(g),
            label="graph-submit",
        )

    targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
    plan = FaultPlan(PLAN_SEED).random_crashes(
        round(intensity * MEMBERS), CRASH_WINDOW, targets=targets
    )
    FaultInjector(world, plan, cloud=cloud).arm()

    suite = InvariantSuite(
        [TaskConservation(cloud), DagConservation(scheduler)], metrics=world.metrics
    )
    suite.attach(world, check_interval_s=1.0)
    world.run_for(HORIZON_S)

    stats = scheduler.stats
    latencies = sorted(stats.graph_latencies_s)
    return {
        "deadline_hit_rate": stats.deadline_hit_rate,
        "completion_rate": stats.completion_rate,
        "graphs_completed": stats.graphs_completed,
        "graphs_failed": stats.graphs_failed,
        "failure_reasons": dict(stats.failure_reasons),
        "graph_restarts": stats.graph_restarts,
        "stages_reexecuted": stats.stages_reexecuted,
        "redundant_dispatches": stats.redundant_dispatches,
        "replicas_cancelled": stats.replicas_cancelled,
        "checkpoint_writes": stats.checkpoint_writes,
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else float("inf"),
        "latencies_s": tuple(latencies),
        "stuck": sum(1 for r in scheduler.records if r.state is GraphState.RUNNING),
        "violations": len(suite.violations),
        "invariant_checks": suite.checks_run,
        "crashes": cloud.stats.worker_crashes,
        "accounting": scheduler.accounting(),
        "counters": sorted(world.metrics.counters.items()),
    }


@pytest.fixture(scope="module")
def dag_sweep():
    sweep = {}
    for intensity in INTENSITIES:
        sweep[intensity] = {
            config: _run_dag_scenario(intensity, config) for config in CONFIGS
        }
    return sweep


def test_bench_dag_sweep_table(dag_sweep, record_table, record_run_json, benchmark):
    rows = []
    for intensity in INTENSITIES:
        for config in CONFIGS:
            row = dag_sweep[intensity][config]
            record_run_json(
                "E17_dag_dependability",
                f"sweep/{intensity:.0%}/{config}",
                {
                    "deadline_hit_rate": row["deadline_hit_rate"],
                    "completion_rate": row["completion_rate"],
                    "mean_latency_s": row["mean_latency_s"],
                    "stages_reexecuted": row["stages_reexecuted"],
                    "redundant_dispatches": row["redundant_dispatches"],
                    "replicas_cancelled": row["replicas_cancelled"],
                    "violations": row["violations"],
                },
                config={"intensity": intensity, "config": config},
            )
            rows.append(
                [
                    f"{intensity:.0%}",
                    config,
                    row["deadline_hit_rate"],
                    row["completion_rate"],
                    row["mean_latency_s"],
                    row["stages_reexecuted"],
                    row["redundant_dispatches"],
                    row["replicas_cancelled"],
                ]
            )
    table = render_table(
        [
            "crash intensity",
            "config",
            "deadline hits",
            "completion",
            "mean latency (s)",
            "stages re-run",
            "redundant dispatches",
            "replicas cancelled",
        ],
        rows,
        title="E17a — DAG deadline hits vs crash intensity (graph deadline "
        f"{DEADLINE_S:.0f}s)",
    )
    record_table("E17_dag_dependability", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_dependable_never_worse(dag_sweep, benchmark):
    for intensity in INTENSITIES:
        sweep = dag_sweep[intensity]
        for baseline in ("parallel", "sequential"):
            assert (
                sweep["dependable"]["deadline_hit_rate"]
                >= sweep[baseline]["deadline_hit_rate"]
            ), f"intensity {intensity} vs {baseline}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_dependable_doubles_deadline_hits_under_heavy_churn(dag_sweep, benchmark):
    """Acceptance: >= 2x the naive deadline-hit-rate at >= 1/3 churn."""
    doubled = False
    for intensity in (i for i in INTENSITIES if i >= 1 / 3):
        sweep = dag_sweep[intensity]
        dependable = sweep["dependable"]["deadline_hit_rate"]
        naive = sweep["sequential"]["deadline_hit_rate"]
        assert dependable > 0.0, f"intensity {intensity}"
        if dependable >= 2.0 * max(naive, 1e-9):
            doubled = True
    assert doubled, "dependable never reached 2x the naive deadline-hit-rate"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_naive_collapses_under_churn_but_not_when_healthy(dag_sweep, benchmark):
    """The baseline is viable on a healthy cloud — churn is what kills it."""
    assert dag_sweep[0.0]["sequential"]["deadline_hit_rate"] == 1.0
    assert dag_sweep[1 / 3]["sequential"]["deadline_hit_rate"] <= 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_every_graph_reaches_typed_terminal_state(dag_sweep, benchmark):
    """No graph may be silently stuck; every failure carries a typed reason."""
    for intensity in INTENSITIES:
        for config in CONFIGS:
            row = dag_sweep[intensity][config]
            assert row["stuck"] == 0, (intensity, config)
            assert sum(row["failure_reasons"].values()) == row["graphs_failed"], (
                intensity,
                config,
            )
            assert row["accounting"]["replicas_live"] == 0, (intensity, config)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_redundancy_and_checkpointing_actually_engage(dag_sweep, benchmark):
    """The headline numbers must come from the mechanisms under test."""
    heavy = dag_sweep[1 / 2]["dependable"]
    assert heavy["crashes"] > 0
    assert heavy["redundant_dispatches"] > 0
    assert heavy["replicas_cancelled"] > 0
    assert heavy["checkpoint_writes"] > 0
    for baseline in ("parallel", "sequential"):
        assert dag_sweep[1 / 2][baseline]["redundant_dispatches"] == 0
        assert dag_sweep[1 / 2][baseline]["checkpoint_writes"] == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E17b — dependable DAGs on a mobile architecture
# ---------------------------------------------------------------------------

MOBILE_GRAPHS = 6
MOBILE_STAGE_WORKS = (500.0, 600.0)
MOBILE_DEADLINE_S = 60.0


def _run_mobile_dag(seed: int):
    """The dependable configuration on a dynamic (moving) v-cloud."""
    reset_task_ids()
    reset_vehicle_ids()
    reset_graph_ids()
    world, model, _highway = highway_world(seed, vehicle_count=30, length_m=3000)
    arch = DynamicVCloud(world, model)
    arch.start()
    cloud = arch.cloud
    cloud.retry_backoff = RECOVERY_BACKOFF
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    cloud.enable_replicated_storage(capacity_bytes=10**8)
    scheduler = DagScheduler(
        world,
        cloud,
        name="mobile",
        reliability=ReliabilityEstimator(cloud),
        redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
        checkpointing=True,
    )
    suite = InvariantSuite(
        [TaskConservation(cloud), DagConservation(scheduler)], metrics=world.metrics
    )
    suite.attach(world, check_interval_s=1.0)
    for index in range(MOBILE_GRAPHS):
        graph = chain(
            MOBILE_STAGE_WORKS, deadline_s=MOBILE_DEADLINE_S, submitter=f"mobile-{index}"
        )
        world.engine.schedule_at(
            index * 4.0,
            lambda g=graph: scheduler.submit(g),
            label="graph-submit",
        )
    world.run_for(150.0)
    stats = scheduler.stats
    return {
        "deadline_hit_rate": stats.deadline_hit_rate,
        "completion_rate": stats.completion_rate,
        "graphs_completed": stats.graphs_completed,
        "graphs_failed": stats.graphs_failed,
        "stages_reexecuted": stats.stages_reexecuted,
        "redundant_dispatches": stats.redundant_dispatches,
        "membership_leaves": cloud.membership.leaves,
        "stuck": sum(1 for r in scheduler.records if r.state is GraphState.RUNNING),
        "violations": len(suite.violations),
    }


@pytest.fixture(scope="module")
def mobile_result():
    return _run_mobile_dag(1702)


def test_bench_mobile_dag_table(mobile_result, record_table, record_run_json, benchmark):
    record_run_json(
        "E17_dag_dependability",
        "mobile/dynamic",
        {
            "deadline_hit_rate": mobile_result["deadline_hit_rate"],
            "completion_rate": mobile_result["completion_rate"],
            "stages_reexecuted": mobile_result["stages_reexecuted"],
            "redundant_dispatches": mobile_result["redundant_dispatches"],
            "membership_leaves": mobile_result["membership_leaves"],
            "violations": mobile_result["violations"],
        },
        seed=1702,
        config={"architecture": "dynamic", "churn": "natural mobility"},
    )
    table = render_table(
        [
            "architecture",
            "churn source",
            "deadline hits",
            "completion",
            "stages re-run",
            "redundant dispatches",
            "membership leaves",
        ],
        [
            [
                "dynamic",
                "natural mobility",
                mobile_result["deadline_hit_rate"],
                mobile_result["completion_rate"],
                mobile_result["stages_reexecuted"],
                mobile_result["redundant_dispatches"],
                mobile_result["membership_leaves"],
            ]
        ],
        title="E17b — dependable DAGs on a mobile architecture",
    )
    record_table("E17_dag_dependability", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_mobile_dags_survive_natural_churn(mobile_result, benchmark):
    assert mobile_result["completion_rate"] > 0.0
    assert mobile_result["stuck"] == 0
    assert mobile_result["violations"] == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E17c — dependability of the mechanism itself
# ---------------------------------------------------------------------------


def test_dag_runs_are_byte_identical(benchmark):
    """Same seed twice => identical accounting, reasons, latencies, metrics."""
    first = _run_dag_scenario(1 / 3, "dependable", seed=1703)
    second = _run_dag_scenario(1 / 3, "dependable", seed=1703)
    assert first == second
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_no_invariant_violations_under_chaos(dag_sweep, benchmark):
    """Conservation holds at every periodic check, in every configuration."""
    for intensity in INTENSITIES:
        for config in CONFIGS:
            row = dag_sweep[intensity][config]
            assert row["invariant_checks"] > 0, (intensity, config)
            assert row["violations"] == 0, (intensity, config)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
