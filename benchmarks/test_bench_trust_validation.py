"""Experiment E5 — §III.D / §V.D: real-time message content validation.

Streams collision-warning events through the classifier + validator
pipeline while sweeping the malicious-reporter fraction (0 → 40%), for
four validators: majority voting, weighted voting (reputation + path
diversity), Bayesian inference, and Dempster-Shafer fusion.

Also reproduces the paper's two structural arguments:
* sender reputation is useless under ephemeral contact (mean repeat
  encounters per identity ≈ 1), so content-based validation must carry
  the load;
* Sybil reports sharing one relay path are defeated by routing-path
  similarity discounting, not by counting heads.

Expected shape: all validators are accurate with few liars; plain
majority degrades fastest as the malicious fraction grows; validators
with reputation feedback recover accuracy over time; decision latency
stays millisecond-class (stringent time constraints).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.attacks import CollusionRing, SybilForger
from repro.geometry import Vec2
from repro.sim import SeededRng
from repro.trust import (
    BayesianValidator,
    DempsterShaferValidator,
    EventKind,
    GroundTruthEvent,
    MajorityVoting,
    MessageClassifier,
    ReputationStore,
    TrustPipeline,
    WeightedVoting,
    honest_report,
)

MALICIOUS_FRACTIONS = (0.0, 0.2, 0.4, 0.6)
EVENTS = 40
REPORTERS = 20
HONEST_ACCURACY = 0.9  # honest sensors still mis-observe 10% of the time

VALIDATORS = {
    "majority": MajorityVoting,
    "weighted": WeightedVoting,
    "bayesian": BayesianValidator,
    "dempster-shafer": DempsterShaferValidator,
}


def _run_stream(validator_name: str, malicious_fraction: float, seed: int = 501):
    rng = SeededRng(seed, f"trust/{validator_name}/{malicious_fraction}")
    malicious_count = int(REPORTERS * malicious_fraction)
    honest_ids = [f"honest-{i}" for i in range(REPORTERS - malicious_count)]
    ring = (
        CollusionRing([f"liar-{i}" for i in range(malicious_count)], rng)
        if malicious_count
        else None
    )
    pipeline = TrustPipeline(
        classifier=MessageClassifier(),
        validator=VALIDATORS[validator_name](),
        reputation=ReputationStore(),
        per_message_auth_cost_s=0.0001,
    )
    correct = 0
    latencies = []
    for index in range(EVENTS):
        exists = rng.chance(0.6)
        event = GroundTruthEvent(
            event_id=f"evt-{index}",
            kind=EventKind.COLLISION,
            location=Vec2(index * 1000.0, 0.0),  # well separated events
            occurred_at=index * 10.0,
            exists=exists,
        )
        now = index * 10.0 + 1.0
        reports = []
        for reporter in honest_ids:
            from repro.trust import EventReport

            observed = exists if rng.chance(HONEST_ACCURACY) else not exists
            reports.append(
                EventReport(
                    reporter=reporter,
                    kind=event.kind,
                    location=event.location,
                    reported_at=now + rng.uniform(0, 2),
                    claim=observed,
                )
            )
        if ring is not None:
            reports.extend(ring.smear(event, now))
        decisions = pipeline.process(reports)
        assert len(decisions) == 1
        decision = decisions[0]
        latencies.append(decision.total_latency_s)
        if decision.decision.correct_against(exists):
            correct += 1
        # Ground truth eventually surfaces; reputations learn.
        pipeline.feedback(decision.cluster, exists, now + 5.0)
    return {
        "accuracy": correct / EVENTS,
        "mean_latency_ms": 1000 * sum(latencies) / len(latencies),
        "reputation": pipeline.reputation,
    }


@pytest.fixture(scope="module")
def sweep():
    return {
        (name, fraction): _run_stream(name, fraction)
        for name in VALIDATORS
        for fraction in MALICIOUS_FRACTIONS
    }


def test_bench_trust_table(sweep, record_table, benchmark):
    rows = []
    for name in VALIDATORS:
        row = [name]
        for fraction in MALICIOUS_FRACTIONS:
            row.append(sweep[(name, fraction)]["accuracy"])
        row.append(sweep[(name, MALICIOUS_FRACTIONS[-1])]["mean_latency_ms"])
        rows.append(row)
    headers = ["validator"] + [
        f"accuracy @{int(f * 100)}% liars" for f in MALICIOUS_FRACTIONS
    ] + ["latency (ms) @40%"]
    table = render_table(
        headers, rows, title="E5 — content validation vs malicious fraction"
    )
    record_table("E5_trust_validation", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_accurate_without_liars(sweep, benchmark):
    for name in VALIDATORS:
        assert sweep[(name, 0.0)]["accuracy"] >= 0.9, name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_reputation_weighted_beats_plain_majority_under_attack(sweep, benchmark):
    heavy = MALICIOUS_FRACTIONS[-1]
    assert (
        sweep[("weighted", heavy)]["accuracy"]
        > sweep[("majority", heavy)]["accuracy"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_majority_collapses_past_half_liars(sweep, benchmark):
    """Counting heads fails once colluders outnumber honest witnesses."""
    assert sweep[("majority", 0.6)]["accuracy"] < 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_accuracy_degrades_monotonically_for_majority(sweep, benchmark):
    accuracies = [sweep[("majority", f)]["accuracy"] for f in MALICIOUS_FRACTIONS]
    assert accuracies[0] >= accuracies[-1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_latency_is_millisecond_class(sweep, benchmark):
    """§III.D: trust evaluation must meet stringent time constraints."""
    for key, row in sweep.items():
        assert row["mean_latency_ms"] < 50.0, key
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ephemeral_contacts_starve_reputation(record_table, benchmark):
    """§III.D: 'the individual may not come across the same vehicles again'.

    With one-shot reporters (fresh identity per event), the reputation
    store never accumulates evidence — the structural failure the paper
    predicts for social-network-style reputation in v-clouds.
    """
    pipeline = TrustPipeline(
        classifier=MessageClassifier(),
        validator=WeightedVoting(),
        reputation=ReputationStore(),
    )
    for index in range(30):
        event = GroundTruthEvent(
            f"evt-{index}", EventKind.ICY_ROAD, Vec2(index * 1000.0, 0), index * 10.0
        )
        reports = [
            honest_report(f"oneshot-{index}-{j}", event, index * 10.0 + 1.0)
            for j in range(5)
        ]
        decisions = pipeline.process(reports)
        pipeline.feedback(decisions[0].cluster, True, index * 10.0 + 5.0)
    store = pipeline.reputation
    table = render_table(
        ["metric", "value"],
        [
            ["identities seen", len(store)],
            ["mean encounters per identity", store.mean_encounters],
            ["mature identities (>=5 obs)", store.mature_fraction()],
        ],
        title="E5b — reputation starvation under ephemeral contacts",
    )
    record_table("E5_trust_validation", table)
    assert store.mean_encounters == pytest.approx(1.0)
    assert store.mature_fraction() == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_path_diversity_defeats_sybil_flood(record_table, benchmark):
    """§V.D: routing-path similarity exposes Sybil evidence."""
    forger = SybilForger("attacker", sybil_count=8, relay_chain=("evil-relay",))
    fabricated = forger.fabricate_event(EventKind.COLLISION, Vec2(0, 0), now=1.0)
    truth_event = GroundTruthEvent(
        "evt-real", EventKind.COLLISION, Vec2(0, 0), 0.0, exists=False
    )
    honest = [
        honest_report(f"honest-{i}", truth_event, 1.0, path=(f"relay-{i}",))
        for i in range(4)
    ]
    classifier = MessageClassifier()
    cluster = classifier.classify(fabricated + honest)[0]
    naive = WeightedVoting(use_reputation=False, use_path_diversity=False).evaluate(cluster)
    diverse = WeightedVoting(use_reputation=False, use_path_diversity=True).evaluate(cluster)
    table = render_table(
        ["validator", "believes fabricated event", "score"],
        [
            ["count heads (no provenance)", naive.believe, naive.score],
            ["path-diversity weighted", diverse.believe, diverse.score],
        ],
        title="E5c — Sybil fabrication: 8 shared-path liars vs 4 independent witnesses",
    )
    record_table("E5_trust_validation", table)
    assert naive.believe  # counting heads is fooled
    assert not diverse.believe  # provenance discount is not
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_pipeline_throughput(benchmark):
    """Host-time micro-benchmark: one 25-report pipeline pass."""
    event = GroundTruthEvent("evt", EventKind.TRAFFIC_JAM, Vec2(0, 0), 0.0)
    reports = [honest_report(f"r-{i}", event, 1.0) for i in range(25)]
    pipeline = TrustPipeline(
        classifier=MessageClassifier(), validator=BayesianValidator()
    )

    def run():
        return pipeline.process(reports)

    # Bounded rounds: the pipeline records every decision, so an
    # unbounded calibration run would grow its history without limit.
    decisions = benchmark.pedantic(run, rounds=100, iterations=10)
    assert decisions[0].decision.believe
