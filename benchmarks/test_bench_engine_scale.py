"""Simulator throughput benchmarks (host time).

Mostly not paper experiments — these pin the framework's own performance
so regressions are visible: raw event throughput, a beaconing city
block, and a full dynamic-cloud scenario step.  All via
pytest-benchmark's real timing (the one place wall-clock, not virtual
time, is the measurement).

The exception is **E13** at the bottom: the spatial-index experiment.
It runs the same seeded beaconing + clustering scene twice — once
through the :class:`~repro.sim.SpatialGrid` index and once through the
legacy brute-force scan (``use_spatial_index=False``) — asserts the
seeded metrics are byte-identical, and records the wall-clock curve at
n ∈ {100, 300, 1000} vehicles.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.analysis import render_table, topology_stats
from repro.core import DynamicVCloud, Task
from repro.mobility import Highway, HighwayModel
from repro.mobility import vehicle as vehicle_module
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.net.clustering import MobilityClustering
from repro.sim import Engine, ScenarioConfig, World

from helpers import highway_world


def test_bench_engine_event_throughput(benchmark):
    """Empty-callback events through the queue."""

    def run():
        engine = Engine()
        for index in range(5_000):
            engine.schedule(index * 0.001, lambda: None)
        engine.run_until(10.0)
        return engine.events_executed

    executed = benchmark.pedantic(run, rounds=10, iterations=1)
    assert executed == 5_000


def test_bench_beaconing_city_block(benchmark):
    """60 vehicles beaconing for 10 simulated seconds."""

    def run():
        world = World(ScenarioConfig(seed=3000, vehicle_count=60))
        model = HighwayModel(world, Highway(length_m=1500))
        model.populate(60)
        model.start()
        channel = WirelessChannel(world)
        nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
        for node in nodes:
            BeaconService(world, node).start()
        world.run_for(10.0)
        return world.engine.events_executed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1_000


def test_bench_dynamic_cloud_scenario(benchmark):
    """A full dynamic-cloud minute: mobility + elections + 10 tasks."""

    def run():
        world = World(ScenarioConfig(seed=3001, vehicle_count=30))
        model = HighwayModel(world, Highway(length_m=3000))
        model.populate(30)
        model.start()
        arch = DynamicVCloud(world, model)
        arch.start()
        for index in range(10):
            world.engine.schedule_at(
                index * 2.0,
                lambda: arch.cloud.submit(Task(work_mi=1000, deadline_s=30)),
                label="task",
            )
        world.run_for(60.0)
        return arch.cloud.stats.completed

    completed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completed >= 8


# --------------------------------------------------------------------
# E13 — spatial index: seeded equivalence and wall-clock scaling
# --------------------------------------------------------------------

E13_SEED = 77
E13_SIM_SECONDS = 2.0
E13_FLEETS = (100, 300, 1000)


def _reset_vehicle_ids() -> None:
    """Rewind the process-global vehicle id counter.

    Vehicle ids seed the per-node beacon RNG forks
    (``world.rng.fork(f"beacon/{node_id}")``), so two runs can only be
    compared when both start from the same id sequence.
    """
    vehicle_module._vehicle_counter = itertools.count(1)


def _e13_run(vehicle_count: int, use_index: bool):
    """One seeded beaconing + clustering scene; returns (fingerprint, seconds)."""
    _reset_vehicle_ids()
    world, model, _highway = highway_world(E13_SEED, vehicle_count)
    channel = WirelessChannel(world, use_spatial_index=use_index)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
    for node in nodes:
        BeaconService(world, node).start()
    algorithm = MobilityClustering()
    range_m = world.config.channel.v2v_range_m
    memberships = []

    def cluster_pass() -> None:
        result = algorithm.form(model.vehicles, range_m, now=world.now)
        memberships.append(tuple(tuple(c.member_ids) for c in result.clusters))

    world.engine.call_every(1.0, cluster_pass, label="clustering")
    started = time.perf_counter()
    world.run_for(E13_SIM_SECONDS)
    elapsed = time.perf_counter() - started
    fingerprint = {
        "delivered": world.metrics.counter("channel/frames_delivered"),
        "lost": world.metrics.counter("channel/frames_lost"),
        "latency": tuple(world.metrics.samples("channel/delivery_latency_s")),
        "clusters": tuple(memberships),
        "topology": topology_stats(model.vehicles, range_m),
    }
    return fingerprint, elapsed


@pytest.fixture(scope="module")
def e13_sweep():
    sweep = {}
    for vehicle_count in E13_FLEETS:
        indexed, indexed_s = _e13_run(vehicle_count, use_index=True)
        brute, brute_s = _e13_run(vehicle_count, use_index=False)
        sweep[vehicle_count] = {
            "indexed": indexed,
            "brute": brute,
            "indexed_s": indexed_s,
            "brute_s": brute_s,
        }
    return sweep


def test_bench_e13_seeded_metrics_identical(
    e13_sweep, record_table, record_run_json, benchmark
):
    """Indexed and brute-force runs must be byte-identical, not merely close."""
    rows = []
    for vehicle_count in E13_FLEETS:
        indexed = e13_sweep[vehicle_count]["indexed"]
        brute = e13_sweep[vehicle_count]["brute"]
        assert indexed["delivered"] == brute["delivered"]
        assert indexed["lost"] == brute["lost"]
        assert indexed["latency"] == brute["latency"]
        assert indexed["clusters"] == brute["clusters"]
        assert indexed["topology"] == brute["topology"]
        latency = indexed["latency"]
        record_run_json(
            "E13_spatial_index",
            f"fleet/{vehicle_count}",
            {
                "delivered": indexed["delivered"],
                "lost": indexed["lost"],
                "latency_samples": len(latency),
                "mean_latency_s": sum(latency) / len(latency) if latency else 0.0,
                "clusters_formed": sum(len(s) for s in indexed["clusters"]),
                "radio_edges": indexed["topology"].edges,
            },
            seed=E13_SEED,
            config={"vehicles": vehicle_count},
        )
        rows.append(
            [
                vehicle_count,
                int(indexed["delivered"]),
                int(indexed["lost"]),
                len(latency),
                sum(latency) / len(latency) if latency else 0.0,
                sum(len(snapshot) for snapshot in indexed["clusters"]),
                indexed["topology"].edges,
                "identical",
            ]
        )
    table = render_table(
        [
            "vehicles",
            "delivered",
            "lost",
            "latency samples",
            "mean latency (s)",
            "clusters formed",
            "radio edges",
            "indexed vs brute",
        ],
        rows,
        title="E13a — seeded metrics, spatial index vs brute force",
    )
    record_table("E13_spatial_index", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e13_wall_clock_curve(e13_sweep, record_table, benchmark):
    """The index must buy >= 5x at 1000 vehicles (acceptance criterion)."""
    rows = []
    for vehicle_count in E13_FLEETS:
        run = e13_sweep[vehicle_count]
        speedup = run["brute_s"] / run["indexed_s"]
        rows.append([vehicle_count, run["brute_s"], run["indexed_s"], speedup])
    table = render_table(
        ["vehicles", "brute force (s)", "spatial index (s)", "speedup"],
        rows,
        title=(
            f"E13b — wall clock, {E13_SIM_SECONDS:.0f} sim-s of beaconing"
            " + clustering (1 Hz)"
        ),
    )
    record_table("E13_spatial_index", table)
    final = e13_sweep[E13_FLEETS[-1]]
    assert final["brute_s"] / final["indexed_s"] >= 5.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
