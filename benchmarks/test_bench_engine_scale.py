"""Simulator throughput benchmarks (host time).

Not a paper experiment — these pin the framework's own performance so
regressions are visible: raw event throughput, a beaconing city block,
and a full dynamic-cloud scenario step.  All via pytest-benchmark's real
timing (the one place wall-clock, not virtual time, is the measurement).
"""

from __future__ import annotations

from repro.core import DynamicVCloud, Task
from repro.mobility import Highway, HighwayModel
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.sim import Engine, ScenarioConfig, World


def test_bench_engine_event_throughput(benchmark):
    """Empty-callback events through the queue."""

    def run():
        engine = Engine()
        for index in range(5_000):
            engine.schedule(index * 0.001, lambda: None)
        engine.run_until(10.0)
        return engine.events_executed

    executed = benchmark.pedantic(run, rounds=10, iterations=1)
    assert executed == 5_000


def test_bench_beaconing_city_block(benchmark):
    """60 vehicles beaconing for 10 simulated seconds."""

    def run():
        world = World(ScenarioConfig(seed=3000, vehicle_count=60))
        model = HighwayModel(world, Highway(length_m=1500))
        model.populate(60)
        model.start()
        channel = WirelessChannel(world)
        nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
        for node in nodes:
            BeaconService(world, node).start()
        world.run_for(10.0)
        return world.engine.events_executed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1_000


def test_bench_dynamic_cloud_scenario(benchmark):
    """A full dynamic-cloud minute: mobility + elections + 10 tasks."""

    def run():
        world = World(ScenarioConfig(seed=3001, vehicle_count=30))
        model = HighwayModel(world, Highway(length_m=3000))
        model.populate(30)
        model.start()
        arch = DynamicVCloud(world, model)
        arch.start()
        for index in range(10):
            world.engine.schedule_at(
                index * 2.0,
                lambda: arch.cloud.submit(Task(work_mi=1000, deadline_s=30)),
                label="task",
            )
        world.run_for(60.0)
        return arch.cloud.stats.completed

    completed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completed >= 8
