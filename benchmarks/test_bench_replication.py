"""Experiment E9 — §III.A: file replication for availability.

"How many copies of a shared file should be distributed in v-cloud so
that other vehicles can keep accessing this file even if many vehicles
are offline at the same time."

Sweeps the replica count (1 → 5) against departure pressure in a
parking-lot cloud (members leave, taking their replicas), with repair
off — the pure redundancy question — and then with repair on, measuring
the transfer overhead repair costs.

Expected shape: availability rises monotonically with replica count and
falls with departure fraction; with repair enabled, availability holds
near 1.0 at the price of repair transfers proportional to churn.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import FileStore, ReplicationManager, StoredFile
from repro.sim import SeededRng

MEMBERS = 30
FILES = 40
REPLICAS = (1, 2, 3, 5)
DEPARTURE_FRACTIONS = (0.2, 0.5, 0.8)


def _run_replication(replicas: int, departure_fraction: float, repair: bool, seed: int = 901):
    rng = SeededRng(seed, f"repl/{replicas}/{departure_fraction}/{repair}")
    manager = ReplicationManager(rng.fork("manager"), repair=repair)
    for index in range(MEMBERS):
        manager.add_store(FileStore(f"v{index}", capacity_bytes=10**9))
    for index in range(FILES):
        manager.store_file(StoredFile(f"file-{index}", 10_000, target_replicas=replicas))
    departures = rng.sample(manager.member_ids(), int(MEMBERS * departure_fraction))
    for member in departures:
        manager.remove_store(member)
    return {
        "availability": manager.availability(),
        "repair_transfers": manager.repair_transfers,
    }


@pytest.fixture(scope="module")
def no_repair_sweep():
    return {
        (replicas, fraction): _run_replication(replicas, fraction, repair=False)
        for replicas in REPLICAS
        for fraction in DEPARTURE_FRACTIONS
    }


def test_bench_replication_table(no_repair_sweep, record_table, benchmark):
    rows = []
    for replicas in REPLICAS:
        row = [replicas]
        for fraction in DEPARTURE_FRACTIONS:
            row.append(no_repair_sweep[(replicas, fraction)]["availability"])
        rows.append(row)
    headers = ["replicas"] + [
        f"availability @{int(f * 100)}% departed" for f in DEPARTURE_FRACTIONS
    ]
    table = render_table(
        headers, rows, title="E9 — file availability vs replica count (no repair)"
    )
    record_table("E9_replication", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_availability_rises_with_replicas(no_repair_sweep, benchmark):
    for fraction in DEPARTURE_FRACTIONS:
        series = [no_repair_sweep[(r, fraction)]["availability"] for r in REPLICAS]
        assert series == sorted(series), f"not monotone at {fraction}"
        assert series[-1] > series[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_availability_falls_with_departures(no_repair_sweep, benchmark):
    for replicas in REPLICAS:
        series = [
            no_repair_sweep[(replicas, f)]["availability"] for f in DEPARTURE_FRACTIONS
        ]
        assert series == sorted(series, reverse=True), f"not monotone at {replicas}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_single_replica_is_fragile(no_repair_sweep, benchmark):
    assert no_repair_sweep[(1, 0.8)]["availability"] < 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_three_replicas_survive_moderate_churn(no_repair_sweep, benchmark):
    assert no_repair_sweep[(3, 0.5)]["availability"] > 0.7
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_repair_holds_availability(record_table, benchmark):
    rows = []
    for repair in (False, True):
        result = _run_replication(2, 0.5, repair=repair)
        rows.append(
            ["repair on" if repair else "repair off",
             result["availability"], result["repair_transfers"]]
        )
    table = render_table(
        ["mode", "availability @50% departed", "repair transfers"],
        rows,
        title="E9b — re-replication on departure (2 replicas)",
    )
    record_table("E9_replication", table)
    off, on = rows[0], rows[1]
    assert on[1] >= off[1]
    assert on[1] == 1.0
    assert on[2] > 0  # repair is not free
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_secret_sharing_tradeoff(record_table, benchmark):
    """E9c — §V.B: threshold splitting across honest-but-curious members.

    The (k, n) dial: raising k makes collusion harder (k curious members
    must pool shares) but departures costlier (only n-k holders may
    leave).  Replication is the k=1 corner — maximally durable, zero
    confidentiality against a single curious holder.
    """
    from repro.security.secret_sharing import DistributedSecretStore
    from repro.sim import SeededRng

    rng = SeededRng(909, "shamir-bench")
    members = [f"v{i}" for i in range(10)]
    rows = []
    for k in (1, 3, 5, 8):
        survived = 0
        trials = 30
        for trial in range(trials):
            store = DistributedSecretStore(rng.fork(f"{k}/{trial}"))
            store.scatter("s", b"driver biometrics", members, k=k)
            churn = rng.fork(f"dep/{k}/{trial}")
            for member in members:
                if churn.chance(0.5):  # each member leaves with p = 0.5
                    store.member_departed(member)
            if store.can_reconstruct("s"):
                survived += 1
        rows.append([f"k={k} of 10", k, survived / trials])
    table = render_table(
        ["scheme", "colluders needed", "survives 50% churn"],
        rows,
        title="E9c — secret sharing: confidentiality vs churn durability",
    )
    record_table("E9_replication", table)
    durability = [row[2] for row in rows]
    assert durability == sorted(durability, reverse=True)  # higher k, more fragile
    assert rows[0][2] > 0.99  # a single surviving holder keeps k=1 alive
    assert rows[-1][2] < 0.3  # k=8 rarely survives ~50% departures
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_replication_throughput(benchmark):
    """Host-time micro-benchmark: placing 40 files x 3 replicas."""

    def run():
        return _run_replication(3, 0.5, repair=True, seed=902)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["availability"] > 0.9
