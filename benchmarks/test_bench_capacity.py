"""Experiment E18 — capacity-aware redundancy and small-task batching.

E17 exposed a defect, not a tuning issue: the survival-only
`RedundancyPlanner` grows replica sets exactly when churn has shrunk
the fleet, so replication multiplies queued work and deadline misses —
a positive feedback loop.  This experiment measures the fix: the same
dependable DAG configuration with and without the shared
:class:`~repro.core.capacity.BacklogEstimator` wired between the
serving gateway and the DAG scheduler, swept over churn x serving
load.  With the estimator, the planner optimizes predicted
*deadline-hit* probability (each marginal replica's survival gain
discounted by the queue delay it induces on a contended fleet) and
sheds redundancy under combined churn + load; without it, the static
rule replicates obliviously.

* **E18a** — churn x load sweep, adaptive vs static planner, identical
  substrate, fault schedule and serving workload.  Acceptance: at the
  E17 1/3-churn point under >= 1.5x serving load the adaptive planner's
  graph deadline-hit rate beats the static planner's, while at low load
  the two match (the adaptive objective degenerates to pure survival on
  an uncontended fleet).
* **E18b** — small-task batching: the same overloaded gateway with and
  without a :class:`~repro.serve.batching.BatchingPolicy`.  Batching
  must cut cloud dispatches (slots are the contended resource) without
  hurting completions, with per-member accounting conserved.
* **E18c** — dependability of the mechanisms: byte-identical seeded
  replays and zero conservation-invariant violations
  (:class:`~repro.chaos.invariants.TaskConservation` +
  :class:`~repro.chaos.invariants.DagConservation` +
  :class:`~repro.chaos.invariants.ServingConservation`) while the chaos
  schedule and the overload are live.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.chaos.invariants import (
    DagConservation,
    InvariantSuite,
    ServingConservation,
    TaskConservation,
)
from repro.core import BackoffPolicy, BacklogEstimator, ResourceOffer, VehicularCloud
from repro.core.handover import DropPolicy
from repro.core.tasks import reset_task_ids
from repro.dag import (
    DagScheduler,
    GraphState,
    RedundancyPlanner,
    ReliabilityEstimator,
    StageSpec,
    TaskGraph,
    reset_graph_ids,
)
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.serve import BatchingPolicy, ServiceGateway, ServiceRequest
from repro.sim import ScenarioConfig, World

# The E17 substrate: same member count, heterogeneous offers, crash
# plan seed, recovery backoff, graph shape and deadline — so the
# 1/3-churn acceptance point is the same point E17 measured.
MEMBERS = 12
INTENSITIES = (0.0, 1 / 3)
PLAN_SEED = 1111
CRASH_WINDOW = (10.0, 160.0)
RECOVERY_BACKOFF = BackoffPolicy(
    base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
)

GRAPHS = 6
SUBMIT_SPACING_S = 30.0
MAP_FANOUT = 3
MAP_WORK_MI = 3600.0
REDUCE_WORK_MI = 2400.0
PUBLISH_WORK_MI = 1600.0
DEADLINE_S = 100.0
HORIZON_S = 450.0

# Background serving load, as a fraction of the eligible fleet's
# aggregate MIPS.  0.25x leaves the fleet uncontended; 1.5x keeps the
# admission queue standing-full for the whole run.
LOADS = (0.25, 1.5)
SERVE_WORK_MI = 1800.0
SERVE_DEADLINE_S = 60.0
SERVE_QUEUE_CAPACITY = 64
# The serving path may hold at most 4 of the 11 eligible workers, so
# the DAG planner always has free candidates to (over-)replicate onto —
# the partial-utilization regime where replication amplifies queueing —
# and churn cannot hand the serving path the whole surviving fleet.
SERVE_SLOTS = 4
SERVE_UNTIL_S = 380.0

CONFIGS = ("adaptive", "static")


def _bench_graph(index: int) -> TaskGraph:
    """The E17 map-reduce-publish graph: 3 mappers -> reduce -> publish."""
    stages = [StageSpec(f"map{m}", MAP_WORK_MI) for m in range(MAP_FANOUT)]
    stages.append(
        StageSpec(
            "reduce",
            REDUCE_WORK_MI,
            deps=tuple(f"map{m}" for m in range(MAP_FANOUT)),
        )
    )
    stages.append(StageSpec("publish", PUBLISH_WORK_MI, deps=("reduce",)))
    return TaskGraph(stages, deadline_s=DEADLINE_S, submitter=f"bench-{index}")


def _build_cloud(world):
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(
        world,
        "capacity-vc",
        handover_policy=DropPolicy(),
        retry_backoff=RECOVERY_BACKOFF,
    )
    for index, vehicle in enumerate(vehicles):
        cloud.admit(
            vehicle,
            offer=ResourceOffer(vehicle.vehicle_id, 120.0 + 3.0 * index, 10**9, 1e6),
        )
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    cloud.enable_replicated_storage(capacity_bytes=10**8)
    return cloud


# ---------------------------------------------------------------------------
# E18a — churn x load: adaptive vs static redundancy planning
# ---------------------------------------------------------------------------


def _run_capacity_scenario(intensity: float, load: float, config: str, seed: int = 1801):
    """DAG stream + background serving load on one cloud, seeded crashes.

    Both configurations are identical — same substrate, same fault
    schedule, same deterministic serving arrivals, same planner targets
    — except that ``adaptive`` wires one shared
    :class:`BacklogEstimator` into both the gateway and the scheduler,
    enabling the deadline-hit objective; ``static`` plans from survival
    alone (the pre-fix behavior).
    """
    reset_task_ids()
    reset_vehicle_ids()
    reset_graph_ids()
    world = World(ScenarioConfig(seed=seed))
    cloud = _build_cloud(world)

    backlog = BacklogEstimator(cloud) if config == "adaptive" else None
    scheduler = DagScheduler(
        world,
        cloud,
        name=config,
        reliability=ReliabilityEstimator(cloud),
        redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
        checkpointing=True,
        backlog=backlog,
    )
    gateway = ServiceGateway(
        world,
        cloud,
        name=f"{config}-gw",
        queue_capacity=SERVE_QUEUE_CAPACITY,
        max_dispatch_concurrency=SERVE_SLOTS,
        backlog=backlog,
    )

    eligible_mips = sum(
        cloud.pool.offer_of(w).compute_mips
        for w in cloud.pool.member_ids()
        if w != cloud.head_id
    )
    interval_s = SERVE_WORK_MI / (load * eligible_mips)
    arrivals = int(SERVE_UNTIL_S / interval_s)
    for index in range(arrivals):
        world.engine.schedule_at(
            0.1 + index * interval_s,
            lambda: gateway.submit(
                ServiceRequest.build(
                    work_mi=SERVE_WORK_MI, tenant="bg", deadline_s=SERVE_DEADLINE_S
                )
            ),
            label="serve-submit",
        )

    for index in range(GRAPHS):
        graph = _bench_graph(index)
        world.engine.schedule_at(
            index * SUBMIT_SPACING_S,
            lambda g=graph: scheduler.submit(g),
            label="graph-submit",
        )

    targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
    plan = FaultPlan(PLAN_SEED).random_crashes(
        round(intensity * MEMBERS), CRASH_WINDOW, targets=targets
    )
    FaultInjector(world, plan, cloud=cloud).arm()

    suite = InvariantSuite(
        [
            TaskConservation(cloud),
            DagConservation(scheduler),
            ServingConservation(gateway),
        ],
        metrics=world.metrics,
    )
    suite.attach(world, check_interval_s=1.0)
    world.run_for(HORIZON_S)
    gateway.stop()

    dag = scheduler.stats
    serve = gateway.stats
    return {
        "deadline_hit_rate": dag.deadline_hit_rate,
        "completion_rate": dag.completion_rate,
        "graphs_completed": dag.graphs_completed,
        "graphs_failed": dag.graphs_failed,
        "failure_reasons": dict(dag.failure_reasons),
        "replicas_submitted": dag.replicas_submitted,
        "replicas_load_shed": dag.replicas_load_shed,
        "redundant_dispatches": dag.redundant_dispatches,
        "stages_reexecuted": dag.stages_reexecuted,
        "serve_completed": serve.completed,
        "serve_shed": serve.shed,
        "serve_rejected": serve.rejected,
        "serve_slo_hits": serve.slo_hits,
        "stuck": sum(1 for r in scheduler.records if r.state is GraphState.RUNNING),
        "violations": len(suite.violations),
        "invariant_checks": suite.checks_run,
        "crashes": cloud.stats.worker_crashes,
        "dag_accounting": scheduler.accounting(),
        "serve_accounting": gateway.accounting(),
        "counters": sorted(world.metrics.counters.items()),
    }


@pytest.fixture(scope="module")
def capacity_sweep():
    sweep = {}
    for intensity in INTENSITIES:
        for load in LOADS:
            sweep[(intensity, load)] = {
                config: _run_capacity_scenario(intensity, load, config)
                for config in CONFIGS
            }
    return sweep


def test_bench_capacity_sweep_table(
    capacity_sweep, record_table, record_run_json, benchmark
):
    rows = []
    for (intensity, load), configs in capacity_sweep.items():
        for config in CONFIGS:
            row = configs[config]
            record_run_json(
                "E18_capacity_redundancy",
                f"sweep/{intensity:.0%}/{load:.2f}x/{config}",
                {
                    "deadline_hit_rate": row["deadline_hit_rate"],
                    "completion_rate": row["completion_rate"],
                    "replicas_submitted": row["replicas_submitted"],
                    "replicas_load_shed": row["replicas_load_shed"],
                    "serve_completed": row["serve_completed"],
                    "serve_refused": row["serve_shed"] + row["serve_rejected"],
                },
                config={"intensity": intensity, "load": load, "planner": config},
            )
            rows.append(
                [
                    f"{intensity:.0%}",
                    f"{load:.2f}x",
                    config,
                    row["deadline_hit_rate"],
                    row["completion_rate"],
                    row["replicas_submitted"],
                    row["replicas_load_shed"],
                    row["serve_completed"],
                    row["serve_shed"] + row["serve_rejected"],
                ]
            )
    table = render_table(
        [
            "crash intensity",
            "serving load",
            "planner",
            "graph deadline hits",
            "completion",
            "replicas",
            "replicas shed",
            "serve done",
            "serve refused",
        ],
        rows,
        title="E18a — capacity-aware vs static redundancy under churn x load "
        f"(graph deadline {DEADLINE_S:.0f}s)",
    )
    record_table("E18_capacity_redundancy", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_adaptive_beats_static_at_churn_and_load(capacity_sweep, benchmark):
    """Acceptance: at 1/3 churn and >= 1.5x load, adaptive wins outright."""
    point = capacity_sweep[(1 / 3, 1.5)]
    assert (
        point["adaptive"]["deadline_hit_rate"] > point["static"]["deadline_hit_rate"]
    ), point
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_adaptive_never_worse(capacity_sweep, benchmark):
    for key, configs in capacity_sweep.items():
        assert (
            configs["adaptive"]["deadline_hit_rate"]
            >= configs["static"]["deadline_hit_rate"]
        ), key
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_adaptive_matches_static_at_low_load(capacity_sweep, benchmark):
    """Uncontended fleet: the hit objective degenerates to pure survival."""
    for intensity in INTENSITIES:
        configs = capacity_sweep[(intensity, 0.25)]
        assert configs["adaptive"]["deadline_hit_rate"] == pytest.approx(
            configs["static"]["deadline_hit_rate"]
        ), intensity
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_shedding_engages_only_under_load(capacity_sweep, benchmark):
    """The headline numbers must come from the mechanism under test."""
    heavy = capacity_sweep[(1 / 3, 1.5)]["adaptive"]
    assert heavy["crashes"] > 0
    assert heavy["replicas_load_shed"] > 0
    assert (
        heavy["replicas_submitted"]
        < capacity_sweep[(1 / 3, 1.5)]["static"]["replicas_submitted"]
    )
    for key, configs in capacity_sweep.items():
        assert configs["static"]["replicas_load_shed"] == 0, key
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_every_graph_reaches_typed_terminal_state(capacity_sweep, benchmark):
    for key, configs in capacity_sweep.items():
        for config in CONFIGS:
            row = configs[config]
            assert row["stuck"] == 0, (key, config)
            assert sum(row["failure_reasons"].values()) == row["graphs_failed"], (
                key,
                config,
            )
            assert row["dag_accounting"]["replicas_live"] == 0, (key, config)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E18b — small-task batching under slot contention
# ---------------------------------------------------------------------------

BATCH_MEMBERS = 6
BATCH_SLOTS = 2
BATCH_WORK_MI = 60.0
BATCH_DEADLINE_S = 12.0
BATCH_INTERVAL_S = 0.05
BATCH_UNTIL_S = 40.0
BATCH_HORIZON_S = 80.0


def _run_batching_scenario(batched: bool, seed: int = 1805):
    """A dispatch-slot-starved gateway fed a stream of small requests."""
    reset_task_ids()
    reset_vehicle_ids()
    reset_graph_ids()
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(BATCH_MEMBERS)]
    )
    vehicles = model.populate(BATCH_MEMBERS)
    cloud = VehicularCloud(world, "batch-vc", handover_policy=DropPolicy())
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    gateway = ServiceGateway(
        world,
        cloud,
        name="batch-gw" if batched else "plain-gw",
        queue_capacity=128,
        max_dispatch_concurrency=BATCH_SLOTS,
        batching=BatchingPolicy(
            max_batch_size=8, max_member_work_mi=100.0, max_batch_work_mi=600.0
        )
        if batched
        else None,
    )
    arrivals = int(BATCH_UNTIL_S / BATCH_INTERVAL_S)
    for index in range(arrivals):
        world.engine.schedule_at(
            0.1 + index * BATCH_INTERVAL_S,
            lambda: gateway.submit(
                ServiceRequest.build(
                    work_mi=BATCH_WORK_MI, tenant="small", deadline_s=BATCH_DEADLINE_S
                )
            ),
            label="serve-submit",
        )
    suite = InvariantSuite([ServingConservation(gateway)], metrics=world.metrics)
    suite.attach(world, check_interval_s=0.5)
    world.run_for(BATCH_HORIZON_S)
    gateway.stop()
    stats = gateway.stats
    return {
        "offered": stats.offered,
        "completed": stats.completed,
        "slo_hits": stats.slo_hits,
        "shed": stats.shed,
        "rejected": stats.rejected,
        "batches_dispatched": stats.batches_dispatched,
        "batched_requests": stats.batched_requests,
        "cloud_dispatches": cloud.stats.submitted,
        "p99_latency_s": stats.p99_latency_s(),
        "violations": len(suite.violations),
        "invariant_checks": suite.checks_run,
        "accounting": gateway.accounting(),
        "counters": sorted(world.metrics.counters.items()),
    }


@pytest.fixture(scope="module")
def batching_pair():
    return {
        "batched": _run_batching_scenario(True),
        "plain": _run_batching_scenario(False),
    }


def test_bench_batching_table(batching_pair, record_table, record_run_json, benchmark):
    rows = []
    for name in ("batched", "plain"):
        row = batching_pair[name]
        record_run_json(
            "E18_capacity_redundancy",
            f"batching/{name}",
            {
                "offered": row["offered"],
                "completed": row["completed"],
                "slo_hits": row["slo_hits"],
                "refused": row["shed"] + row["rejected"],
                "cloud_dispatches": row["cloud_dispatches"],
                "batches_dispatched": row["batches_dispatched"],
                "p99_latency_s": row["p99_latency_s"],
            },
            config={"batching": name == "batched"},
        )
        rows.append(
            [
                name,
                row["offered"],
                row["completed"],
                row["slo_hits"],
                row["shed"] + row["rejected"],
                row["cloud_dispatches"],
                row["batches_dispatched"],
                row["p99_latency_s"],
            ]
        )
    table = render_table(
        [
            "gateway",
            "offered",
            "completed",
            "slo hits",
            "refused",
            "cloud dispatches",
            "batches",
            "p99 (s)",
        ],
        rows,
        title="E18b — small-task batching under dispatch-slot contention "
        f"({BATCH_SLOTS} slots, {BATCH_WORK_MI:.0f} MI requests)",
    )
    record_table("E18_capacity_redundancy", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batching_cuts_dispatches_not_completions(batching_pair, benchmark):
    """Coalescing trades per-request dispatches for summed-work tasks.

    Work is conserved — a batch runs its members' summed MI on one
    worker — so batching cannot raise MIPS throughput; what it buys is
    *economy*: each coalesced member is one fewer cloud dispatch
    (reservation, lease, transfer, completion event) and leaves the
    bounded admission queue at dispatch time in bulk, freeing space
    for later arrivals.  Under overload that must show up as a steep
    dispatch cut at no cost in completed requests.
    """
    batched, plain = batching_pair["batched"], batching_pair["plain"]
    assert batched["batches_dispatched"] > 0
    assert batched["cloud_dispatches"] <= plain["cloud_dispatches"] // 4
    assert batched["completed"] >= plain["completed"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E18c — dependability of the mechanisms themselves
# ---------------------------------------------------------------------------


def test_capacity_runs_are_byte_identical(benchmark):
    """Same seed twice => identical accounting, stats and metrics."""
    first = _run_capacity_scenario(1 / 3, 1.5, "adaptive", seed=1803)
    second = _run_capacity_scenario(1 / 3, 1.5, "adaptive", seed=1803)
    assert first == second
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batching_runs_are_byte_identical(benchmark):
    first = _run_batching_scenario(True, seed=1807)
    second = _run_batching_scenario(True, seed=1807)
    assert first == second
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_no_invariant_violations_under_chaos(capacity_sweep, batching_pair, benchmark):
    for key, configs in capacity_sweep.items():
        for config in CONFIGS:
            row = configs[config]
            assert row["invariant_checks"] > 0, (key, config)
            assert row["violations"] == 0, (key, config)
    for name, row in batching_pair.items():
        assert row["invariant_checks"] > 0, name
        assert row["violations"] == 0, name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
