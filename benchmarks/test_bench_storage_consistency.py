"""Experiment E12 — storage consistency: quorum configuration vs churn.

The paper's dependability section (§III.A) asks how a v-cloud keeps
shared data not just *available* (E9, E11b) but *correct* while members
crash, reboot and partition mid-operation.  The rebuilt
``repro.core.replication`` store answers with versioned replicas,
configurable quorums, read-repair, hinted handoff and anti-entropy; the
``repro.faults.consistency`` checker is the oracle:

* **E12a** — quorum sweep (k=3) under one seeded fault schedule with
  ≥30 % member churn plus two network partitions.  Read-overlapping
  quorums (R+W > k) must show **zero** stale reads, write-overlapping
  quorums (2W > k) **zero** lost updates — so the majority config is
  fully violation-free — while best-effort R=W=1 shows a nonzero
  violation count on the *same* schedule.  The W=1, R=k config is the
  teaching row: read overlap alone still loses split-brain updates.
* **E12b** — anti-entropy period sweep on the best-effort store with
  hinted handoff disabled: divergence left by a partition persists
  without the sweep and is repaired by it, with failed transfers to
  crashed holders retried under exponential backoff.
* **E12c** — the three Fig. 4 architectures running a majority-quorum
  cloud store under their natural fault regime (crashes / RSU flapping):
  operations degrade to rejections while quorum is unreachable, but the
  history stays violation-free.

Everything is reproducible from the module seeds: one plan seed drives
byte-identical fault schedules across all configurations of a sweep.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    BackoffPolicy,
    DynamicVCloud,
    FileStore,
    InfrastructureVCloud,
    QuorumConfig,
    ReplicationManager,
    StationaryVCloud,
    StoredFile,
)
from repro.errors import ResourceError
from repro.faults import ConsistencyChecker, FaultPlan, FaultInjector, StorageFaultDriver
from repro.infra import deploy_rsus_on_highway
from repro.mobility import ParkingLotModel
from repro.net import WirelessChannel
from repro.sim import Engine, SeededRng

from helpers import highway_world

MEMBERS = 10
FILES = 12
K = 3
WRITE_FRACTION = 0.3
OP_INTERVAL_S = 0.25
CHURN = 0.4  # 4 of 10 members crash: >= 30 % churn
PLAN_SEED = 1201
RUN_SEED = 1202
AE_BACKOFF = BackoffPolicy(
    base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1, max_retries=6
)

QUORUMS = (
    ("best-effort", QuorumConfig(write_quorum=1, read_quorum=1)),
    ("majority", QuorumConfig.majority(K)),
    ("write-all", QuorumConfig(write_quorum=K, read_quorum=1)),
    ("read-all", QuorumConfig(write_quorum=1, read_quorum=K)),
)


# ---------------------------------------------------------------------------
# E12a — quorum configuration sweep under churn + partitions
# ---------------------------------------------------------------------------


def _fault_plan(members):
    """One schedule for every configuration: crashes + two partitions."""
    plan = FaultPlan(PLAN_SEED)
    plan.random_crashes(round(CHURN * MEMBERS), (10.0, 60.0), targets=members)
    plan.partition(at=25.0, duration_s=12.0, fraction=0.5)
    plan.partition(at=55.0, duration_s=12.0, fraction=0.5)
    return plan


def _run_consistency(
    quorum,
    anti_entropy_period=None,
    hinted=True,
    workload_end_s=90.0,
    horizon_s=100.0,
):
    engine = Engine()
    manager = ReplicationManager(
        SeededRng(RUN_SEED, "store"),
        quorum=quorum,
        clock=lambda: engine.now,
        hinted_handoff=hinted,
    )
    members = [f"v{i:02d}" for i in range(MEMBERS)]
    for member_id in members:
        manager.add_store(FileStore(member_id, 10**9))
    files = [f"file-{i:02d}" for i in range(FILES)]
    for file_id in files:
        manager.store_file(StoredFile(file_id, 10**6, K))
    checker = ConsistencyChecker().attach(manager)

    StorageFaultDriver(
        engine, manager, _fault_plan(members), crash_downtime_s=15.0
    ).arm()
    if anti_entropy_period is not None:
        manager.start_anti_entropy(engine, anti_entropy_period, backoff=AE_BACKOFF)

    workload_rng = SeededRng(RUN_SEED, "workload")

    def _tick():
        # Fixed draw count per tick: the op stream is identical across
        # every configuration sharing RUN_SEED.
        if engine.now > workload_end_s:
            return
        file_id = workload_rng.choice(files)
        is_write = workload_rng.chance(WRITE_FRACTION)
        online = manager.online_member_ids()
        if not online:
            return
        origin = workload_rng.choice(online)
        try:
            if is_write:
                manager.write(file_id, writer=origin, origin=origin)
            else:
                manager.read_file(file_id, origin=origin)
        except ResourceError:
            pass  # quorum unreachable: the op is rejected, not wrong

    workload = engine.call_every(OP_INTERVAL_S, _tick, label="workload")
    engine.run_until(horizon_s)
    workload.stop()

    report = checker.report()
    return {
        "report": report,
        "stale_reads": report.stale_reads,
        "lost_updates": report.lost_updates,
        "violations": report.violations,
        "reads": report.reads,
        "writes": report.writes,
        "rejected": report.failed_reads + report.failed_writes,
        "divergent_end": len(manager.divergent_files()),
        "read_repairs": manager.read_repairs,
        "hints_delivered": manager.hints_delivered,
        "anti_entropy_repairs": manager.anti_entropy_repairs,
        "anti_entropy_failed_transfers": manager.anti_entropy_failed_transfers,
    }


@pytest.fixture(scope="module")
def quorum_sweep():
    return {name: _run_consistency(quorum) for name, quorum in QUORUMS}


def test_bench_quorum_sweep_table(quorum_sweep, record_table, record_run_json, benchmark):
    rows = []
    for name, quorum in QUORUMS:
        row = quorum_sweep[name]
        record_run_json(
            "E12_storage_consistency",
            f"quorum/{name}",
            {k: v for k, v in row.items() if k != "report"},
            seed=RUN_SEED,
            config={"write_quorum": quorum.write_quorum, "read_quorum": quorum.read_quorum},
        )
        rows.append(
            [
                name,
                quorum.write_quorum,
                quorum.read_quorum,
                "yes" if quorum.is_safe_for(K) else "no",
                "yes" if quorum.prevents_lost_updates(K) else "no",
                row["reads"],
                row["writes"],
                row["rejected"],
                row["stale_reads"],
                row["lost_updates"],
                row["read_repairs"],
            ]
        )
    table = render_table(
        [
            "config",
            "W",
            "R",
            "R+W>k",
            "2W>k",
            "reads ok",
            "writes ok",
            "rejected",
            "stale reads",
            "lost updates",
            "read repairs",
        ],
        rows,
        title=(
            f"E12a — quorum sweep, k={K}, {CHURN:.0%} churn + 2 partitions "
            f"(plan seed {PLAN_SEED})"
        ),
    )
    record_table("E12_storage_consistency", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overlapping_quorums_have_zero_violations(quorum_sweep, benchmark):
    """Acceptance: each overlap kills its anomaly; majority kills both."""
    for name, quorum in QUORUMS:
        row = quorum_sweep[name]
        if quorum.is_safe_for(K):
            assert row["stale_reads"] == 0, name
        if quorum.prevents_lost_updates(K):
            assert row["lost_updates"] == 0, name
    assert quorum_sweep["majority"]["violations"] == 0
    assert quorum_sweep["write-all"]["violations"] == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_best_effort_violates_on_same_schedule(quorum_sweep, benchmark):
    """Acceptance: R=W=1 shows nonzero violations under the same faults."""
    row = quorum_sweep["best-effort"]
    assert row["violations"] > 0
    assert row["stale_reads"] > 0
    assert row["lost_updates"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_safe_configs_trade_rejections_for_correctness(quorum_sweep, benchmark):
    # The safe configs pay in rejected operations, never in wrong answers.
    assert quorum_sweep["majority"]["rejected"] >= 0
    assert quorum_sweep["best-effort"]["rejected"] <= quorum_sweep["write-all"]["rejected"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E12b — anti-entropy period sweep (hinted handoff disabled)
# ---------------------------------------------------------------------------

AE_PERIODS = (None, 8.0, 2.0)


@pytest.fixture(scope="module")
def anti_entropy_sweep():
    # Workload stops just before the last partition heals, so convergence
    # after the heal is attributable to anti-entropy alone (hints off,
    # R=1 reads repair nothing).
    return {
        period: _run_consistency(
            QuorumConfig(1, 1),
            anti_entropy_period=period,
            hinted=False,
            workload_end_s=66.0,
            horizon_s=100.0,
        )
        for period in AE_PERIODS
    }


def test_bench_anti_entropy_table(
    anti_entropy_sweep, record_table, record_run_json, benchmark
):
    rows = []
    for period in AE_PERIODS:
        row = anti_entropy_sweep[period]
        record_run_json(
            "E12_storage_consistency",
            f"anti_entropy/{'off' if period is None else f'{period:.0f}s'}",
            {k: v for k, v in row.items() if k != "report"},
            seed=RUN_SEED,
            config={"anti_entropy_period_s": period},
        )
        rows.append(
            [
                "off" if period is None else f"{period:.0f}s",
                row["divergent_end"],
                row["anti_entropy_repairs"],
                row["anti_entropy_failed_transfers"],
                row["stale_reads"],
            ]
        )
    table = render_table(
        [
            "anti-entropy period",
            "divergent files at end",
            "ae repairs",
            "ae failed transfers",
            "stale reads",
        ],
        rows,
        title="E12b — anti-entropy period vs residual divergence (R=W=1, hints off)",
    )
    record_table("E12_storage_consistency", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_anti_entropy_repairs_partition_divergence(anti_entropy_sweep, benchmark):
    without = anti_entropy_sweep[None]
    fast = anti_entropy_sweep[2.0]
    assert without["divergent_end"] > 0  # divergence persists with no sweep
    assert fast["divergent_end"] == 0  # the sweep converges every replica
    assert fast["anti_entropy_repairs"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E12c — architectures running a majority-quorum cloud store under faults
# ---------------------------------------------------------------------------

ARCH_FILES = 8
ARCH_PLAN_SEED = 1211
ARCH_HORIZON_S = 120.0


def _attach_store(cloud):
    storage = cloud.enable_replicated_storage(
        quorum=QuorumConfig.majority(K),
        anti_entropy_period_s=5.0,
        anti_entropy_backoff=AE_BACKOFF,
    )
    checker = ConsistencyChecker().attach(storage)
    files = [f"shared-{i:02d}" for i in range(ARCH_FILES)]
    for file_id in files:
        cloud.store_put(file_id, 1000, target_replicas=K)
    return checker, files


def _drive_store(world, cloud, files, seed):
    rng = SeededRng(seed, "arch-workload")

    def _tick():
        if world.now > ARCH_HORIZON_S - 10.0:
            return
        file_id = rng.choice(files)
        if rng.chance(WRITE_FRACTION):
            cloud.store_write(file_id, writer=cloud.head_id or "head")
        else:
            cloud.store_read(file_id)

    world.engine.call_every(0.5, _tick, label="store-workload")


def _arch_row(label, regime, cloud, checker):
    report = checker.report()
    return {
        "label": label,
        "regime": regime,
        "reads": cloud.stats.storage_reads,
        "writes": cloud.stats.storage_writes,
        "degraded": cloud.stats.storage_degraded,
        "violations": report.violations,
        "repair_transfers": cloud.storage.repair_transfers,
        "repair_failures": cloud.storage.repair_failures,
    }


def _enable_recovery(cloud):
    cloud.retry_backoff = AE_BACKOFF
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)


def _run_arch_stationary(seed):
    from repro.sim import ScenarioConfig, World

    world = World(ScenarioConfig(seed=seed))
    lot = ParkingLotModel(world, departure_rate_per_hour=20.0)
    lot.populate(20)
    lot.start()
    arch = StationaryVCloud(world, lot)
    arch.start()
    _enable_recovery(arch.cloud)
    checker, files = _attach_store(arch.cloud)
    targets = [m for m in arch.cloud.membership.member_ids() if m != arch.cloud.head_id]
    plan = FaultPlan(ARCH_PLAN_SEED).random_crashes(
        round(len(targets) / 3), (10.0, 60.0), targets=targets
    )
    FaultInjector(world, plan, cloud=arch.cloud).arm()
    _drive_store(world, arch.cloud, files, seed)
    world.run_for(ARCH_HORIZON_S)
    return _arch_row("stationary", "member crashes", arch.cloud, checker)


def _run_arch_infrastructure(seed):
    world, model, highway = highway_world(seed, vehicle_count=30, length_m=3000)
    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
    arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    _enable_recovery(arch.cloud)
    checker, files = _attach_store(arch.cloud)
    plan = FaultPlan(ARCH_PLAN_SEED).rsu_flap(
        20.0, cycles=2, down_s=8.0, up_s=12.0, target=rsus[0].node_id
    )
    FaultInjector(world, plan, infrastructure=[rsus[0]]).arm()
    _drive_store(world, arch.cloud, files, seed)
    world.run_for(ARCH_HORIZON_S)
    return _arch_row("infrastructure", "rsu flapping", arch.cloud, checker)


def _run_arch_dynamic(seed):
    world, model, _highway = highway_world(seed, vehicle_count=30, length_m=3000)
    arch = DynamicVCloud(world, model)
    arch.start()
    _enable_recovery(arch.cloud)
    checker, files = _attach_store(arch.cloud)
    targets = [m for m in arch.cloud.membership.member_ids() if m != arch.cloud.head_id]
    plan = FaultPlan(ARCH_PLAN_SEED).random_crashes(
        max(1, round(len(targets) / 3)), (10.0, 60.0), targets=targets
    )
    FaultInjector(world, plan, cloud=arch.cloud).arm()
    _drive_store(world, arch.cloud, files, seed)
    world.run_for(ARCH_HORIZON_S)
    return _arch_row("dynamic", "member crashes", arch.cloud, checker)


@pytest.fixture(scope="module")
def arch_storage():
    return [
        _run_arch_stationary(1221),
        _run_arch_infrastructure(1222),
        _run_arch_dynamic(1223),
    ]


def test_bench_arch_storage_table(arch_storage, record_table, record_run_json, benchmark):
    for row in arch_storage:
        record_run_json(
            "E12_storage_consistency",
            f"arch/{row['label']}",
            {k: v for k, v in row.items() if k not in ("label", "regime")},
            config={"architecture": row["label"], "regime": row["regime"]},
        )
    rows = [
        [
            row["label"],
            row["regime"],
            row["reads"],
            row["writes"],
            row["degraded"],
            row["violations"],
            row["repair_transfers"],
        ]
        for row in arch_storage
    ]
    table = render_table(
        [
            "architecture",
            "fault regime",
            "reads ok",
            "writes ok",
            "degraded ops",
            "violations",
            "repair transfers",
        ],
        rows,
        title="E12c — majority-quorum cloud store across architectures",
    )
    record_table("E12_storage_consistency", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_architectures_serve_storage_without_violations(arch_storage, benchmark):
    for row in arch_storage:
        assert row["violations"] == 0, row["label"]
        assert row["reads"] > 0 and row["writes"] > 0, row["label"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_consistency_run_runtime(benchmark):
    """End-to-end timing of one majority-quorum consistency run."""
    result = benchmark.pedantic(
        lambda: _run_consistency(QuorumConfig.majority(K)),
        rounds=1,
        iterations=1,
    )
    assert result["violations"] == 0
