"""Experiment E11 — fault tolerance: fault intensity vs recovery configuration.

The paper's dependability argument (§V.A) is that v-clouds must "operate
normally even under attacks or failures of sub-components".  This
experiment injects seeded fault schedules from :mod:`repro.faults` and
measures what each recovery mechanism buys:

* **E11a** — member-crash intensity sweep on a controlled cloud, with
  recovery on (lease-based liveness + checkpoint handover + exponential
  backoff) vs off (silent crashes are never detected).  Task completion
  under ≥30 % churn is the headline number.
* **E11b** — file availability under the same crash schedules, with and
  without replica repair (re-replication on departure).
* **E11c** — the three Fig. 4 architectures under their natural fault
  regime: member crashes for the stationary and dynamic clouds, RSU
  flapping for the infrastructure-based cloud.

Expected shape: recovery-enabled strictly dominates recovery-disabled on
task completion once a third of the members crash; repair holds file
availability at 1.0 while no-repair decays; every architecture keeps
serving tasks under faults, the infrastructure cloud paying the largest
stability penalty.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    BackoffPolicy,
    CheckpointHandoverPolicy,
    DynamicVCloud,
    FileStore,
    InfrastructureVCloud,
    ReplicationManager,
    ResourceOffer,
    StationaryVCloud,
    StoredFile,
    Task,
    TaskState,
    VehicularCloud,
)
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.infra import deploy_rsus_on_highway
from repro.mobility import ParkingLotModel, StationaryModel
from repro.net import WirelessChannel
from repro.sim import ScenarioConfig, World

from helpers import highway_world

MEMBERS = 12
TASKS = 18
WORK_MI = 3000.0  # 30 s on a 100-MIPS worker: long enough to be interrupted
INTENSITIES = (0.0, 1 / 6, 1 / 3, 1 / 2)
PLAN_SEED = 1111
CRASH_WINDOW = (10.0, 45.0)
RECOVERY_BACKOFF = BackoffPolicy(
    base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
)


# ---------------------------------------------------------------------------
# E11a — crash intensity vs recovery configuration
# ---------------------------------------------------------------------------


def _run_fault_scenario(intensity: float, recovery: bool, seed: int = 1101):
    """A controlled stationary cloud under a seeded crash schedule."""
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(
        world,
        "fault-sweep-vc",
        handover_policy=CheckpointHandoverPolicy(),
        retry_backoff=RECOVERY_BACKOFF if recovery else None,
    )
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6))
    if recovery:
        cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)

    # Same plan seed + positionally identical target lists => the same
    # members (by index) crash at the same times in both configurations.
    targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
    crashes = round(intensity * MEMBERS)
    plan = FaultPlan(PLAN_SEED).random_crashes(crashes, CRASH_WINDOW, targets=targets)
    injector = FaultInjector(world, plan, cloud=cloud)
    injector.arm()

    records = []
    for index in range(TASKS):
        world.engine.schedule_at(
            index * 2.0,
            lambda: records.append(cloud.submit(Task(work_mi=WORK_MI))),
            label="task",
        )
    world.run_for(TASKS * 2.0 + 400.0)
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    latencies = [r.completion_latency_s for r in completed]
    return {
        "completion_rate": len(completed) / TASKS,
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else float("inf"),
        "stranded": sum(
            1 for r in records if r.state in (TaskState.ASSIGNED, TaskState.RUNNING)
        ),
        "lease_evictions": cloud.stats.lease_evictions,
        "final_members": cloud.member_count(),
        "crashes": cloud.stats.worker_crashes,
    }


@pytest.fixture(scope="module")
def fault_sweep():
    sweep = {}
    for intensity in INTENSITIES:
        sweep[intensity] = {
            "recovery": _run_fault_scenario(intensity, recovery=True),
            "no-recovery": _run_fault_scenario(intensity, recovery=False),
        }
    return sweep


def test_bench_fault_sweep_table(fault_sweep, record_table, record_run_json, benchmark):
    rows = []
    for intensity in INTENSITIES:
        for config in ("recovery", "no-recovery"):
            row = fault_sweep[intensity][config]
            record_run_json(
                "E11_fault_tolerance",
                f"sweep/{intensity:.0%}/{config}",
                row,
                seed=1101,
                config={"intensity": intensity, "recovery": config == "recovery"},
            )
            rows.append(
                [
                    f"{intensity:.0%}",
                    config,
                    row["completion_rate"],
                    row["mean_latency_s"],
                    row["stranded"],
                    row["lease_evictions"],
                    row["final_members"],
                ]
            )
    table = render_table(
        [
            "crash intensity",
            "config",
            "completion",
            "mean latency (s)",
            "stranded tasks",
            "lease evictions",
            "final members",
        ],
        rows,
        title="E11a — crash intensity vs recovery configuration",
    )
    record_table("E11_fault_tolerance", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_recovery_never_worse(fault_sweep, benchmark):
    for intensity in INTENSITIES:
        assert (
            fault_sweep[intensity]["recovery"]["completion_rate"]
            >= fault_sweep[intensity]["no-recovery"]["completion_rate"]
        ), f"intensity {intensity}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_recovery_strictly_dominates_under_heavy_churn(fault_sweep, benchmark):
    """Acceptance: strict domination at >= 30 % member churn."""
    for intensity in (i for i in INTENSITIES if i >= 0.3):
        assert (
            fault_sweep[intensity]["recovery"]["completion_rate"]
            > fault_sweep[intensity]["no-recovery"]["completion_rate"]
        ), f"intensity {intensity}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_silent_crashes_strand_tasks_without_leases(fault_sweep, benchmark):
    heavy = fault_sweep[1 / 2]
    assert heavy["no-recovery"]["stranded"] > 0
    assert heavy["recovery"]["stranded"] == 0
    assert heavy["recovery"]["lease_evictions"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E11b — file availability under the same crash schedules
# ---------------------------------------------------------------------------

FILES = 30
REPLICAS = 2


def _run_availability(intensity: float, repair: bool, seed: int = 1102):
    world = World(ScenarioConfig(seed=seed))
    manager = ReplicationManager(world.rng.fork("repl"), repair=repair)
    store_ids = [f"store-{i:02d}" for i in range(MEMBERS)]
    for store_id in store_ids:
        manager.add_store(FileStore(store_id, capacity_bytes=10**9))
    for index in range(FILES):
        manager.store_file(
            StoredFile(f"file-{index:02d}", size_bytes=10**6, target_replicas=REPLICAS)
        )
    # The crash plan drives store departures directly: one plan seed,
    # fixed store ids => byte-identical schedules for both configs.
    plan = FaultPlan(PLAN_SEED).random_crashes(
        round(intensity * MEMBERS), CRASH_WINDOW, targets=store_ids
    )
    for spec in plan.schedule():
        world.engine.schedule_at(
            spec.at,
            lambda sid=spec.param("target"): manager.remove_store(sid),
            label="store-crash",
        )
    world.run_for(60.0)
    return {
        "availability": manager.availability(),
        "repair_transfers": manager.repair_transfers,
    }


@pytest.fixture(scope="module")
def availability_sweep():
    sweep = {}
    for intensity in INTENSITIES:
        sweep[intensity] = {
            "repair": _run_availability(intensity, repair=True),
            "no-repair": _run_availability(intensity, repair=False),
        }
    return sweep


def test_bench_availability_table(
    availability_sweep, record_table, record_run_json, benchmark
):
    rows = []
    for intensity in INTENSITIES:
        for config in ("repair", "no-repair"):
            row = availability_sweep[intensity][config]
            record_run_json(
                "E11_fault_tolerance",
                f"availability/{intensity:.0%}/{config}",
                row,
                seed=1102,
                config={"intensity": intensity, "repair": config == "repair"},
            )
            rows.append(
                [
                    f"{intensity:.0%}",
                    config,
                    row["availability"],
                    row["repair_transfers"],
                ]
            )
    table = render_table(
        ["crash intensity", "config", "file availability", "repair transfers"],
        rows,
        title=f"E11b — file availability under store crashes (k={REPLICAS})",
    )
    record_table("E11_fault_tolerance", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_repair_preserves_availability(availability_sweep, benchmark):
    for intensity in INTENSITIES:
        pair = availability_sweep[intensity]
        assert pair["repair"]["availability"] >= pair["no-repair"]["availability"]
    heavy = availability_sweep[1 / 2]
    assert heavy["repair"]["availability"] == 1.0
    assert heavy["no-repair"]["availability"] < 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E11c — the three architectures under their natural fault regime
# ---------------------------------------------------------------------------

ARCH_TASKS = 15
ARCH_WORK_MI = 600.0


def _submit_stream(world, cloud, records):
    for index in range(ARCH_TASKS):
        world.engine.schedule_at(
            index * 2.0,
            lambda: records.append(cloud.submit(Task(work_mi=ARCH_WORK_MI))),
            label="task",
        )


def _arch_stats(cloud, records):
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    return {
        "completion_rate": len(completed) / max(1, len(records)),
        "lease_evictions": cloud.stats.lease_evictions,
        "handovers": cloud.stats.handovers,
        "final_members": cloud.member_count(),
    }


def _enable_recovery(cloud):
    cloud.retry_backoff = RECOVERY_BACKOFF
    cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)


def _run_arch_stationary(seed: int):
    world = World(ScenarioConfig(seed=seed))
    lot = ParkingLotModel(world, departure_rate_per_hour=20.0)
    lot.populate(20)
    lot.start()
    arch = StationaryVCloud(world, lot)
    arch.start()
    _enable_recovery(arch.cloud)
    targets = [m for m in arch.cloud.membership.member_ids() if m != arch.cloud.head_id]
    plan = FaultPlan(PLAN_SEED).random_crashes(
        round(len(targets) / 3), (10.0, 40.0), targets=targets
    )
    FaultInjector(world, plan, cloud=arch.cloud).arm()
    records = []
    _submit_stream(world, arch.cloud, records)
    world.run_for(150.0)
    return _arch_stats(arch.cloud, records)


def _run_arch_infrastructure(seed: int):
    world, model, highway = highway_world(seed, vehicle_count=30, length_m=3000)
    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
    arch = InfrastructureVCloud(world, rsus[0], model)
    arch.start()
    _enable_recovery(arch.cloud)
    plan = FaultPlan(PLAN_SEED).rsu_flap(
        20.0, cycles=2, down_s=8.0, up_s=12.0, target=rsus[0].node_id
    )
    FaultInjector(world, plan, infrastructure=[rsus[0]]).arm()
    records = []
    _submit_stream(world, arch.cloud, records)
    world.run_for(150.0)
    return _arch_stats(arch.cloud, records)


def _run_arch_dynamic(seed: int):
    world, model, _highway = highway_world(seed, vehicle_count=30, length_m=3000)
    arch = DynamicVCloud(world, model)
    arch.start()
    _enable_recovery(arch.cloud)
    targets = [m for m in arch.cloud.membership.member_ids() if m != arch.cloud.head_id]
    plan = FaultPlan(PLAN_SEED).random_crashes(
        max(1, round(len(targets) / 3)), (10.0, 40.0), targets=targets
    )
    FaultInjector(world, plan, cloud=arch.cloud).arm()
    records = []
    _submit_stream(world, arch.cloud, records)
    world.run_for(150.0)
    return _arch_stats(arch.cloud, records)


@pytest.fixture(scope="module")
def arch_results():
    return {
        "stationary": ("member crashes", _run_arch_stationary(1121)),
        "infrastructure": ("rsu flapping", _run_arch_infrastructure(1122)),
        "dynamic": ("member crashes", _run_arch_dynamic(1123)),
    }


def test_bench_architecture_faults_table(
    arch_results, record_table, record_run_json, benchmark
):
    rows = []
    for label in ("stationary", "infrastructure", "dynamic"):
        regime, row = arch_results[label]
        record_run_json(
            "E11_fault_tolerance",
            f"arch/{label}",
            row,
            config={"architecture": label, "regime": regime},
        )
        rows.append(
            [
                label,
                regime,
                row["completion_rate"],
                row["handovers"],
                row["lease_evictions"],
                row["final_members"],
            ]
        )
    table = render_table(
        [
            "architecture",
            "fault regime",
            "completion",
            "handovers",
            "lease evictions",
            "final members",
        ],
        rows,
        title="E11c — architectures under faults (recovery enabled)",
    )
    record_table("E11_fault_tolerance", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_all_architectures_survive_faults(arch_results, benchmark):
    for label, (_regime, row) in arch_results.items():
        assert row["completion_rate"] >= 0.5, label
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_fault_scenario_runtime(benchmark):
    """End-to-end timing of one recovery-enabled fault scenario."""
    result = benchmark.pedantic(
        lambda: _run_fault_scenario(1 / 3, recovery=True, seed=1131),
        rounds=1,
        iterations=1,
    )
    assert result["completion_rate"] > 0.5
