"""Experiment E10 — §V.A "V-cloud management": operating-mode changes.

Measures:
* propagation latency of an emergency-mode order flooded through the
  vehicle population (the authority "should be able to change the
  v-clouds into an emergency mode"), as population grows;
* full-region adoption of the order, with and without the RSU origin
  (in a disaster the order must also spread from a vehicle, V2V only);
* the emergency failover the paper prescribes: when the disaster takes
  the RSU down, the infrastructure-based cloud's workload is re-homed
  into a dynamic v-cloud that "minimises the use of the RSUs".

Expected shape: propagation completes in sub-second time and grows
mildly with population; V2V-only injection still reaches everyone; the
dynamic failover restores task completion after the RSU dies.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import DynamicVCloud, InfrastructureVCloud, ModePropagation, Task, TaskState
from repro.infra import deploy_rsus_on_highway
from repro.net import WirelessChannel
from repro.security.access import OperatingMode

from helpers import attach_radio_stack, highway_world

POPULATIONS = (20, 40, 60)


def _run_propagation(vehicle_count: int, via_rsu: bool, seed: int):
    world, model, highway = highway_world(
        seed, vehicle_count=vehicle_count, length_m=1500, lossless=True
    )
    channel, nodes, _services = attach_radio_stack(world, model, with_beacons=False)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=750)
    if via_rsu:
        # The RSU participates in the flood as the injection point.
        propagation = ModePropagation(world, list(nodes) + rsus)
        origin = rsus[0]
    else:
        propagation = ModePropagation(world, nodes)
        origin = nodes[0]
    order_id = propagation.issue_order(origin, OperatingMode.EMERGENCY)
    world.run_for(10.0)
    return {
        "adoption": propagation.adoption_fraction(OperatingMode.EMERGENCY),
        "latency_s": propagation.propagation_latency(order_id, OperatingMode.EMERGENCY),
    }


@pytest.fixture(scope="module")
def propagation_sweep():
    return {
        count: _run_propagation(count, via_rsu=True, seed=1000 + count)
        for count in POPULATIONS
    }


def test_bench_propagation_table(propagation_sweep, record_table, benchmark):
    rows = []
    for count in POPULATIONS:
        row = propagation_sweep[count]
        latency = row["latency_s"]
        rows.append(
            [count, row["adoption"], latency * 1000 if latency is not None else "n/a"]
        )
    table = render_table(
        ["vehicles", "adoption", "propagation latency (ms)"],
        rows,
        title="E10 — emergency-mode order propagation (RSU origin)",
    )
    record_table("E10_modes", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_full_adoption_everywhere(propagation_sweep, benchmark):
    for count, row in propagation_sweep.items():
        assert row["adoption"] == 1.0, count
        assert row["latency_s"] is not None
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_propagation_is_subsecond(propagation_sweep, benchmark):
    for row in propagation_sweep.values():
        assert row["latency_s"] < 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_v2v_only_injection_still_spreads(record_table, benchmark):
    """In a disaster the order must spread without any RSU."""
    result = _run_propagation(30, via_rsu=False, seed=1050)
    table = render_table(
        ["origin", "adoption", "latency (ms)"],
        [["vehicle (pure V2V)", result["adoption"],
          result["latency_s"] * 1000 if result["latency_s"] else "n/a"]],
        title="E10b — V2V-only emergency-mode propagation",
    )
    record_table("E10_modes", table)
    assert result["adoption"] == 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_emergency_failover_to_dynamic_cloud(record_table, benchmark):
    """Disaster playbook: RSU dies, the workload re-homes V2V."""
    world, model, highway = highway_world(1060, vehicle_count=30, length_m=3000)
    channel = WirelessChannel(world)
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
    infra_arch = InfrastructureVCloud(world, rsus[0], model)
    infra_arch.start()

    # Phase 1: infrastructure cloud serves tasks.
    phase1 = [infra_arch.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]
    world.run_for(25.0)

    # Disaster: RSU destroyed.
    rsus[0].damage()
    world.run_for(2.0)
    phase2 = [infra_arch.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]
    world.run_for(25.0)

    # Failover: a dynamic v-cloud forms from the same vehicles (emergency
    # mode minimizes RSU use).
    dynamic_arch = DynamicVCloud(world, model, cloud_id="failover-vc")
    dynamic_arch.start()
    phase3 = [dynamic_arch.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]
    world.run_for(30.0)

    def rate(records):
        return sum(1 for r in records if r.state is TaskState.COMPLETED) / len(records)

    rows = [
        ["infra cloud, RSU alive", rate(phase1)],
        ["infra cloud, RSU destroyed", rate(phase2)],
        ["dynamic failover cloud", rate(phase3)],
    ]
    table = render_table(
        ["phase", "completion rate"],
        rows,
        title="E10c — disaster failover: infrastructure-based -> dynamic v-cloud",
    )
    record_table("E10_modes", table)
    assert rate(phase1) >= 0.8
    assert rate(phase2) == 0.0
    assert rate(phase3) >= 0.8
    assert dynamic_arch.cloud.stats.infra_messages == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_mode_policies_change_behaviour(benchmark):
    """Emergency-mode policy flags match §V.A's prescriptions."""
    from repro.core import DEFAULT_POLICIES

    emergency = DEFAULT_POLICIES[OperatingMode.EMERGENCY]
    normal = DEFAULT_POLICIES[OperatingMode.NORMAL]
    assert emergency.minimize_rsu_use and not normal.minimize_rsu_use
    assert emergency.beacon_interval_scale < normal.beacon_interval_scale
    assert emergency.emergency_resource_priority
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_propagation_run(benchmark):
    """End-to-end timing of one 30-vehicle propagation run."""
    result = benchmark.pedantic(
        lambda: _run_propagation(30, via_rsu=True, seed=1070), rounds=1, iterations=1
    )
    assert result["adoption"] == 1.0
