"""Shared scenario builders for the benchmark suite."""

from __future__ import annotations

from typing import List, Tuple

from repro.core import Task
from repro.mobility import Highway, HighwayModel, ManhattanGrid, ManhattanModel
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.sim import ChannelConfig, ScenarioConfig, World


def highway_world(
    seed: int,
    vehicle_count: int,
    length_m: float = 4000.0,
    lossless: bool = False,
) -> Tuple[World, HighwayModel, Highway]:
    """A running highway scenario."""
    channel_config = (
        ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0)
        if lossless
        else ChannelConfig()
    )
    world = World(
        ScenarioConfig(seed=seed, vehicle_count=vehicle_count, channel=channel_config)
    )
    highway = Highway(length_m=length_m)
    model = HighwayModel(world, highway)
    model.populate(vehicle_count)
    model.start()
    return world, model, highway


def grid_world(
    seed: int, vehicle_count: int, blocks: int = 4, block_size_m: float = 400.0
) -> Tuple[World, ManhattanModel, ManhattanGrid]:
    """A running Manhattan-grid scenario."""
    world = World(ScenarioConfig(seed=seed, vehicle_count=vehicle_count))
    grid = ManhattanGrid(blocks_x=blocks, blocks_y=blocks, block_size_m=block_size_m)
    model = ManhattanModel(world, grid)
    model.populate(vehicle_count)
    model.start()
    return world, model, grid


def attach_radio_stack(
    world: World, model, with_beacons: bool = True
) -> Tuple[WirelessChannel, List[VehicleNode], List[BeaconService]]:
    """Attach channel nodes (and optionally beacons) to a vehicle fleet."""
    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
    services = []
    if with_beacons:
        services = [BeaconService(world, node) for node in nodes]
        for service in services:
            service.start()
    return channel, nodes, services


def poisson_task_stream(
    world: World,
    cloud,
    rate_per_s: float,
    duration_s: float,
    work_mi: float = 1000.0,
    deadline_s: float = 30.0,
) -> List:
    """Schedule a Poisson task-arrival stream into a cloud; returns records."""
    records: List = []
    rng = world.rng.fork("task-stream")
    t = rng.exponential(rate_per_s)
    while t < duration_s:
        def _submit() -> None:
            records.append(cloud.submit(Task(work_mi=work_mi, deadline_s=deadline_s)))

        world.engine.schedule_at(world.now + t, _submit, label="task-arrival")
        t += rng.exponential(rate_per_s)
    return records
