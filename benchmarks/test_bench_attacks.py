"""Experiment E6 — §III threat list: attacks with defences off vs. on.

One scenario per network-layer threat the paper enumerates — replay,
impersonation, man-in-the-middle tampering, message delay/suppression,
and DoS flooding — plus eavesdropping at the confidentiality layer.
Each runs twice: against a naive receiver, then against a receiver
running the corresponding defence (replay cache, signature verification,
rate limiting, end-to-end encryption).

Expected shape: every attack succeeds against the naive receiver and is
(near-)fully blocked by its defence — the table the survey implies when
it says the surveyed mechanisms "would discourage most vehicles from
misbehaving".
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.attacks import (
    DelaySuppressAttacker,
    DosFlooder,
    EavesdropAttacker,
    ImpersonationAttacker,
    JunkProcessingMeter,
    MitmAttacker,
    RateLimiter,
    ReplayAttacker,
    ReplayCache,
    SignatureDefense,
)
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import (
    MessageKind,
    SecurityEnvelope,
    VehicleNode,
    WirelessChannel,
    data_message,
)
from repro.security.crypto import KeyPair, SignatureScheme
from repro.sim import ChannelConfig, ScenarioConfig, World


def lossless_world(seed: int) -> World:
    return World(
        ScenarioConfig(
            seed=seed,
            channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
        )
    )


def victim_pair(world):
    channel = WirelessChannel(world)
    alice = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
    bob = VehicleNode(world, channel, Vehicle(position=Vec2(100, 0)))
    return channel, alice, bob


def _replay_rate(defended: bool) -> float:
    world = lossless_world(601)
    channel, alice, bob = victim_pair(world)
    attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
    attacker = ReplayAttacker(world, channel, attacker_node)
    cache = ReplayCache(window_s=60.0)
    accepted_replays = []

    def handler(message, from_id):
        if defended and not cache.accept_message(message, world.now):
            return
        if from_id == attacker_node.node_id:
            accepted_replays.append(message)

    bob.on(MessageKind.DATA, handler)
    for index in range(10):
        message = data_message(alice.node_id, bob.node_id, 100, world.now).with_envelope(
            SecurityEnvelope(
                claimed_identity=alice.node_id, nonce=f"n-{index}", timestamp=world.now
            )
        )
        alice.send(bob.node_id, message)
    world.run_for(2.0)
    replayed = attacker.replay_all()
    world.run_for(2.0)
    return len(accepted_replays) / max(1, replayed)


def _impersonation_rate(defended: bool) -> float:
    world = lossless_world(602)
    channel, alice, bob = victim_pair(world)
    attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
    attacker = ImpersonationAttacker(world, attacker_node, victim_identity=alice.node_id)
    defense = SignatureDefense(SignatureScheme())
    accepted = []

    def handler(message, from_id):
        if defended and not defense.verify(message):
            return
        if message.src == alice.node_id and from_id != alice.node_id:
            accepted.append(message)

    bob.on(MessageKind.DATA, handler)
    attempts = 10
    for _ in range(attempts):
        attacker.send_forged(MessageKind.DATA, {"speed": 999})
    world.run_for(2.0)
    return len(accepted) / attempts


def _mitm_rate(defended: bool) -> float:
    world = lossless_world(603)
    channel, alice, bob = victim_pair(world)
    MitmAttacker(world, channel, Vec2(50, 0), victim_a=alice.node_id, victim_b=bob.node_id)
    scheme = SignatureScheme()
    defense = SignatureDefense(scheme)
    keypair = KeyPair.generate("alice")
    accepted_tampered = []

    def handler(message, from_id):
        if defended and not defense.verify(message, keypair.public_id):
            return
        if message.payload.get("tampered"):
            accepted_tampered.append(message)

    bob.on(MessageKind.DATA, handler)
    attempts = 10
    for _ in range(attempts):
        message = data_message(alice.node_id, bob.node_id, 100, world.now, payload={"v": 1})
        signature = scheme.sign(keypair, defense.message_digest_payload(message)).value
        alice.send(
            bob.node_id,
            message.with_envelope(
                SecurityEnvelope(claimed_identity=alice.node_id, signature=signature)
            ),
        )
    world.run_for(2.0)
    return len(accepted_tampered) / attempts


def _delay_miss_rate(attacked: bool, deadline_s: float = 0.1) -> float:
    world = lossless_world(604)
    channel, alice, bob = victim_pair(world)
    if attacked:
        DelaySuppressAttacker(
            world, channel, Vec2(50, 0), victim=alice.node_id, delay_s=0.5
        )
    arrivals = []
    bob.on(MessageKind.DATA, lambda msg, frm: arrivals.append(world.now - msg.created_at))
    attempts = 10
    for _ in range(attempts):
        alice.send(bob.node_id, data_message(alice.node_id, bob.node_id, 100, world.now))
        world.run_for(1.0)
    misses = sum(1 for delay in arrivals if delay > deadline_s)
    misses += attempts - len(arrivals)
    return misses / attempts


def _dos_processing_rate(defended: bool) -> float:
    world = lossless_world(605)
    channel, alice, bob = victim_pair(world)
    limiter = RateLimiter(rate_per_s=10.0, burst=10.0) if defended else None
    meter = JunkProcessingMeter(world, limiter)
    bob.on(MessageKind.DATA, meter)
    flooder = DosFlooder(world, alice, rate_per_s=200.0)
    flooder.start()
    world.run_for(2.0)
    flooder.stop()
    world.run_for(1.0)
    total = meter.processed + meter.dropped
    return meter.processed / max(1, total)


def _eavesdrop_rate(defended: bool) -> float:
    world = lossless_world(606)
    channel, alice, bob = victim_pair(world)
    attacker = EavesdropAttacker(world, channel, position=Vec2(50, 0))
    attempts = 10
    for _ in range(attempts):
        payload = {"encrypted": True} if defended else {}
        alice.send(
            bob.node_id, data_message(alice.node_id, bob.node_id, 100, world.now, payload=payload)
        )
    world.run_for(2.0)
    return attacker.outcome.success_rate


@pytest.fixture(scope="module")
def matrix():
    return {
        "replay": (_replay_rate(False), _replay_rate(True), "replay cache"),
        "impersonation": (
            _impersonation_rate(False),
            _impersonation_rate(True),
            "signature verify",
        ),
        "mitm tampering": (_mitm_rate(False), _mitm_rate(True), "signature verify"),
        "delay/suppress": (
            _delay_miss_rate(True),
            _delay_miss_rate(False),
            "(attack off baseline)",
        ),
        "dos flood": (
            _dos_processing_rate(False),
            _dos_processing_rate(True),
            "rate limiting",
        ),
        "eavesdropping": (_eavesdrop_rate(False), _eavesdrop_rate(True), "encryption"),
    }


def test_bench_attack_matrix(matrix, record_table, benchmark):
    rows = [
        [attack, unprotected, protected, defense]
        for attack, (unprotected, protected, defense) in matrix.items()
    ]
    table = render_table(
        ["attack", "success (undefended)", "success (defended)", "defence"],
        rows,
        title="E6 — network-layer attacks, defences off vs on",
    )
    record_table("E6_attacks", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_replay_blocked_by_cache(matrix, benchmark):
    undefended, defended, _ = matrix["replay"]
    assert undefended > 0.8
    assert defended == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_impersonation_blocked_by_signatures(matrix, benchmark):
    undefended, defended, _ = matrix["impersonation"]
    assert undefended == 1.0
    assert defended == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_mitm_blocked_by_signatures(matrix, benchmark):
    undefended, defended, _ = matrix["mitm tampering"]
    assert undefended == 1.0
    assert defended == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_delay_attack_causes_deadline_misses(matrix, benchmark):
    attacked, baseline, _ = matrix["delay/suppress"]
    assert attacked == 1.0
    assert baseline == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_rate_limiting_sheds_flood(matrix, benchmark):
    undefended, defended, _ = matrix["dos flood"]
    assert undefended > 0.9
    assert defended < 0.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_encryption_defeats_eavesdropping(matrix, benchmark):
    undefended, defended, _ = matrix["eavesdropping"]
    assert undefended == 1.0
    assert defended == 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_replay_cache_throughput(benchmark):
    """Host-time micro-benchmark: replay-cache admission checks.

    Timestamps advance with the nonce stream so the sliding window keeps
    evicting; a frozen clock would grow the cache to capacity and turn
    every insert into a full eviction scan.
    """
    cache = ReplayCache(window_s=10.0, capacity=100_000)
    state = {"index": 0}

    def check():
        index = state["index"] = state["index"] + 1
        now = index * 0.001
        return cache.accept(f"nonce-{index}", timestamp=now, now=now)

    assert benchmark.pedantic(check, rounds=200, iterations=50)
