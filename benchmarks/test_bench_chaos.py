"""Experiment E15 — chaos campaigns: randomized faults vs invariants.

Experiment E11 probes *chosen* failure modes with hand-written fault
schedules; E15 probes *unchosen* ones.  Each run samples a seeded,
randomized fault campaign over every applicable fault family and checks
a suite of cross-subsystem safety invariants (task conservation, lease
exclusivity, single-head, quorum safety, membership agreement, channel
conservation, stranded tasks) once per simulated second while the
faults fire.

* **E15a** — ≥50 seeded runs across the three Fig. 4 architectures
  with the full recovery stack (leases + backoff retries +
  majority-quorum storage with anti-entropy).  The dependability claim
  (§V.A) is that no run violates any invariant.
* **E15b** — the same campaign against a deliberately weakened
  stationary cloud (no leases, no retries, best-effort ``W=R=1``
  quorum, no hinted handoff).  Runs *must* fail, and every failing
  seed's fault schedule must delta-debug down to ≤3 faults that replay
  the violation deterministically from the recorded seed.

Expected shape: hardened campaigns are violation-free while injecting
hundreds of faults; weakened campaigns strand crash-frozen tasks and
serve stale reads, each failure minimizing to one or two faults.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.chaos import (
    ChaosProfile,
    ChaosRunner,
    dynamic_scenario,
    infrastructure_scenario,
    stationary_scenario,
)

RUN_LENGTH_S = 45.0
HARDENED_SEEDS = {
    "stationary": range(1501, 1519),
    "dynamic": range(1601, 1619),
    "infrastructure": range(1701, 1719),
}
WEAKENED_SEEDS = range(7001, 7013)
FACTORIES = {
    "stationary": stationary_scenario,
    "dynamic": dynamic_scenario,
    "infrastructure": infrastructure_scenario,
}


# ---------------------------------------------------------------------------
# E15a — hardened architectures under randomized campaigns
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def hardened_campaigns():
    campaigns = {}
    for label, factory in FACTORIES.items():
        runner = ChaosRunner(factory, run_length_s=RUN_LENGTH_S)
        campaigns[label] = runner.run_campaign(HARDENED_SEEDS[label])
    return campaigns


def test_bench_hardened_campaign_table(
    hardened_campaigns, record_table, record_run_json, benchmark
):
    rows = []
    for label, campaign in hardened_campaigns.items():
        checks = sum(r.checks_run for r in campaign.results)
        completed = sum(r.completed for r in campaign.results)
        submitted = sum(r.submitted for r in campaign.results)
        record_run_json(
            "E15_chaos",
            f"hardened/{label}",
            {
                "runs": campaign.runs,
                "clean_runs": campaign.clean_runs,
                "faults_injected": campaign.total_injected,
                "invariant_checks": checks,
                "violations": campaign.total_violations,
                "task_completion": completed / max(1, submitted),
            },
            config={"architecture": label, "run_length_s": RUN_LENGTH_S},
        )
        rows.append(
            [
                label,
                campaign.runs,
                campaign.clean_runs,
                campaign.total_injected,
                checks,
                campaign.total_violations,
                completed / max(1, submitted),
            ]
        )
    table = render_table(
        [
            "architecture",
            "runs",
            "clean runs",
            "faults injected",
            "invariant checks",
            "violations",
            "task completion",
        ],
        rows,
        title="E15a — hardened architectures under randomized chaos campaigns",
    )
    record_table("E15_chaos", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_hardened_campaign_is_violation_free(hardened_campaigns, benchmark):
    total_runs = sum(c.runs for c in hardened_campaigns.values())
    assert total_runs >= 50
    for label, campaign in hardened_campaigns.items():
        assert campaign.total_violations == 0, (
            f"{label}: seeds {campaign.failing_seeds} violated invariants"
        )
        assert campaign.total_injected > 0, label
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E15b — weakened configuration: must break, minimally
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def weakened_reproducers():
    runner = ChaosRunner(
        lambda seed: stationary_scenario(seed, hardened=False),
        run_length_s=RUN_LENGTH_S,
    )
    campaign = runner.run_campaign(WEAKENED_SEEDS)
    bundles = [runner.capture_reproducer(seed) for seed in campaign.failing_seeds]
    replays = [
        any(
            v.invariant == bundle.invariant
            for v in runner.run_seed(
                bundle.seed, only_indices=list(bundle.minimized_indices)
            ).violations
        )
        for bundle in bundles
    ]
    return campaign, bundles, replays


def test_bench_weakened_reproducer_table(weakened_reproducers, record_table, benchmark):
    campaign, bundles, replays = weakened_reproducers
    rows = []
    for bundle, replayed in zip(bundles, replays):
        rows.append(
            [
                bundle.seed,
                bundle.invariant,
                bundle.schedule_size,
                len(bundle.minimized_specs),
                bundle.minimize_runs,
                "; ".join(s.kind for s in bundle.minimized_specs),
                "yes" if replayed else "NO",
            ]
        )
    table = render_table(
        [
            "seed",
            "violated invariant",
            "schedule",
            "minimized",
            "ddmin runs",
            "minimal faults",
            "replays",
        ],
        rows,
        title=(
            "E15b — weakened stationary cloud (no leases/retries, W=R=1): "
            f"{campaign.clean_runs}/{campaign.runs} clean"
        ),
    )
    record_table("E15_chaos", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_weakened_campaign_breaks_and_minimizes(weakened_reproducers, benchmark):
    campaign, bundles, replays = weakened_reproducers
    assert campaign.failing_seeds, "weakened cloud must violate invariants"
    for bundle in bundles:
        assert 1 <= len(bundle.minimized_specs) <= 3, (
            f"seed {bundle.seed} minimized to {len(bundle.minimized_specs)} specs"
        )
    assert all(replays), "every minimized reproducer must replay deterministically"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# E15c — storage-focused campaign: best-effort quorum serves stale reads
# ---------------------------------------------------------------------------

STORAGE_SEEDS = range(8001, 8011)


@pytest.fixture(scope="module")
def storage_chaos():
    """Partition/reboot/crash-heavy campaign against the W=R=1 store."""
    profile = ChaosProfile().only("partition", "reboot", "crash")
    runner = ChaosRunner(
        lambda seed: stationary_scenario(seed, hardened=False),
        run_length_s=RUN_LENGTH_S,
        profile=profile,
    )
    campaign = runner.run_campaign(STORAGE_SEEDS)
    quorum_seeds = [
        r.seed
        for r in campaign.results
        if r.first_violation is not None
        and r.first_violation.invariant == "quorum-safety"
    ]
    bundles = [runner.capture_reproducer(seed) for seed in quorum_seeds]
    return campaign, bundles


def test_bench_storage_chaos_table(storage_chaos, record_table, benchmark):
    campaign, bundles = storage_chaos
    rows = [
        [
            bundle.seed,
            bundle.invariant,
            bundle.schedule_size,
            len(bundle.minimized_specs),
            "; ".join(s.kind for s in bundle.minimized_specs),
            bundle.violation.message.split(":")[0],
        ]
        for bundle in bundles
    ]
    table = render_table(
        ["seed", "violated invariant", "schedule", "minimized", "minimal faults", "anomaly"],
        rows,
        title=(
            "E15c — storage-focused chaos on the best-effort (W=R=1) store: "
            f"{campaign.clean_runs}/{campaign.runs} clean"
        ),
    )
    record_table("E15_chaos", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_quorum_safety_violations_minimize(storage_chaos, benchmark):
    campaign, bundles = storage_chaos
    assert bundles, "storage-focused campaign should surface a quorum-safety seed"
    for bundle in bundles:
        assert bundle.invariant == "quorum-safety"
        assert 1 <= len(bundle.minimized_specs) <= 3
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


def test_bench_chaos_run_runtime(benchmark):
    """End-to-end timing of one hardened chaos run (generate+inject+check)."""
    runner = ChaosRunner(stationary_scenario, run_length_s=RUN_LENGTH_S)
    result = benchmark.pedantic(lambda: runner.run_seed(1501), rounds=1, iterations=1)
    assert result.injected > 0
