"""Experiment E1 — paper Fig. 2: conventional vs. mobile vs. vehicular clouds.

The paper's Fig. 2 is a qualitative table (power supply, computing,
mobility, infrastructure reliance, time constraints).  This experiment
re-derives the comparable rows quantitatively by running one task
workload against three cloud configurations built from the same
substrate:

* conventional — tasks offloaded through an RSU to the central cloud
  over the WAN;
* mobile       — tasks offloaded through a cellular base station to an
  MEC-style edge datacenter (shorter WAN);
* vehicular    — tasks executed inside a dynamic v-cloud, pure V2V.

The paper's §I motivates v-clouds with infrastructure *jam*: "conventional
centralized approaches ... may not be able to quickly collect real-time
information and disseminate decisions due to jamming or inaccessibility
of the Internet/cellular network at the scene."  The jammed rows
multiply WAN latency accordingly.

Expected shape (matching Fig. 2): the vehicular cloud has the highest
node mobility (finite serving-link lifetime), the lowest infrastructure
reliance (zero infra messages per task), and keeps meeting sub-second
deadlines when the jammed WAN paths stop meeting them.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import render_table
from repro.core import DynamicVCloud, Task, TaskState
from repro.infra import CentralCloud
from repro.mobility import link_lifetime

from helpers import highway_world

TASK_COUNT = 30
WORK_MI = 800.0
DEADLINE_S = 0.5
JAM_FACTOR = 6.0


def _run_offload_config(
    seed: int, wan_delay_s: float, infra_msgs_per_task: int, jam_factor: float = 1.0
):
    """Tasks go vehicle -> infra node -> datacenter and back."""
    world, _model, _highway = highway_world(seed, vehicle_count=30)
    datacenter = CentralCloud(
        world, compute_mips=200_000.0, wan_delay_s=wan_delay_s * jam_factor
    )
    completed = []

    for index in range(TASK_COUNT):
        submitted_at = index * 0.5

        def _submit(at=submitted_at, idx=index):
            datacenter.submit(
                f"task-{idx}", WORK_MI, lambda response, t0=at: completed.append(world.now - t0)
            )

        world.engine.schedule_at(submitted_at, _submit, label="offload")
    world.run_for(TASK_COUNT * 0.5 + 30.0)
    deadline_hits = sum(1 for latency in completed if latency <= DEADLINE_S)
    mean_latency = sum(completed) / len(completed) if completed else math.inf
    return {
        "mean_latency_s": mean_latency,
        "deadline_hit_rate": deadline_hits / TASK_COUNT,
        "infra_msgs_per_task": float(infra_msgs_per_task),
        "serving_link_lifetime_s": math.inf,  # the datacenter never moves away
    }


def _run_vehicular_config(seed: int):
    world, model, _highway = highway_world(seed, vehicle_count=30)
    arch = DynamicVCloud(world, model)
    arch.start()
    records = []
    for index in range(TASK_COUNT):
        world.engine.schedule_at(
            index * 0.5,
            lambda: records.append(
                arch.cloud.submit(Task(work_mi=WORK_MI, deadline_s=DEADLINE_S))
            ),
            label="vc-task",
        )
    world.run_for(TASK_COUNT * 0.5 + 30.0)
    done = [r for r in records if r.state is TaskState.COMPLETED]
    latencies = [r.completion_latency_s for r in done]
    head = arch._head_vehicle()
    lifetimes = []
    if head is not None:
        for member_id in arch.cloud.membership.member_ids():
            vehicle = arch._find_vehicle(member_id)
            if vehicle is not None and vehicle.vehicle_id != head.vehicle_id:
                lifetimes.append(min(link_lifetime(head, vehicle, 300.0), 600.0))
    mean_lifetime = sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
    hits = sum(1 for r in done if r.met_deadline())
    return {
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else math.inf,
        "deadline_hit_rate": hits / TASK_COUNT,
        "infra_msgs_per_task": arch.cloud.stats.infra_messages / max(1, len(records)),
        "serving_link_lifetime_s": mean_lifetime,
    }


@pytest.fixture(scope="module")
def results():
    return {
        "conventional": _run_offload_config(101, wan_delay_s=0.080, infra_msgs_per_task=4),
        "conventional-jammed": _run_offload_config(
            101, wan_delay_s=0.080, infra_msgs_per_task=4, jam_factor=JAM_FACTOR
        ),
        "mobile": _run_offload_config(102, wan_delay_s=0.020, infra_msgs_per_task=4),
        "mobile-jammed": _run_offload_config(
            102, wan_delay_s=0.020, infra_msgs_per_task=4, jam_factor=JAM_FACTOR
        ),
        "vehicular": _run_vehicular_config(103),
    }


def test_bench_fig2_table(results, record_table, benchmark):
    rows = []
    for label in (
        "conventional",
        "conventional-jammed",
        "mobile",
        "mobile-jammed",
        "vehicular",
    ):
        row = results[label]
        rows.append(
            [
                label,
                row["mean_latency_s"] * 1000,
                row["deadline_hit_rate"],
                row["infra_msgs_per_task"],
                row["serving_link_lifetime_s"],
            ]
        )
    table = render_table(
        [
            "cloud type",
            "mean latency (ms)",
            "0.5s-deadline hit",
            "infra msgs/task",
            "serving-link lifetime (s)",
        ],
        rows,
        title="E1 / Fig.2 — conventional vs mobile vs vehicular cloud",
    )
    record_table("E1_fig2_cloud_comparison", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_vehicular_cloud_lowest_infra_reliance(results, benchmark):
    assert results["vehicular"]["infra_msgs_per_task"] == 0.0
    assert results["conventional"]["infra_msgs_per_task"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_vehicular_cloud_highest_mobility(results, benchmark):
    """Fig. 2: mobility low / low / high across the three columns."""
    assert math.isinf(results["conventional"]["serving_link_lifetime_s"])
    assert results["vehicular"]["serving_link_lifetime_s"] < 1000.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_vehicular_cloud_survives_wan_jam(results, benchmark):
    """The §I motivation: jammed WAN misses deadlines, the v-cloud keeps hitting."""
    assert results["conventional-jammed"]["deadline_hit_rate"] == 0.0
    assert results["vehicular"]["deadline_hit_rate"] > 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_mobile_cloud_sits_between(results, benchmark):
    assert (
        results["conventional"]["mean_latency_s"] > results["mobile"]["mean_latency_s"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_offload_path(benchmark):
    """End-to-end timing of one conventional-cloud configuration run."""

    def run():
        return _run_offload_config(104, wan_delay_s=0.080, infra_msgs_per_task=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["mean_latency_s"] > 0.16  # two WAN crossings minimum
