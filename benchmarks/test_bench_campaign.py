"""Experiment E19 — campaign orchestration: parallel determinism + gating.

The campaign layer is the measurement instrument every other experiment
now reports through, so E19 validates the instrument itself:

* **E19a** — the CI smoke campaign (12 runs: 2 architectures x 2 fault
  profiles x 3 seeds under a capacity-normalized serving workload)
  executed on 1 worker and on 4 ``spawn`` workers.  Every deterministic
  artifact in every run bundle — obs ``report.json``, trace/event
  JSONL, invariant verdicts, metric vector — must be **byte-identical**
  across worker counts, and the campaign-level ``report.json`` must
  match too once the wall-clock ``timing`` section is stripped.
* **E19b** — regression gating: compared against the blessed baseline
  in ``campaigns/baselines/smoke.json`` the clean run passes; against a
  perturbed copy (goodput inflated 1.5x in one cell) the same run is
  flagged as a regression and the report exits red.

Expected shape: zero byte mismatches, zero invariant violations, one
regression finding against the perturbed baseline naming exactly the
perturbed cell and metric.
"""

from __future__ import annotations

import filecmp
import json
import pathlib

import pytest

from repro.analysis import render_table
from repro.campaign import (
    DETERMINISTIC_ARTIFACTS,
    CampaignOrchestrator,
    CampaignSpec,
    Reporter,
    load_baseline_file,
    strip_volatile,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
SPEC_PATH = REPO_ROOT / "campaigns" / "smoke.json"
BASELINE_PATH = REPO_ROOT / "campaigns" / "baselines" / "smoke.json"


@pytest.fixture(scope="module")
def smoke_spec():
    return CampaignSpec.load(str(SPEC_PATH))


@pytest.fixture(scope="module")
def campaign_pair(smoke_spec, tmp_path_factory):
    """The smoke campaign executed serially and on 4 spawn workers."""
    serial_dir = str(tmp_path_factory.mktemp("serial"))
    parallel_dir = str(tmp_path_factory.mktemp("parallel"))
    serial = CampaignOrchestrator(smoke_spec, serial_dir, workers=1).execute()
    parallel = CampaignOrchestrator(smoke_spec, parallel_dir, workers=4).execute()
    return serial, parallel


def test_bench_e19_matrix_shape(smoke_spec, campaign_pair, benchmark):
    """The acceptance matrix: >= 12 runs over >= 2 archs x >= 2 profiles."""
    serial, _parallel = campaign_pair
    assert len(serial.outcomes) >= 12
    assert len({o.cell.split(",")[0] for o in serial.outcomes}) >= 2
    assert len({o.cell.split(",")[2] for o in serial.outcomes}) >= 2
    assert not serial.violations
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e19_parallel_artifacts_byte_identical(
    campaign_pair, record_table, record_run_json, benchmark
):
    serial, parallel = campaign_pair
    assert [o.key for o in serial.outcomes] == [o.key for o in parallel.outcomes]
    rows = []
    mismatches = 0
    for ours, theirs in zip(serial.outcomes, parallel.outcomes):
        assert ours.digest == theirs.digest
        assert ours.vector == theirs.vector
        identical = all(
            filecmp.cmp(
                str(pathlib.Path(ours.artifact_dir) / name),
                str(pathlib.Path(theirs.artifact_dir) / name),
                shallow=False,
            )
            for name in DETERMINISTIC_ARTIFACTS
        )
        mismatches += 0 if identical else 1
        rows.append(
            [
                ours.key,
                ours.vector["faults/injected"],
                ours.vector["invariants/violations"],
                f"{ours.vector['serve/deadline_hit_rate']:.3f}",
                "identical" if identical else "MISMATCH",
            ]
        )
        record_run_json(
            "E19_campaign",
            ours.key,
            ours.vector,
            seed=ours.spec["seed"],
            config={"cell": ours.cell, "workers": "1 vs 4"},
        )
    table = render_table(
        ["run", "faults", "violations", "deadline hits", "1 vs 4 workers"],
        rows,
        title="E19a — smoke campaign artifact bundles, serial vs 4 spawn workers",
    )
    record_table("E19_campaign", table)
    assert mismatches == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e19_report_identical_modulo_wall_clock(
    smoke_spec, campaign_pair, benchmark
):
    serial, parallel = campaign_pair
    baseline = load_baseline_file(str(BASELINE_PATH))
    reporter = Reporter.for_spec(smoke_spec)
    reports = [
        strip_volatile(reporter.compare(run, baseline).to_dict())
        for run in campaign_pair
    ]
    assert json.dumps(reports[0], sort_keys=True) == json.dumps(
        reports[1], sort_keys=True
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e19_clean_run_passes_blessed_baseline(
    smoke_spec, campaign_pair, benchmark
):
    serial, _parallel = campaign_pair
    baseline = load_baseline_file(str(BASELINE_PATH))
    report = Reporter.for_spec(smoke_spec).compare(serial, baseline)
    assert report.ok, [f.describe() for f in report.regressions]
    assert not report.regressions
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_e19_perturbed_baseline_flags_regression(
    smoke_spec, campaign_pair, record_table, benchmark
):
    serial, _parallel = campaign_pair
    perturbed = load_baseline_file(str(BASELINE_PATH))
    cell = "arch=dynamic,wl=serving,fault=light,mob=highway"
    perturbed["cells"][cell]["serve/goodput_per_s"] *= 1.5
    report = Reporter.for_spec(smoke_spec).compare(serial, perturbed)
    assert not report.ok
    flagged = [(f.cell, f.metric) for f in report.regressions]
    assert flagged == [(cell, "serve/goodput_per_s")]
    table = render_table(
        ["verdict", "cell", "metric", "relative drift"],
        [
            [
                finding.status,
                finding.cell,
                finding.metric,
                f"{finding.relative:+.1%}" if finding.relative is not None else "n/a",
            ]
            for finding in report.regressions
        ],
        title="E19b — injected 1.5x goodput perturbation is flagged; clean rerun passes",
    )
    record_table("E19_campaign", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
